"""Root pytest configuration.

Makes the test and benchmark suites runnable straight from a checkout:
``src/`` joins ``sys.path`` if the package is not installed.  (On
environments whose setuptools lacks PEP 660 support, ``pip install -e .``
may fail; ``python setup.py develop`` or this path shim both work.)
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")

try:
    import repro  # noqa: F401  (already installed)
except ModuleNotFoundError:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)
