#!/usr/bin/env python3
"""Documentation linter for the repo's markdown pages.

Checks (stdlib only, used by the CI build-docs job):

1. **Dead relative links** — every ``[text](target)`` whose target is
   not an absolute URL or a pure anchor must resolve to an existing
   file or directory relative to the page (anchors and line suffixes
   are stripped first).
2. **Fenced code blocks** — every fence must be closed, and every
   ``python`` fence must contain syntactically valid Python
   (``compile(..., "exec")``; snippets are compiled, never executed).

Exit status 0 when clean; 1 with one line per finding otherwise.

Usage:  python tools/lint_docs.py [page.md ...]
        (defaults to README.md, docs/*.md, PAPER.md, ROADMAP.md)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Images share the syntax.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

FENCE_PATTERN = re.compile(r"^(```+|~~~+)\s*([A-Za-z0-9_+-]*)\s*$")


def display(page: Path) -> str:
    try:
        return str(page.relative_to(REPO_ROOT))
    except ValueError:
        return str(page)


def default_pages() -> list[Path]:
    pages = [REPO_ROOT / "README.md", REPO_ROOT / "PAPER.md",
             REPO_ROOT / "ROADMAP.md"]
    pages.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [page for page in pages if page.exists()]


def strip_fences(text: str) -> str:
    """Remove fenced block bodies so links inside code are not checked."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(page: Path, text: str) -> list[str]:
    problems: list[str] = []
    for match in LINK_PATTERN.finditer(strip_fences(text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (page.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(
                f"{display(page)}: dead relative link -> {target}"
            )
    return problems


def check_fences(page: Path, text: str) -> list[str]:
    problems: list[str] = []
    lines = text.splitlines()
    open_line = None
    language = ""
    body: list[str] = []
    for number, line in enumerate(lines, start=1):
        match = FENCE_PATTERN.match(line.strip())
        if match and open_line is None:
            open_line = number
            language = match.group(2).lower()
            body = []
        elif match:
            if language in ("python", "py"):
                snippet = "\n".join(body)
                try:
                    compile(snippet, f"{page.name}:{open_line}", "exec")
                except SyntaxError as error:
                    problems.append(
                        f"{display(page)}:{open_line}: python fence "
                        f"does not parse ({error.msg}, snippet line "
                        f"{error.lineno})"
                    )
            open_line = None
        elif open_line is not None:
            body.append(line)
    if open_line is not None:
        problems.append(
            f"{display(page)}:{open_line}: unclosed code fence"
        )
    return problems


def main(argv: list[str]) -> int:
    pages = ([Path(arg).resolve() for arg in argv]
             if argv else default_pages())
    problems: list[str] = []
    for page in pages:
        if not page.exists():
            problems.append(f"{page}: page does not exist")
            continue
        text = page.read_text(encoding="utf-8")
        problems.extend(check_links(page, text))
        problems.extend(check_fences(page, text))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s).")
        return 1
    print(f"docs lint: {len(pages)} page(s) clean.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
