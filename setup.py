"""Legacy setup shim: lets ``pip install -e .`` work on environments
whose setuptools predates PEP 660 editable installs (no wheel package).
All real metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
