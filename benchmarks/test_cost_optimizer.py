"""Statistics-driven planner vs the legacy heuristics: the A/B.

The ISSUE-7 tentpole claim: on skewed data the legacy planner — fixed
1/NDV equality selectivity, always-prefer-index access paths, greedy
join ordering — picks provably bad join orders, because a 95%-frequent
filter value is priced like any other (~50x underestimate here).  The
statistics-driven planner (MCV/histogram selectivities + DP join
enumeration + cost-compared access paths) must win by at least 3x on
the headline workload; the measured gap is expected >5x.

Methodology: one shared database, two planner configurations over it —
the default statistics-driven pipeline vs
``PlannerOptions(join_enumeration="greedy", legacy_cost_model=True,
cost_based_access_paths=False)``, which reproduces the pre-change
planner exactly.  Each side compiles once and executes repeatedly
under a best-of-N harness (fastest repetition wins, so noise can only
*hurt* the reported speedup).  Row equality between the two plans is
asserted on every workload, so the benchmark doubles as a plan-
equivalence soundness check.  Results land in ``BENCH_cost.json`` at
the repository root, including the chosen join orders so a regression
is diagnosable from the artifact alone.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.executor.runtime import PipelineOptions, QueryPipeline
from repro.optimizer.optimizer import PlannerOptions
from repro.sql.parser import parse_statement

#: Acceptance floor for the headline skewed-join workload.
REQUIRED_SPEEDUP = 3.0

#: Timed repetitions; the fastest one is reported.
BEST_OF = 3

#: Executions per timed repetition (amortizes timer resolution).
RUNS_PER_REP = 5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cost.json"

_results: dict[str, dict] = {}

LEGACY_PLANNER = dict(join_enumeration="greedy", legacy_cost_model=True,
                      cost_based_access_paths=False)

CUSTOMERS = 2_000
ORDERS = 6_000
LINES = 12_000


def build_skew_db() -> Database:
    """CUST -> ORDERS -> LINES with a 95%-hot ORDERS.STATUS.

    * CUST.REGION: 3 heavy regions (~663 rows each, MCV territory) and
      a rare 'NORTH' with 10 rows — truly selective.
    * ORDERS.STATUS: 'HOT' on 95% of rows plus 300 rare statuses, so
      NDV ~301 and the legacy 1/NDV guess prices ``STATUS = 'HOT'`` at
      ~20 rows instead of 5700.
    * LINES.KIND: ~99 kinds with 'RARE' on 2% of rows, phased so the
      3-way workload returns a non-empty answer (both models price
      this filter about the same; the skew lives in ORDERS).
    """
    db = Database()
    db.execute("CREATE TABLE CUST (CID INT PRIMARY KEY, REGION VARCHAR)")
    db.execute("CREATE TABLE ORDERS (OID INT PRIMARY KEY, CID INT, "
               "STATUS VARCHAR)")
    db.execute("CREATE TABLE LINES (LID INT PRIMARY KEY, OID INT, "
               "KIND VARCHAR)")
    db.execute("CREATE INDEX ORD_CID ON ORDERS (CID)")
    db.execute("CREATE INDEX ORD_STATUS ON ORDERS (STATUS)")
    db.execute("CREATE INDEX LINES_OID ON LINES (OID)")
    cust = db.table("CUST")
    orders = db.table("ORDERS")
    lines = db.table("LINES")
    hot_regions = ("EAST", "WEST", "SOUTH")
    for cid in range(CUSTOMERS):
        region = "NORTH" if cid < 10 else hot_regions[cid % 3]
        cust.insert((cid, region))
    for oid in range(ORDERS):
        status = "HOT" if oid % 20 else f"S{oid // 20}"
        orders.insert((oid, oid % CUSTOMERS, status))
    for lid in range(LINES):
        kind = "RARE" if lid % 50 == 1 else f"K{lid % 100}"
        lines.insert((lid, lid % ORDERS, kind))
    db.analyze()
    return db


WORKLOADS = {
    "skew_join_2way": (
        "SELECT c.cid, o.oid FROM CUST c, ORDERS o "
        "WHERE o.cid = c.cid AND c.region = 'NORTH' "
        "AND o.status = 'HOT'"
    ),
    "skew_join_3way": (
        "SELECT c.cid, o.oid, l.lid FROM CUST c, ORDERS o, LINES l "
        "WHERE o.cid = c.cid AND l.oid = o.oid "
        "AND c.region = 'NORTH' AND o.status = 'HOT' "
        "AND l.kind = 'RARE'"
    ),
}


def compile_side(db: Database, sql: str, legacy: bool):
    planner = PlannerOptions(**LEGACY_PLANNER) if legacy \
        else PlannerOptions()
    pipeline = QueryPipeline(db.catalog, db.stats,
                             PipelineOptions(planner=planner),
                             db.pipeline.xnf_component_resolver)
    compiled = pipeline.compile_select(parse_statement(sql))
    return pipeline, compiled


def measure(pipeline, compiled) -> float:
    start = time.perf_counter()
    for _ in range(RUNS_PER_REP):
        pipeline.run_compiled(compiled)
    return time.perf_counter() - start


def best_of(pipeline, compiled, repetitions: int = BEST_OF) -> float:
    return min(measure(pipeline, compiled) for _ in range(repetitions))


def record(name: str, new_s: float, legacy_s: float,
           extra: dict | None = None) -> float:
    speedup = legacy_s / new_s
    entry = {
        "runs_per_rep": RUNS_PER_REP,
        "best_of": BEST_OF,
        "legacy_seconds": round(legacy_s, 6),
        "cost_based_seconds": round(new_s, 6),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
    }
    if extra:
        entry.update(extra)
    _results[name] = entry
    RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print_table(
        f"cost-based planner A/B: {name} (best of {BEST_OF})",
        ["planner", "seconds", "speedup"],
        [["legacy heuristics", f"{legacy_s:.4f}", "1.0x"],
         ["statistics-driven", f"{new_s:.4f}", f"{speedup:.1f}x"]],
    )
    return speedup


@pytest.fixture(scope="module")
def skew_db() -> Database:
    return build_skew_db()


def run_workload(db: Database, name: str) -> float:
    sql = WORKLOADS[name]
    new_pipe, new_plan = compile_side(db, sql, legacy=False)
    legacy_pipe, legacy_plan = compile_side(db, sql, legacy=True)
    # Soundness: cost choices change speed, never answers.
    new_rows = sorted(new_pipe.run_compiled(new_plan).rows)
    legacy_rows = sorted(legacy_pipe.run_compiled(legacy_plan).rows)
    assert new_rows == legacy_rows
    # The regression being benchmarked: the two planners actually
    # disagree about the join order on this data.
    new_order = new_plan.plan.join_orders[0]
    legacy_order = legacy_plan.plan.join_orders[0]
    assert new_order.names != legacy_order.names
    new_s = best_of(new_pipe, new_plan)
    legacy_s = best_of(legacy_pipe, legacy_plan)
    return record(name, new_s, legacy_s, extra={
        "rows": len(new_rows),
        "join_order_cost_based": " -> ".join(new_order.names),
        "join_order_legacy": " -> ".join(legacy_order.names),
    })


def test_skew_join_2way(skew_db):
    speedup = run_workload(skew_db, "skew_join_2way")
    assert speedup > 1.0


def test_skew_join_3way_headline(skew_db):
    speedup = run_workload(skew_db, "skew_join_3way")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"statistics-driven planner won by only {speedup:.2f}x "
        f"(required {REQUIRED_SPEEDUP}x)"
    )
