"""Incremental matview maintenance vs full recomputation: the A/B.

The ISSUE-2 tentpole claim: on single-row-delta workloads a
materialized CO view maintained by delta propagation beats re-running
the view query by a wide margin (>= 5x is the acceptance floor; the
measured gap is usually far larger, since a delta touches a handful of
hash probes while recomputation re-plans and re-joins every stream).

Methodology: one deferred-policy view per schema; for each generated
single-row DML statement we time ``view.refresh()`` (applies exactly
one queued delta incrementally) against ``view.refresh(full=True)``
(recompute from base tables).  Equality of the two results is asserted
at every step, so the benchmark doubles as an end-to-end check.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.cache.matview import co_canonical
from repro.workloads.bom import BOMScale, create_bom_schema, populate_bom
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)

#: Acceptance floor for incremental-vs-full speedup (ISSUE 2).
REQUIRED_SPEEDUP = 5.0

BOM_LEVELS_QUERY = """
OUT OF xassembly AS (SELECT * FROM PART WHERE kind = 'assembly'),
       xpart AS PART,
       holds AS (RELATE xassembly VIA HOLDS, xpart
                 USING CONTAINS c
                 WITH c.qty AS qty
                 WHERE xassembly.pno = c.parent AND c.child = xpart.pno)
TAKE *
"""


def measure_maintenance(db: Database, name: str,
                        statements: list[str]) -> tuple[float, float]:
    """Per-statement maintenance cost: (incremental, full), seconds.

    Each statement is executed once; its queued delta is applied
    incrementally (timed), then the view is also recomputed fully
    (timed) and the two results are checked for equality.
    """
    view = db.matviews.get(name)
    incremental_total = 0.0
    full_total = 0.0
    for sql in statements:
        db.execute(sql)
        start = time.perf_counter()
        view.refresh()
        incremental_total += time.perf_counter() - start
        maintained = co_canonical(view.result)
        start = time.perf_counter()
        view.refresh(full=True)
        full_total += time.perf_counter() - start
        assert co_canonical(view.result) == maintained, (
            f"incremental and full refresh disagree after {sql!r}"
        )
    count = len(statements)
    return incremental_total / count, full_total / count


def org_single_row_statements() -> list[str]:
    statements = []
    for index in range(10):
        eno = 80000 + index
        statements.append(
            f"INSERT INTO EMP VALUES ({eno}, 'bench-{eno}', 1, 90000)")
        statements.append(
            f"UPDATE EMP SET SAL = {91000 + index} WHERE ENO = {eno}")
        statements.append(f"INSERT INTO EMPSKILLS VALUES ({eno}, 1)")
        statements.append(
            f"DELETE FROM EMPSKILLS WHERE ESENO = {eno} AND ESSNO = 1")
    return statements


def bom_single_row_statements(max_part: int) -> list[str]:
    statements = []
    for index in range(10):
        pno = 90000 + index
        statements.append(
            f"INSERT INTO PART VALUES ({pno}, 'bench-{pno}', "
            f"'atomic', 7)")
        statements.append(
            f"INSERT INTO CONTAINS VALUES (1, {pno}, 2)")
        statements.append(
            f"UPDATE PART SET COST = {index + 1} WHERE PNO = {pno}")
        statements.append(
            f"DELETE FROM CONTAINS WHERE CHILD = {pno}")
    return statements


@pytest.fixture(scope="module")
def org_matview_db() -> Database:
    db = Database()
    create_org_schema(db.catalog)
    populate_org(db.catalog, OrgScale(departments=80,
                                      employees_per_dept=12,
                                      projects_per_dept=4, skills=60,
                                      skills_per_employee=3,
                                      skills_per_project=3,
                                      arc_fraction=0.25, seed=1994))
    db.execute(f"CREATE MATERIALIZED VIEW deps_arc REFRESH DEFERRED "
               f"AS {DEPS_ARC_QUERY}")
    return db


@pytest.fixture(scope="module")
def bom_matview_db() -> Database:
    db = Database()
    create_bom_schema(db.catalog)
    populate_bom(db.catalog, BOMScale(roots=6, depth=5, fanout=3,
                                      seed=1994))
    db.execute(f"CREATE MATERIALIZED VIEW levels REFRESH DEFERRED "
               f"AS {BOM_LEVELS_QUERY}")
    return db


def test_org_single_row_delta_speedup(org_matview_db):
    incremental, full = measure_maintenance(
        org_matview_db, "deps_arc", org_single_row_statements())
    speedup = full / incremental
    print_table(
        "matview maintenance, org schema (per single-row statement)",
        ["strategy", "seconds/stmt", "speedup"],
        [["full recompute", f"{full:.6f}", "1.0x"],
         ["incremental delta", f"{incremental:.6f}",
          f"{speedup:.1f}x"]],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental maintenance only {speedup:.1f}x faster than "
        f"recomputation (need >= {REQUIRED_SPEEDUP}x)"
    )


def test_bom_single_row_delta_speedup(bom_matview_db):
    parts = len(bom_matview_db.catalog.table("PART"))
    incremental, full = measure_maintenance(
        bom_matview_db, "levels", bom_single_row_statements(parts))
    speedup = full / incremental
    print_table(
        "matview maintenance, BOM two-level view (per statement)",
        ["strategy", "seconds/stmt", "speedup"],
        [["full recompute", f"{full:.6f}", "1.0x"],
         ["incremental delta", f"{incremental:.6f}",
          f"{speedup:.1f}x"]],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental maintenance only {speedup:.1f}x faster than "
        f"recomputation (need >= {REQUIRED_SPEEDUP}x)"
    )
