"""Sect. 4.2 footnote: relationship output optimization ablation.

"Since the data for relationship employment is already captured by the
xemp tuples, a separate output of the employment connection tuples can
be omitted.  Fortunately, this kind of output optimization is applicable
to many relationships in an XNF query."

With the optimization, the n:1 relationships (employment, ownership)
ship no connection stream — the child tuples carry their parent's
identity; the cache reconstructs the pointers.  The m:n relationships
(empproperty, projproperty) are not eligible and always ship.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.api.transport import TransportSimulator
from repro.xnf.translate import XNFOptions


@pytest.mark.benchmark(group="output-optimization")
def test_output_optimization_ablation(bench_org_db, benchmark):
    db = bench_org_db
    with_opt = db.xnf_executable(
        "deps_arc", xnf_options=XNFOptions(output_optimization=True))
    without_opt = db.xnf_executable(
        "deps_arc", xnf_options=XNFOptions(output_optimization=False))

    co_with = with_opt.run()
    co_without = without_opt.run()
    benchmark(with_opt.run)

    # Identical composite objects either way.
    for name in co_with.components:
        assert sorted(co_with.component(name).rows) == \
            sorted(co_without.component(name).rows)
    for name in co_with.relationships:
        assert sorted(co_with.relationship(name).connections) == \
            sorted(co_without.relationship(name).connections)

    simulator = TransportSimulator()
    bytes_with = simulator.block_shipping(co_with).payload_bytes
    bytes_without = simulator.block_shipping(co_without).payload_bytes
    saved_tuples = co_without.shipped_tuples - co_with.shipped_tuples
    elided = [name for name, stream in co_with.relationships.items()
              if stream.reconstructed]

    print_table(
        "Sect. 4.2 fn — relationship output optimization",
        ["variant", "shipped tuples", "payload bytes"],
        [["optimization on", co_with.shipped_tuples,
          f"{simulator.block_shipping(co_with).payload_bytes:,}"],
         ["optimization off", co_without.shipped_tuples,
          f"{simulator.block_shipping(co_without).payload_bytes:,}"]],
    )
    print(f"elided relationships: {elided}; "
          f"tuples saved: {saved_tuples}")

    assert set(elided) == {"EMPLOYMENT", "OWNERSHIP"}
    assert saved_tuples == (
        len(co_without.relationship("employment"))
        + len(co_without.relationship("ownership"))
    )
    # Connection tuples are tiny vs. full rows, so byte savings are
    # modest but real; tuple-count savings are the paper's point.
    assert bytes_with < bytes_without


@pytest.mark.benchmark(group="output-optimization")
def test_mn_relationships_never_elided(bench_org_db, benchmark):
    co = benchmark(bench_org_db.xnf_executable("deps_arc").run)
    assert not co.relationship("empproperty").reconstructed
    assert not co.relationship("projproperty").reconstructed
    assert len(co.relationship("empproperty")) > 0
