"""Sect. 5.3: shipping disciplines — message traffic and payload.

"Object shipping typically is slower than page shipping, since it often
increases the traffic (number of messages) between client and server by
an order of magnitude.  RDBMS go to the extreme of only shipping the
objects and within that only the requested attributes, although many
such objects could be blocked into a single message."

XNF's block shipping delivers the whole CO in a few large messages and,
via TAKE projection, only the requested attributes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.api.transport import TransportSimulator
from repro.sql import ast


@pytest.mark.benchmark(group="shipping")
def test_shipping_discipline_comparison(bench_org_db, benchmark):
    co = bench_org_db.xnf("deps_arc")
    simulator = TransportSimulator()

    tuple_stats = simulator.tuple_at_a_time(co)
    block_stats = simulator.block_shipping(co)
    object_stats = simulator.object_shipping(co)
    page_stats = simulator.page_shipping(co)
    benchmark(lambda: simulator.block_shipping(co))

    print_table(
        "Sect. 5.3 — shipping disciplines (deps_ARC extraction)",
        ["discipline", "messages", "total bytes"],
        [["tuple-at-a-time (classic RDBMS)", tuple_stats.messages,
          f"{tuple_stats.total_bytes:,}"],
         ["object shipping (Versant-style)", object_stats.messages,
          f"{object_stats.total_bytes:,}"],
         ["page shipping (ObjectStore-style)", page_stats.messages,
          f"{page_stats.total_bytes:,}"],
         ["XNF block shipping", block_stats.messages,
          f"{block_stats.total_bytes:,}"]],
    )

    # Order-of-magnitude message gaps, as Sect. 5.3 argues.
    assert tuple_stats.messages >= 10 * block_stats.messages
    assert object_stats.messages >= 10 * block_stats.messages
    # Page shipping has few messages but ships unrequested bytes.
    assert page_stats.total_bytes > block_stats.total_bytes
    # All disciplines carry the same wire tuples.
    assert tuple_stats.tuples == block_stats.tuples == \
        object_stats.tuples == co.shipped_tuples


@pytest.mark.benchmark(group="shipping")
def test_projection_ships_requested_attributes_only(bench_org_db,
                                                    benchmark):
    """RDBMS-style attribute filtering through TAKE projection."""
    db = bench_org_db
    full = db.xnf("deps_arc")
    definition = db.catalog.view("deps_arc").definition
    narrow_query = ast.XNFQuery(
        definitions=definition.definitions,
        take_all=False,
        take_items=(ast.TakeItem("xdept", ("DNO", "DNAME")),
                    ast.TakeItem("xemp", ("ENO",)),
                    ast.TakeItem("employment")),
    )
    narrow = db.xnf(narrow_query)
    benchmark(lambda: db.xnf(narrow_query))

    simulator = TransportSimulator()
    full_bytes = simulator.block_shipping(full).payload_bytes
    narrow_bytes = simulator.block_shipping(narrow).payload_bytes
    print_table(
        "Sect. 5.3 — attribute projection",
        ["extraction", "tuples", "payload bytes"],
        [["TAKE * (all attributes)", full.total_tuples(),
          f"{full_bytes:,}"],
         ["TAKE projected columns", narrow.total_tuples(),
          f"{narrow_bytes:,}"]],
    )
    assert narrow_bytes < full_bytes / 2
