"""Fig. 5/6: reachability rewrite — one multi-output plan vs. eight
independent single-component queries.

"Comparing single component derivation in SQL (Fig. 6) with multi-table
derivation as applied by XNF (Fig. 5b) clearly shows the impact of XNF's
inherent treatment of common subexpressions."

We execute both sides on the same engine and report wall-clock, rows
scanned, and join work.  The XNF side evaluates every shared derivation
once (spools); the SQL side recomputes parent derivations inside every
query.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_org_db, print_table
from repro.baseline.single_component import SingleComponentDerivation
from repro.sql.parser import parse_statement
from repro.workloads.orgdb import DEPS_ARC_QUERY, OrgScale


def run_baseline(db, queries):
    derivation = SingleComponentDerivation(db.catalog)
    return derivation.run_queries(queries)


def timed(fn, repeat=3):
    """Best-of-N wall clock: robust against scheduler noise."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="fig5")
def test_fig5_multi_output_vs_single_component(benchmark):
    scale = OrgScale(departments=40, employees_per_dept=12,
                     projects_per_dept=6, skills=60,
                     skills_per_employee=3, skills_per_project=3,
                     arc_fraction=0.25, seed=5)
    db = make_org_db(scale)
    derivation = SingleComponentDerivation(db.catalog)
    queries = derivation.build_queries(parse_statement(DEPS_ARC_QUERY))
    executable = db.xnf_executable("deps_arc")

    baseline_results = run_baseline(db, queries)
    baseline_time = timed(lambda: run_baseline(db, queries))
    co = executable.run()
    xnf_time = timed(executable.run)

    benchmark(executable.run)

    # Same data comes out of both derivations.
    for name in ("XDEPT", "XEMP", "XPROJ", "XSKILLS"):
        assert sorted(set(baseline_results[name])) == \
            sorted(co.component(name).rows), name

    ratio = baseline_time / xnf_time
    print_table(
        "Fig. 5/6 — derivation strategies (deps_ARC, medium scale)",
        ["strategy", "queries", "time (ms)", "relative"],
        [["single-component SQL (Fig. 6)", len(queries),
          f"{baseline_time * 1e3:.2f}", f"{ratio:.2f}x"],
         ["XNF multi-output plan (Fig. 5b)", 1,
          f"{xnf_time * 1e3:.2f}", "1.00x"]],
    )
    print(f"XNF counters: {co.counters}")

    # Shape: one shared plan beats eight fragmented ones.
    assert ratio > 1.5
    assert co.counters["spool_materializations"] >= 3


@pytest.mark.benchmark(group="fig5")
def test_fig5_scale_sweep(benchmark):
    rows = []
    ratios = []
    for departments in (10, 30, 60):
        scale = OrgScale(departments=departments, employees_per_dept=10,
                         projects_per_dept=4, skills=40,
                         skills_per_employee=2, skills_per_project=2,
                         arc_fraction=0.3, seed=6)
        db = make_org_db(scale)
        derivation = SingleComponentDerivation(db.catalog)
        queries = derivation.build_queries(
            parse_statement(DEPS_ARC_QUERY))
        executable = db.xnf_executable("deps_arc")

        baseline_time = timed(lambda: run_baseline(db, queries))
        xnf_time = timed(executable.run)
        ratios.append(baseline_time / xnf_time)
        rows.append([departments, f"{baseline_time * 1e3:.2f}",
                     f"{xnf_time * 1e3:.2f}",
                     f"{ratios[-1]:.2f}x"])
    print_table("Fig. 5/6 — scale sweep (#departments)",
                ["departments", "SQL 8-query (ms)", "XNF (ms)",
                 "SQL/XNF"], rows)
    benchmark(lambda: ratios)
    assert all(r > 1.0 for r in ratios)
