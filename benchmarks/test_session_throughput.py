"""Multi-session throughput over one shared engine: the A/B.

The ISSUE-5 tentpole claim: serving N clients from one shared
:class:`~repro.api.engine.Engine` beats the old architecture's answer
to multi-client access — one private ``Database`` per client — because
sessions share the compiled state (plan cache, XNF compiles, statistics
snapshots): a statement shape any client has run is a cache hit for
every other client.

Methodology: the same workload (4 clients x M point/navigation
queries, literals varying per query) runs twice —

* **per-client engines**: four fresh ``Database`` instances, each
  compiling every statement shape from scratch (cold caches), issued
  serially;
* **shared engine**: four sessions of one fresh ``Engine``, each
  driven by its own thread through streaming cursors.

Both sides start cold; the shared side pays each compile once in
total, the per-client side once *per client*.  Note what is and is not
claimed: CPython threads interleave rather than parallelize, so the
speedup measured here is the shared-compiled-state effect of the
engine/session split, not thread-level parallelism.  Result equality
between both sides is asserted query-for-query.  Results land in
``BENCH_sessions.json`` at the repository root.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.api.engine import Engine
from repro.workloads.orgdb import OrgScale, create_org_schema, populate_org

#: Acceptance floor: 4 sessions on one engine vs 4 private engines.
REQUIRED_SPEEDUP = 2.0

#: Timed repetitions; the fastest one is reported.
BEST_OF = 3

N_CLIENTS = 4

RESULTS_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_sessions.json"

ORG_SCALE = OrgScale(departments=20, employees_per_dept=10,
                     projects_per_dept=4, skills=40,
                     skills_per_employee=3, skills_per_project=3,
                     arc_fraction=0.25, seed=1994)

_results: dict[str, dict] = {}


#: Distinct statement *shapes* — the workload knob that matters.  A
#: multi-client application's ad-hoc surface is shape-diverse; each
#: client compiles every shape once in the per-client architecture,
#: while the shared engine compiles it once in total.
_PROJECTIONS = ["ename, sal", "eno, edno", "ename", "sal, edno, eno"]
_FILTERS = [
    "eno = ?", "eno = ? AND sal > ?", "eno = ? AND edno = ?",
    "eno = ? OR eno = ?", "eno IN (?, ?)", "eno = ? AND ename LIKE '%'",
    "eno = ? AND sal + 1 > ?", "eno = ? AND NOT (sal < ?)",
]
_SUFFIXES = ["", " ORDER BY eno", " ORDER BY sal, eno",
             " ORDER BY ename, eno"]


def statement_shapes():
    shapes = []
    for projection in _PROJECTIONS:
        for where in _FILTERS:
            for suffix in _SUFFIXES:
                shapes.append(
                    f"SELECT {projection} FROM EMP WHERE {where}{suffix}")
    shapes.append("SELECT d.dname, e.ename FROM DEPT d, EMP e "
                  "WHERE d.dno = e.edno AND e.eno = ?")
    return shapes


def client_workload(client: int, rounds: int = 1):
    """One client's (sql, params) list: every shape, fresh literals."""
    n_emps = ORG_SCALE.departments * ORG_SCALE.employees_per_dept
    out = []
    for round_no in range(rounds):
        for number, sql in enumerate(statement_shapes()):
            n_params = sql.count("?")
            seedling = client * 131 + number * 17 + round_no * 7
            params = [1 + (seedling + p * 13) % n_emps
                      for p in range(n_params)]
            if "BETWEEN" in sql:
                params = sorted(params)
            out.append((sql, params))
    return out


def populate(catalog) -> None:
    create_org_schema(catalog)
    populate_org(catalog, ORG_SCALE)
    # Point lookups go through an index, like any OLTP key access.
    catalog.create_index("IX_EMP_ENO", "EMP", ["ENO"])


def run_per_client_engines(workloads) -> tuple[float, list]:
    """The old architecture: one cold private engine per client."""
    databases = []
    for _ in workloads:
        db = Database()
        populate(db.catalog)
        databases.append(db)
    results = [None] * len(workloads)
    start = time.perf_counter()
    for index, (db, workload) in enumerate(zip(databases, workloads)):
        results[index] = [tuple(db.query(sql, params).rows)
                          for sql, params in workload]
    return time.perf_counter() - start, results


def run_shared_engine(workloads) -> tuple[float, list]:
    """The new architecture: N sessions, one engine, one plan cache."""
    engine = Engine()
    populate(engine.catalog)
    sessions = [engine.connect(label=f"client-{i}")
                for i in range(len(workloads))]
    results = [None] * len(workloads)
    errors = []

    def client(index: int):
        try:
            session = sessions[index]
            out = []
            with session.cursor() as cursor:
                for sql, params in workloads[index]:
                    cursor.execute(sql, params)
                    out.append(tuple(cursor.fetchall()))
            results[index] = out
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(workloads))]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    engine.close()
    return elapsed, results


def test_shared_engine_beats_per_client_engines():
    workloads = [client_workload(c) for c in range(N_CLIENTS)]

    baseline_time = None
    shared_time = None
    for _ in range(BEST_OF):
        b_time, b_results = run_per_client_engines(workloads)
        s_time, s_results = run_shared_engine(workloads)
        assert b_results == s_results, \
            "shared-engine sessions returned different rows"
        baseline_time = b_time if baseline_time is None \
            else min(baseline_time, b_time)
        shared_time = s_time if shared_time is None \
            else min(shared_time, s_time)

    speedup = baseline_time / shared_time
    statements = sum(len(w) for w in workloads)
    _results["shared_vs_per_client"] = {
        "clients": N_CLIENTS,
        "statements_total": statements,
        "per_client_engines_s": round(baseline_time, 6),
        "shared_engine_sessions_s": round(shared_time, 6),
        "speedup": round(speedup, 2),
        "floor": REQUIRED_SPEEDUP,
        "note": ("speedup comes from shared compiled state (plan cache "
                 "hits across sessions); CPython threads interleave, "
                 "they do not parallelize"),
    }
    print_table(
        "session throughput: 4 clients, same workload",
        ["architecture", "seconds"],
        [["4x private Database (serial, cold)",
          f"{baseline_time:.4f}"],
         ["1x Engine + 4 sessions (threads)", f"{shared_time:.4f}"],
         ["speedup", f"{speedup:.2f}x (floor {REQUIRED_SPEEDUP}x)"]],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"shared-engine sessions only {speedup:.2f}x faster than "
        f"per-client engines (floor {REQUIRED_SPEEDUP}x)"
    )


def test_streaming_cursor_first_row_latency():
    """Streaming bonus: first row of a large scan arrives after one
    batch, independent of table size."""
    engine = Engine()
    populate(engine.catalog)
    session = engine.connect(batch_size=32)
    with session.cursor() as cursor:
        cursor.execute("SELECT * FROM EMPSKILLS")
        first = cursor.fetchone()
        scanned_at_first = cursor.counters["rows_scanned"]
        total = 1 + len(cursor.fetchall())
    assert first is not None
    assert scanned_at_first <= 32
    _results["streaming_first_fetch"] = {
        "rows_total": total,
        "rows_scanned_at_first_fetch": scanned_at_first,
        "batch_size": 32,
    }


@pytest.fixture(scope="session", autouse=True)
def write_results_at_exit():
    yield
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nresults written to {RESULTS_PATH}")
