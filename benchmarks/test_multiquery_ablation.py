"""Sect. 5.1: multi-query optimization — common subexpression sharing.

"Processing an XNF view is equivalent to processing a set of SQL
queries.  The difference is, that the scope for the optimizer is larger,
because all these queries can be optimized together, avoiding
unnecessary duplication of work.  Here we can use results from research
on multiple query optimization [41]."

Ablation: the planner's spooling of shared boxes is switched off, so
every output stream re-derives its inputs — the work the paper's shared
evaluation avoids.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_org_db, print_table
from repro.optimizer.optimizer import PlannerOptions
from repro.workloads.orgdb import OrgScale
from repro.xnf.result import XNFExecutable


def executables(db):
    shared = db.xnf_executable("deps_arc")
    translated = db.xnf_executable("deps_arc").translated
    unshared = XNFExecutable(
        translated, db.catalog, db.stats,
        PlannerOptions(share_common_subexpressions=False),
    )
    return shared, unshared


@pytest.mark.benchmark(group="multiquery")
def test_sharing_ablation(benchmark):
    scale = OrgScale(departments=50, employees_per_dept=12,
                     projects_per_dept=6, skills=80,
                     skills_per_employee=3, skills_per_project=3,
                     arc_fraction=0.3, seed=41)
    db = make_org_db(scale)
    shared, unshared = executables(db)

    start = time.perf_counter()
    co_shared = shared.run()
    shared_time = time.perf_counter() - start
    start = time.perf_counter()
    co_unshared = unshared.run()
    unshared_time = time.perf_counter() - start
    benchmark(shared.run)

    for name in co_shared.components:
        assert sorted(co_shared.component(name).rows) == \
            sorted(co_unshared.component(name).rows)

    print_table(
        "Sect. 5.1 — common-subexpression sharing ablation",
        ["variant", "rows scanned", "rows joined", "time (ms)"],
        [["shared (spooled)", co_shared.counters["rows_scanned"],
          co_shared.counters["rows_joined"],
          f"{shared_time * 1e3:.2f}"],
         ["re-evaluated", co_unshared.counters["rows_scanned"],
          co_unshared.counters["rows_joined"],
          f"{unshared_time * 1e3:.2f}"]],
    )
    print(f"spool materializations: "
          f"{co_shared.counters['spool_materializations']} "
          f"(reads: {co_shared.counters['spool_reads']})")

    assert co_shared.counters["spool_materializations"] >= 3
    assert co_unshared.counters["spool_materializations"] == 0
    assert co_shared.counters["rows_scanned"] < \
        co_unshared.counters["rows_scanned"]
    assert co_shared.counters["rows_joined"] <= \
        co_unshared.counters["rows_joined"]


@pytest.mark.benchmark(group="multiquery")
def test_sharing_gap_grows_with_scale(benchmark):
    rows = []
    scan_ratios = []
    for departments in (10, 30, 60):
        scale = OrgScale(departments=departments,
                         employees_per_dept=10, projects_per_dept=5,
                         skills=50, skills_per_employee=2,
                         skills_per_project=2, arc_fraction=0.3,
                         seed=42)
        db = make_org_db(scale)
        shared, unshared = executables(db)
        co_shared = shared.run()
        co_unshared = unshared.run()
        ratio = (co_unshared.counters["rows_scanned"]
                 / max(co_shared.counters["rows_scanned"], 1))
        scan_ratios.append(ratio)
        rows.append([departments,
                     co_shared.counters["rows_scanned"],
                     co_unshared.counters["rows_scanned"],
                     f"{ratio:.2f}x"])
    print_table("Sect. 5.1 — scan work vs scale",
                ["departments", "shared scans", "unshared scans",
                 "ratio"], rows)
    benchmark(lambda: scan_ratios)
    assert all(r > 1.0 for r in scan_ratios)
