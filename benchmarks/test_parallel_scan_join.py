"""Parallel speedup floor: scan and hash join at ``parallel_degree=4``.

The ISSUE-8 tentpole claim: a morsel-driven worker pool turns cores
into query speedup — CPython threads interleave, but forked worker
*processes* do not.  The A/B runs the same queries over identical
200k-row data twice: a serial engine (``parallel_degree=1``, plans
bit-identical to the pre-parallel engine) and a parallel engine
(``parallel_degree=4`` over a hash-partitioned fact table).  Result
equality is asserted; wall-clock speedup is recorded to
``BENCH_parallel.json``.

The >= 2x acceptance floor is only *enforced* when the host actually
has 4+ cores (CI does; a 1-core container cannot speed anything up by
forking).  ``floor_enforced`` in the JSON says which case ran.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import Counter
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.executor.runtime import PipelineOptions
from repro.optimizer.optimizer import PlannerOptions
from repro.storage.partition import HashPartitioning
from repro.storage.types import Column, INTEGER, VARCHAR

REQUIRED_SPEEDUP = 2.0
DEGREE = 4
N_ROWS = 200_000
BEST_OF = 3

RESULTS_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_parallel.json"

#: The scan is made compute-bound (arithmetic in the predicate) and
#: result-light (aggregated), so the measurement is the morsel fan-out,
#: not result pickling.
SCAN_SQL = ("SELECT COUNT(*), SUM(V) FROM FACT "
            "WHERE (V * 17 + W * 5) - (V / 3) > 900 AND G <> 6")

JOIN_SQL = ("SELECT d.LABEL, COUNT(*), SUM(f.V), AVG(f.W) "
            "FROM FACT f, DIM d "
            "WHERE f.G = d.G AND f.V + f.W > 120 GROUP BY d.LABEL")

_results: dict[str, dict] = {}


def build_db(degree: int) -> Database:
    options = PipelineOptions(planner=PlannerOptions(
        parallel_degree=degree, parallel_row_threshold=1024))
    db = Database(pipeline_options=options)
    partitioning = HashPartitioning(("ID",), DEGREE) if degree > 1 \
        else None
    fact = db.catalog.create_table("FACT", [
        Column("ID", INTEGER, primary_key=True),
        Column("G", INTEGER), Column("V", INTEGER),
        Column("W", INTEGER),
    ], partitioning=partitioning)
    dim = db.catalog.create_table("DIM", [
        Column("G", INTEGER, primary_key=True),
        Column("LABEL", VARCHAR),
    ])
    rng = random.Random(1994)
    for i in range(N_ROWS):
        fact.insert((i, rng.randrange(16), rng.randrange(100),
                     rng.randrange(40)))
    for g in range(16):
        dim.insert((g, f"label{g}"))
    db.analyze()
    return db


def best_time(db: Database, sql: str) -> tuple[float, list]:
    rows = None
    best = None
    for _ in range(BEST_OF):
        start = time.perf_counter()
        rows = db.query(sql).rows
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


@pytest.fixture(scope="module")
def ab_pair():
    serial = build_db(degree=1)
    parallel = build_db(degree=DEGREE)
    # Warm both plan caches and the worker pool outside the timing.
    serial.query(SCAN_SQL)
    parallel.query(SCAN_SQL)
    yield serial, parallel
    parallel.close()
    serial.close()


def run_case(name: str, sql: str, ab_pair) -> None:
    serial, parallel = ab_pair
    serial_s, serial_rows = best_time(serial, sql)
    parallel_s, parallel_rows = best_time(parallel, sql)
    assert Counter(parallel_rows) == Counter(serial_rows)
    counters = parallel.engine.parallel.counters
    assert counters["parallel_queries"] > 0, \
        f"parallel engine never went parallel: {counters}"
    cores = os.cpu_count() or 1
    floor_enforced = cores >= DEGREE
    speedup = serial_s / parallel_s
    _results[name] = {
        "rows": N_ROWS,
        "degree": DEGREE,
        "cores": cores,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(speedup, 2),
        "floor": REQUIRED_SPEEDUP,
        "floor_enforced": floor_enforced,
    }
    print_table(
        f"parallel {name}: {N_ROWS} rows, degree {DEGREE}, "
        f"{cores} cores",
        ["engine", "seconds"],
        [["serial (degree 1)", f"{serial_s:.4f}"],
         [f"parallel (degree {DEGREE})", f"{parallel_s:.4f}"],
         ["speedup", f"{speedup:.2f}x (floor {REQUIRED_SPEEDUP}x, "
          f"{'enforced' if floor_enforced else 'not enforced: <4 cores'}"
          ")"]],
    )
    if floor_enforced:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{name}: parallel only {speedup:.2f}x faster at degree "
            f"{DEGREE} on {cores} cores (floor {REQUIRED_SPEEDUP}x)")


def test_parallel_scan_speedup(ab_pair):
    run_case("scan", SCAN_SQL, ab_pair)


def test_parallel_hash_join_speedup(ab_pair):
    run_case("hash_join", JOIN_SQL, ab_pair)


@pytest.fixture(scope="session", autouse=True)
def write_results_at_exit():
    yield
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nresults written to {RESULTS_PATH}")
