"""Batch-at-a-time vs row-at-a-time execution: the A/B benchmark.

The batch executor replaces per-row generator resumptions with per-batch
comprehensions (ISSUE 1 tentpole).  Each workload compiles one plan and
executes it in both modes — same plan, same data, only the execution
protocol differs — so the measured delta is purely the interpreter
overhead batching removes.

Asserted: batch beats row on the scan+filter and hash-join workloads
(the acceptance criterion); the index-nested-loop and aggregation
workloads are reported and held to a no-regression bound.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.executor.runtime import PipelineOptions
from repro.optimizer.optimizer import PlannerOptions
from repro.sql.parser import parse_statement
from repro.workloads.oo1 import OO1Scale, create_oo1_schema, populate_oo1
from repro.workloads.orgdb import OrgScale, create_org_schema, populate_org

BENCH_ORG_SCALE = OrgScale(departments=250, employees_per_dept=40,
                           projects_per_dept=8, skills=120,
                           skills_per_employee=3, skills_per_project=3,
                           arc_fraction=0.2, seed=1994)

BENCH_OO1_SCALE = OO1Scale(parts=12000, fanout=3, seed=7)


@pytest.fixture(scope="module")
def org_db() -> Database:
    db = Database()
    create_org_schema(db.catalog)
    populate_org(db.catalog, BENCH_ORG_SCALE)
    return db


@pytest.fixture(scope="module")
def org_db_noindex() -> Database:
    db = Database(PipelineOptions(planner=PlannerOptions(
        use_indexes=False)))
    create_org_schema(db.catalog, with_indexes=False)
    populate_org(db.catalog, BENCH_ORG_SCALE)
    return db


@pytest.fixture(scope="module")
def oo1_db() -> Database:
    db = Database()
    create_oo1_schema(db.catalog)
    populate_oo1(db.catalog, BENCH_OO1_SCALE)
    return db


def ab_measure(db: Database, sql: str, repeats: int = 9):
    """Compile once; run in row and batch mode, best-of-N each.

    Best-of-9 because the strict A/B asserts below gate CI: with a
    2x+ underlying gap, nine samples make a scheduler-noise loss of
    the *minimum* vanishingly unlikely on shared runners.

    Returns (row_time, batch_time, row_count, plan_text).
    """
    compiled = db.pipeline.compile_select(parse_statement(sql))
    plan = compiled.plan

    def run() -> int:
        return len(db.pipeline.run_compiled(compiled, plan.new_context()))

    timings = {}
    counts = {}
    # Alternate modes so cache warming effects hit both equally.
    for mode in ("warmup", "row", "batch"):
        plan.batch_execution = mode != "row"
        best = float("inf")
        for _ in range(1 if mode == "warmup" else repeats):
            start = time.perf_counter()
            counts[mode] = run()
            best = min(best, time.perf_counter() - start)
        timings[mode] = best
    plan.batch_execution = True
    assert counts["row"] == counts["batch"]
    return (timings["row"], timings["batch"], counts["batch"],
            compiled.plan.explain())


def report(title: str, results: list[tuple[str, float, float, int]]):
    rows = []
    for name, row_time, batch_time, count in results:
        speedup = row_time / batch_time if batch_time else float("inf")
        rows.append([name, count, f"{row_time * 1e3:.2f}",
                     f"{batch_time * 1e3:.2f}", f"{speedup:.2f}x"])
    print_table(title,
                ["workload", "rows out", "row (ms)", "batch (ms)",
                 "speedup"], rows)


@pytest.mark.benchmark(group="batch-executor")
def test_scan_filter_speedup(oo1_db, org_db, benchmark):
    """Scans + filters: the OO1 parts table and the org EMP table."""
    oo1_sql = ("SELECT id, x, y FROM PART "
               "WHERE x < 50000 AND y >= 20000")
    org_sql = ("SELECT ename, sal FROM EMP "
               "WHERE sal >= 100000 AND sal < 180000")
    oo1_row, oo1_batch, oo1_count, oo1_plan = ab_measure(oo1_db, oo1_sql)
    org_row, org_batch, org_count, _ = ab_measure(org_db, org_sql)
    assert "TableScan" in oo1_plan and "Filter" in oo1_plan
    assert oo1_count > 1000 and org_count > 1000

    report("Batch executor — scan + filter",
           [["OO1 PART scan+filter", oo1_row, oo1_batch, oo1_count],
            ["org EMP scan+filter", org_row, org_batch, org_count]])
    compiled = oo1_db.pipeline.compile_select(parse_statement(oo1_sql))
    benchmark(lambda: oo1_db.pipeline.run_compiled(
        compiled, compiled.plan.new_context()))

    assert oo1_batch < oo1_row, \
        f"batch ({oo1_batch:.4f}s) not faster than row ({oo1_row:.4f}s)"
    assert org_batch < org_row, \
        f"batch ({org_batch:.4f}s) not faster than row ({org_row:.4f}s)"


@pytest.mark.benchmark(group="batch-executor")
def test_hash_join_speedup(org_db_noindex, benchmark):
    """Equi join without indexes: forced HashJoin on EMP x DEPT."""
    sql = ("SELECT e.ename, d.dname FROM DEPT d, EMP e "
           "WHERE d.dno = e.edno AND e.sal >= 60000")
    row_time, batch_time, count, plan_text = ab_measure(org_db_noindex,
                                                        sql)
    assert "HashJoin" in plan_text
    assert count > 5000

    report("Batch executor — hash join",
           [["EMP x DEPT hash join", row_time, batch_time, count]])
    compiled = org_db_noindex.pipeline.compile_select(parse_statement(sql))
    benchmark(lambda: org_db_noindex.pipeline.run_compiled(
        compiled, compiled.plan.new_context()))

    assert batch_time < row_time, \
        f"batch ({batch_time:.4f}s) not faster than row ({row_time:.4f}s)"


@pytest.mark.benchmark(group="batch-executor")
def test_index_join_and_aggregate_no_regression(org_db, benchmark):
    """Index-nested-loop join and hash aggregation: batch mode must not
    regress.  These paths gain little from batching, so the bound is
    deliberately loose (1.6x) to ride out scheduler noise on shared CI
    runners; the speedup claims are asserted by the scan/hash-join
    tests, whose margins are wide."""
    join_sql = ("SELECT e.ename, d.dname FROM DEPT d, EMP e "
                "WHERE d.dno = e.edno AND d.loc = 'ARC'")
    agg_sql = ("SELECT d.loc, COUNT(*), SUM(e.sal) FROM DEPT d, EMP e "
               "WHERE d.dno = e.edno GROUP BY d.loc")
    join_row, join_batch, join_count, join_plan = ab_measure(org_db,
                                                             join_sql)
    agg_row, agg_batch, agg_count, _ = ab_measure(org_db, agg_sql)
    assert "IndexNLJoin" in join_plan

    report("Batch executor — index join / aggregation",
           [["DEPT->EMP index NL join", join_row, join_batch, join_count],
            ["group-by aggregation", agg_row, agg_batch, agg_count]])
    compiled = org_db.pipeline.compile_select(parse_statement(join_sql))
    benchmark(lambda: org_db.pipeline.run_compiled(
        compiled, compiled.plan.new_context()))

    assert join_batch < join_row * 1.6
    assert agg_batch < agg_row * 1.6
