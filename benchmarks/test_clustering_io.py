"""Sect. 5.1 / Sect. 6: CO clustering for I/O reduction.

"the plan optimizer should take into account any parent/child links
present in the database, and clustering of data on disk for I/O and
pathlength reduction ...  Together with adequate CO clustering
strategies ... these steps lead to a relatively fast extraction of COs."

The paper defers CO clustering to future work; this bench quantifies
the projected benefit on our simulated page store: the CO-shaped access
pattern (parent, then its children) is replayed against a sequential
layout and a CO-clustered layout under a small LRU buffer.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_org_db, print_table
from repro.storage.clustering import (co_clustered_layout,
                                      hierarchical_access_trace,
                                      measure_faults, sequential_layout)
from repro.workloads.orgdb import OrgScale


@pytest.mark.benchmark(group="clustering")
def test_co_clustering_reduces_page_faults(benchmark):
    db = make_org_db(OrgScale(departments=40, employees_per_dept=10,
                              projects_per_dept=5, skills=60,
                              skills_per_employee=3,
                              skills_per_project=3, arc_fraction=0.3,
                              seed=51))
    catalog = db.catalog
    trace = list(hierarchical_access_trace(catalog, "DEPT"))
    tables = sorted({t for t, _r in trace})
    sequential = sequential_layout(catalog, tables, rows_per_page=8)
    clustered = benchmark(co_clustered_layout, catalog, "DEPT",
                          rows_per_page=8)

    rows = []
    improvements = []
    for buffer_pages in (2, 8, 32):
        seq_faults = measure_faults(sequential, trace,
                                    buffer_pages).faults
        clu_faults = measure_faults(clustered, trace,
                                    buffer_pages).faults
        improvements.append(seq_faults / max(clu_faults, 1))
        rows.append([buffer_pages, seq_faults, clu_faults,
                     f"{improvements[-1]:.1f}x"])
    print_table(
        "Sect. 5.1 — CO clustering, page faults of the CO access "
        "pattern",
        ["buffer pages", "sequential layout", "CO-clustered layout",
         "improvement"], rows)
    print(f"trace length: {len(trace)} row accesses; "
          f"{sequential.page_count} pages sequential, "
          f"{clustered.page_count} pages clustered")

    # Clustering wins most when the buffer is small (here it reaches
    # the cold-miss optimum: one fault per page); the advantage shrinks
    # as the buffer approaches the database size.
    assert improvements[0] > 1.5
    assert improvements[0] >= improvements[-1]


@pytest.mark.benchmark(group="clustering")
def test_scan_pattern_unharmed_by_clustering(benchmark):
    """Full-table scans (the tabular view) see identical I/O either
    way — clustering helps COs without hurting relational access."""
    db = make_org_db(OrgScale(departments=30, employees_per_dept=8,
                              projects_per_dept=4, skills=40,
                              arc_fraction=0.3, seed=52))
    catalog = db.catalog
    tables = ["DEPT", "EMP", "PROJ", "SKILLS", "EMPSKILLS", "PROJSKILLS"]
    scan_trace = [
        (name, rid)
        for name in tables
        for rid, _row in catalog.table(name).scan()
    ]
    sequential = sequential_layout(catalog, tables, rows_per_page=8)
    clustered = co_clustered_layout(catalog, "DEPT", rows_per_page=8,
                                    extra_tables=("SKILLS",))
    benchmark(lambda: measure_faults(sequential, scan_trace, 4))
    seq_faults = measure_faults(sequential, scan_trace, 4).faults
    clu_faults = measure_faults(clustered, scan_trace, 4).faults
    print(f"\nscan faults: sequential={seq_faults} "
          f"clustered={clu_faults} "
          f"(pages: {sequential.page_count}/{clustered.page_count})")
    # A scan touches every page exactly once under the sequential
    # layout; the clustered layout pays at most a small constant more.
    assert seq_faults == sequential.page_count
    assert clu_faults <= int(clustered.page_count * 3)