"""Table 1: SQL single-component derivation vs. XNF derivation.

Paper (Tab. 1, for the Fig. 1 deps_ARC query):

    Component    SQL Derivation  Replicated  XNF Derivation
    xdept             1              0             1
    xemp              2              1             1
    xproj             2              1             1
    employment        3              3             0
    ownership         3              3             0
    xskills           6              4             4
    empproperty       3              2             0
    projproperty      3              2             0
    Summary          23             16             7

"It shows that the single component retrieval costs 8 distinct queries
... together showing 23 separate NF QGM operations (mostly join).  In
the XNF approach all components are derived ... performing only 6 join
operations and 1 selection."

We rebuild both sides generically and count operations with the
convention of DESIGN.md §4 (selections + binary joins in the final
QGM).  The XNF column reproduces the paper exactly (7 = 6 joins + 1
selection, with per-element attribution); the SQL column differs by one
operation on xskills (we count the UNION's second existential path
explicitly), which the shape assertions tolerate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.baseline.single_component import SingleComponentDerivation
from repro.qgm.ops import (count_operations, distinct_operations,
                           replicated_operations)
from repro.sql.parser import parse_statement
from repro.workloads.orgdb import DEPS_ARC_QUERY

PAPER_SQL = {"XDEPT": 1, "XEMP": 2, "XPROJ": 2, "EMPLOYMENT": 3,
             "OWNERSHIP": 3, "XSKILLS": 6, "EMPPROPERTY": 3,
             "PROJPROPERTY": 3}
PAPER_REPLICATED = {"XDEPT": 0, "XEMP": 1, "XPROJ": 1, "EMPLOYMENT": 3,
                    "OWNERSHIP": 3, "XSKILLS": 4, "EMPPROPERTY": 2,
                    "PROJPROPERTY": 2}
PAPER_XNF = {"XDEPT": 1, "XEMP": 1, "XPROJ": 1, "EMPLOYMENT": 0,
             "OWNERSHIP": 0, "XSKILLS": 4, "EMPPROPERTY": 0,
             "PROJPROPERTY": 0}


def build_counts(db):
    query = parse_statement(DEPS_ARC_QUERY)
    derivation = SingleComponentDerivation(db.catalog)
    queries = derivation.build_queries(query)
    translated = db.xnf_executable("deps_arc").translated
    xnf_ops = count_operations(translated.graph)
    return queries, xnf_ops


@pytest.mark.benchmark(group="table1")
def test_table1_operation_counts(bench_org_db, benchmark):
    queries, xnf_ops = benchmark(build_counts, bench_org_db)

    replicated = replicated_operations([q.operations for q in queries])
    rows = []
    sql_total = 0
    replicated_total = 0
    for standalone, duplicate_count in zip(queries, replicated):
        name = standalone.name
        sql_total += standalone.operations.total
        replicated_total += duplicate_count
        rows.append([
            name.lower(),
            PAPER_SQL[name], standalone.operations.total,
            PAPER_REPLICATED[name], duplicate_count,
            PAPER_XNF[name],
        ])
    rows.append(["SUMMARY", 23, sql_total, 16, replicated_total,
                 sum(PAPER_XNF.values())])
    print_table(
        "Table 1 — common-subexpression comparison (paper vs measured)",
        ["component", "SQL(paper)", "SQL(measured)", "repl(paper)",
         "repl(measured)", "XNF(paper=measured)"],
        rows,
    )
    print(f"XNF measured: {xnf_ops.selections} selection(s) + "
          f"{xnf_ops.joins} join(s) = {xnf_ops.total}")
    distinct = distinct_operations([q.operations for q in queries])
    print(f"distinct operations across the 8 SQL queries: {distinct}")

    # --- shape assertions -------------------------------------------------
    # (1) The paper's headline: XNF needs exactly 6 joins + 1 selection.
    assert xnf_ops.selections == 1 and xnf_ops.joins == 6
    # (2) Per-element XNF attribution matches Table 1 exactly.
    by_name = {q.name: q.operations.total for q in queries}
    for name in ("XDEPT", "XEMP", "XPROJ", "EMPLOYMENT", "OWNERSHIP",
                 "EMPPROPERTY", "PROJPROPERTY"):
        assert by_name[name] == PAPER_SQL[name], name
    # (3) xskills within one operation of the paper's accounting.
    assert abs(by_name["XSKILLS"] - PAPER_SQL["XSKILLS"]) <= 1
    # (4) The SQL total carries ~3x the XNF work; replication dominates.
    assert sql_total >= 3 * xnf_ops.total
    assert replicated_total >= sql_total // 3
    # (5) The optimality claim: distinct operations across all eight SQL
    # queries equal the XNF plan's operations ("the best we can do in
    # SQL ... is the same as we get with XNF").
    assert distinct == xnf_ops.total == 7


@pytest.mark.benchmark(group="table1")
def test_table1_execution_cost_follows_counts(bench_org_db, benchmark):
    """Operation counts translate to real work: executing the 8
    standalone queries scans strictly more rows than the XNF plan."""
    query = parse_statement(DEPS_ARC_QUERY)
    derivation = SingleComponentDerivation(bench_org_db.catalog)
    queries = derivation.build_queries(query)

    def run_baseline():
        return derivation.run_queries(queries)

    benchmark(run_baseline)
    executable = bench_org_db.xnf_executable("deps_arc")
    co = executable.run()
    print(f"XNF extraction produced {co.total_tuples()} tuples "
          f"(scanned {co.counters['rows_scanned']} rows)")
    assert co.total_tuples() > 0
