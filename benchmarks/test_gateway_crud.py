"""Overhead of CRUD through the view put-back path (ISSUE 10).

The lens claim: routing DML through a composite-object view — static
classification, WHERE/SET translation, and the dynamic get∘put identity
check — costs a bounded constant factor over hand-written base-table
DML.  The A/B, same engine, same rows:

* **base**: UPDATE/INSERT/DELETE statements naming the base table —
  the floor, the plain DML executor;
* **view**: the identical logical statements naming a single-source
  view (so the put-back translator runs on every statement, plan
  caches warm after the first).

Acceptance ceiling: the view path is at most ``2x`` the hand-written
per-statement time.  Results land in ``BENCH_view_update.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.engine import Engine

#: Acceptance ceiling: view-path CRUD vs hand-written base DML.
MAX_OVERHEAD = 2.0

#: Timed repetitions; the best (lowest-overhead) one is reported.
BEST_OF = 3

N_ROWS = 400
N_STATEMENTS = 300

RESULTS_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_view_update.json"

_results: dict[str, dict] = {}


def build_session():
    engine = Engine()
    session = engine.connect()
    session.execute("CREATE TABLE EMP (ENO INT PRIMARY KEY,"
                    " ENAME CHAR(12), SAL INT, DNO INT)")
    session.begin()
    for e in range(N_ROWS):
        session.execute("INSERT INTO EMP VALUES (?, ?, ?, ?)",
                        [e, f"e{e}", 100 + e, e % 10])
    session.commit()
    session.execute("CREATE VIEW VEMP (ID, NAME, PAY) AS"
                    " SELECT ENO, ENAME, SAL FROM EMP WHERE SAL >= 0")
    return engine, session


def drive(session, target: str, columns: tuple[str, str, str]) -> float:
    """Time a mixed CRUD loop against ``target``; seconds of wall."""
    key, name, pay = columns
    start = time.perf_counter()
    for i in range(N_STATEMENTS):
        kind = i % 3
        if kind == 0:
            session.execute(
                f"UPDATE {target} SET {pay} = {pay} + 1"
                f" WHERE {key} = ?", [i % N_ROWS])
        elif kind == 1:
            session.execute(
                f"INSERT INTO {target} ({key}, {name}, {pay})"
                f" VALUES (?, ?, ?)", [10_000 + i, f"n{i}", 7])
        else:
            session.execute(
                f"DELETE FROM {target} WHERE {key} = ?",
                [10_000 + i - 2])
    return time.perf_counter() - start


def test_view_crud_overhead_bounded():
    best = None
    for _ in range(BEST_OF):
        engine, session = build_session()
        base_s = drive(session, "EMP", ("ENO", "ENAME", "SAL"))
        engine.close()

        engine, session = build_session()
        view_s = drive(session, "VEMP", ("ID", "NAME", "PAY"))
        engine.close()

        measurement = {"base_s": base_s, "view_s": view_s,
                       "overhead": view_s / base_s}
        if best is None or measurement["overhead"] < best["overhead"]:
            best = measurement

    base_us = best["base_s"] / N_STATEMENTS * 1e6
    view_us = best["view_s"] / N_STATEMENTS * 1e6
    _results["view_crud"] = {
        "rows": N_ROWS,
        "statements": N_STATEMENTS,
        "base_per_stmt_us": round(base_us, 1),
        "view_per_stmt_us": round(view_us, 1),
        "overhead": round(best["overhead"], 3),
        "ceiling": MAX_OVERHEAD,
        "note": ("overhead = identical logical CRUD through the "
                 "put-back translator (incl. the get-put round-trip "
                 "check) vs naming the base table directly"),
    }
    print_table(
        f"view-path CRUD ({N_STATEMENTS} statements over "
        f"{N_ROWS} rows)",
        ["configuration", "per-statement"],
        [["base-table DML (hand-written)", f"{base_us:.0f} us"],
         ["view DML (lens put-back)", f"{view_us:.0f} us"],
         ["overhead",
          f"{best['overhead']:.2f}x (ceiling {MAX_OVERHEAD}x)"]],
    )
    assert best["overhead"] <= MAX_OVERHEAD, (
        f"view-path CRUD is {best['overhead']:.2f}x hand-written base "
        f"DML (ceiling {MAX_OVERHEAD}x)"
    )


@pytest.fixture(scope="session", autouse=True)
def write_results_at_exit():
    yield
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nresults written to {RESULTS_PATH}")
