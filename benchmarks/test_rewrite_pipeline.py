"""Rewrite layer A/B: decorrelation + view merging vs raw compilation.

The ISSUE-4 tentpole claim: the expanded rewrite catalog must pay
measurable speed, not just cleaner graphs.  Two workloads, each run
against two identically populated databases — one compiling through the
full rule catalog, one with ``apply_nf_rewrite=False`` — under the same
best-of-N harness as the plan-cache benchmark:

* **correlated subquery**: a per-department AVG filter.  Unrewritten,
  the S quantifier re-executes its subquery plan per distinct outer
  binding (memoized nested re-execution); ScalarAggToJoin turns it into
  one group-by plus a hash join.  Floor: >= 3x.
* **view stack**: selective queries through a two-deep SQL view chain
  plus a dual view reference.  Unrewritten, every execution evaluates
  the whole chain and filters on top; ViewMerge + SelectMerge +
  pushdown collapse it into a single indexed join (and JoinElim drops
  the redundant self-join of the dual reference).  Floor: >= 2x.

Result equality between the two engines is asserted on every workload,
so the benchmark doubles as a soundness check.  Results land in
``BENCH_rewrite.json`` at the repository root; CI uploads the file and
enforces the floors.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.executor.runtime import PipelineOptions
from repro.workloads.orgdb import OrgScale, create_org_schema, populate_org

#: Acceptance floors (asserted here and in CI).
REQUIRED_CORRELATED_SPEEDUP = 3.0
REQUIRED_VIEW_STACK_SPEEDUP = 2.0

#: Timed repetitions; the fastest one is reported.
BEST_OF = 3

#: Executions per timed repetition.
RUNS = 40

RESULTS_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_rewrite.json"

_results: dict[str, dict] = {}

ORG_SCALE = OrgScale(departments=30, employees_per_dept=12,
                     projects_per_dept=4, skills=40,
                     skills_per_employee=3, skills_per_project=3,
                     arc_fraction=0.25, seed=1994)

VIEW_DDL = (
    "CREATE VIEW V_ARC_EMP AS SELECT e.eno, e.ename, e.edno, e.sal "
    "FROM EMP e, DEPT d WHERE e.edno = d.dno AND d.loc = 'ARC'",
    "CREATE VIEW V_ARC_RICH AS SELECT eno, ename, sal FROM V_ARC_EMP "
    "WHERE sal > 0",
)


def build_db(rewrite: bool) -> Database:
    options = PipelineOptions(apply_nf_rewrite=rewrite)
    db = Database(options)
    # No join indexes: the correlation column (EDNO) is deliberately
    # unindexed, as in any schema where not every predicate column has
    # an access path — nested re-execution then pays a scan per
    # distinct binding, which is the cost decorrelation removes.
    create_org_schema(db.catalog, with_indexes=False)
    populate_org(db.catalog, ORG_SCALE)
    # The view-stack point queries go through a key index like any
    # OLTP access; only the *merged* plan can reach it.
    db.execute("CREATE INDEX IX_EMP_ENO ON EMP (ENO)")
    for ddl in VIEW_DDL:
        db.execute(ddl)
    db.analyze()
    return db


@pytest.fixture(scope="module")
def ab() -> tuple[Database, Database]:
    return build_db(True), build_db(False)


def best_of(measure, repetitions: int = BEST_OF) -> float:
    return min(measure() for _ in range(repetitions))


def timed(run_all) -> float:
    start = time.perf_counter()
    run_all()
    return time.perf_counter() - start


def record(name: str, queries: int, rewritten_s: float, raw_s: float,
           floor: float) -> float:
    speedup = raw_s / rewritten_s
    _results[name] = {
        "queries": queries,
        "raw_seconds": round(raw_s, 6),
        "rewritten_seconds": round(rewritten_s, 6),
        "raw_qps": round(queries / raw_s, 1),
        "rewritten_qps": round(queries / rewritten_s, 1),
        "speedup": round(speedup, 2),
        "required_speedup": floor,
        "best_of": BEST_OF,
    }
    RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print_table(
        f"rewrite A/B: {name} (best of {BEST_OF})",
        ["pipeline", "queries/sec", "speedup"],
        [["rewrite disabled", f"{queries / raw_s:,.0f}", "1.0x"],
         ["full rule catalog", f"{queries / rewritten_s:,.0f}",
          f"{speedup:.1f}x"]],
    )
    return speedup


# ----------------------------------------------------------------------
# Workload 1: correlated scalar aggregate subquery
# ----------------------------------------------------------------------
CORRELATED_SQL = (
    "SELECT e.eno, e.ename FROM EMP e WHERE e.sal > "
    "(SELECT AVG(e2.sal) FROM EMP e2 WHERE e2.edno = e.edno)"
)


def test_correlated_subquery_speedup(ab):
    rewritten, raw = ab
    assert sorted(rewritten.query(CORRELATED_SQL).rows) \
        == sorted(raw.query(CORRELATED_SQL).rows)
    # The rewritten plan joins a grouped box instead of re-executing
    # the subquery per department.
    trace = rewritten.explain(CORRELATED_SQL, rewrite_trace=True)
    assert "ScalarAggToJoin" in trace

    rewritten_s = best_of(lambda: timed(
        lambda: [rewritten.query(CORRELATED_SQL) for _ in range(RUNS)]))
    raw_s = best_of(lambda: timed(
        lambda: [raw.query(CORRELATED_SQL) for _ in range(RUNS)]))
    speedup = record("correlated_subquery", RUNS, rewritten_s, raw_s,
                     REQUIRED_CORRELATED_SPEEDUP)
    assert speedup >= REQUIRED_CORRELATED_SPEEDUP, (
        f"decorrelated plan only {speedup:.1f}x faster than nested "
        f"re-execution (need >= {REQUIRED_CORRELATED_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# Workload 2: view stack + dual view reference
# ----------------------------------------------------------------------
def view_stack_queries() -> list[str]:
    employees = ORG_SCALE.departments * ORG_SCALE.employees_per_dept
    ids = [1 + (i * 37) % employees for i in range(12)]
    queries = [
        f"SELECT ename, sal FROM V_ARC_RICH WHERE eno = {eno}"
        for eno in ids
    ]
    queries.append(
        "SELECT a.ename FROM V_ARC_EMP a, V_ARC_EMP b "
        "WHERE a.eno = b.eno AND a.sal > 50"
    )
    return queries


def test_view_stack_speedup(ab):
    rewritten, raw = ab
    queries = view_stack_queries()
    for sql in queries:
        assert sorted(rewritten.query(sql).rows) \
            == sorted(raw.query(sql).rows), sql

    rewritten_s = best_of(lambda: timed(lambda: [
        rewritten.query(sql) for _ in range(RUNS // 4)
        for sql in queries]))
    raw_s = best_of(lambda: timed(lambda: [
        raw.query(sql) for _ in range(RUNS // 4)
        for sql in queries]))
    runs = (RUNS // 4) * len(queries)
    speedup = record("view_stack", runs, rewritten_s, raw_s,
                     REQUIRED_VIEW_STACK_SPEEDUP)
    assert speedup >= REQUIRED_VIEW_STACK_SPEEDUP, (
        f"view-merged plans only {speedup:.1f}x faster than the "
        f"unmerged chain (need >= {REQUIRED_VIEW_STACK_SPEEDUP}x)"
    )
