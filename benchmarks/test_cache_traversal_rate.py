"""Sect. 5.2: cache traversal rate on the Cattell OO1 benchmark.

"Using the traversal operation from that benchmark, we could access in a
pre-loaded XNF cache more than 100,000 tuples per second which matches
the requirements for CAD applications."

The OO1 traversal: start at a random part, follow CONNECTS to depth 7,
counting every part touched.  The cache is pre-loaded (extraction cost
excluded, as in the paper's "pre-loaded XNF cache").
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.cache.manager import XNFCache
from repro.workloads.oo1 import (OO1Scale, create_oo1_schema,
                                 oo1_view_query, populate_oo1)

PAPER_CLAIM_TUPLES_PER_SECOND = 100_000
TRAVERSAL_DEPTH = 7


def build_cache(parts: int) -> XNFCache:
    db = Database()
    create_oo1_schema(db.catalog)
    populate_oo1(db.catalog, OO1Scale(parts=parts, seed=1994))
    executable = db.xnf_executable(oo1_view_query(1, max(parts // 100,
                                                         2)))
    return XNFCache.evaluate(executable)


def traverse(start, depth: int) -> int:
    """Depth-first OO1 traversal; returns tuples touched."""
    touched = 1
    if depth == 0:
        return touched
    for child in start.children("connects"):
        touched += traverse(child, depth - 1)
    return touched


@pytest.mark.benchmark(group="cache-traversal")
def test_oo1_traversal_rate(benchmark):
    cache = build_cache(parts=5000)
    parts = cache.extent("xpart")
    rng = random.Random(7)
    starts = [rng.choice(parts) for _ in range(20)]

    def run_traversals() -> int:
        return sum(traverse(s, TRAVERSAL_DEPTH) for s in starts)

    touched = run_traversals()
    start_time = time.perf_counter()
    touched = run_traversals()
    elapsed = time.perf_counter() - start_time
    rate = touched / elapsed
    benchmark(run_traversals)

    print_table(
        "Sect. 5.2 — OO1 depth-7 traversal in the pre-loaded cache",
        ["metric", "paper", "measured"],
        [["tuples/second", f">{PAPER_CLAIM_TUPLES_PER_SECOND:,}",
          f"{rate:,.0f}"],
         ["tuples touched", "-", f"{touched:,}"],
         ["cached parts", "20,000 (small OO1)", f"{len(parts):,}"]],
    )
    assert rate > PAPER_CLAIM_TUPLES_PER_SECOND, (
        f"traversal rate {rate:,.0f} under the paper's 100k/s claim"
    )


@pytest.mark.benchmark(group="cache-traversal")
def test_cursor_scan_rate(benchmark):
    """Independent-cursor browsing is also above the claimed rate."""
    cache = build_cache(parts=5000)

    def scan() -> int:
        cursor = cache.independent_cursor("xpart")
        count = 0
        obj = cursor.fetch_next()
        while obj is not None:
            count += 1
            obj = cursor.fetch_next()
        return count

    count = scan()
    start_time = time.perf_counter()
    count = scan()
    elapsed = time.perf_counter() - start_time
    rate = count / elapsed
    benchmark(scan)
    print(f"\ncursor scan: {count:,} tuples at {rate:,.0f} tuples/s")
    assert rate > PAPER_CLAIM_TUPLES_PER_SECOND


@pytest.mark.benchmark(group="cache-traversal")
def test_traversal_rate_scales_with_cache_size(benchmark):
    """The rate holds as the cached CO grows (pointer navigation is
    size-independent)."""
    rows = []
    rates = []
    for parts in (1000, 5000, 15000):
        cache = build_cache(parts=parts)
        extent = cache.extent("xpart")
        rng = random.Random(3)
        starts = [rng.choice(extent) for _ in range(10)]
        touched = sum(traverse(s, TRAVERSAL_DEPTH) for s in starts)
        start_time = time.perf_counter()
        touched = sum(traverse(s, TRAVERSAL_DEPTH) for s in starts)
        elapsed = time.perf_counter() - start_time
        rates.append(touched / elapsed)
        rows.append([f"{parts:,}", f"{len(extent):,}",
                     f"{rates[-1]:,.0f}"])
    print_table("Sect. 5.2 — traversal rate vs cache size",
                ["parts in db", "parts cached", "tuples/s"], rows)
    benchmark(lambda: rates)
    assert min(rates) > PAPER_CLAIM_TUPLES_PER_SECOND
