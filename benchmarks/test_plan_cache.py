"""Prepared statements + plan cache vs full recompilation: the A/B.

The ISSUE-3 tentpole claim: repeated point lookups and navigation
queries spend most of their wall-clock re-deriving the same plan
through parse -> QGM -> rewrite -> optimize, so a parameterized plan
cache ("compile once, execute many", Starburst's stored-plan stance)
must lift repeated-query throughput by at least 5x.

Methodology: each workload runs the same query mix against two
identically populated databases — one with the default plan cache, one
with ``plan_cache_size=0`` (every statement recompiles) — under a
best-of-N harness (N timed repetitions, fastest wins, so scheduler
noise can only *hurt* the reported speedup).  Result equality between
the two engines is asserted on every query, so the benchmark doubles
as an end-to-end soundness check.  Results land in
``BENCH_plan_cache.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.database import Database
from repro.executor.runtime import PipelineOptions
from repro.workloads.oo1 import OO1Scale, create_oo1_schema, populate_oo1
from repro.workloads.orgdb import OrgScale, create_org_schema, populate_org

#: Acceptance floor for cached-vs-uncached repeated point queries.
REQUIRED_SPEEDUP = 5.0

#: Timed repetitions; the fastest one is reported.
BEST_OF = 3

RESULTS_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_plan_cache.json"

_results: dict[str, dict] = {}

ORG_SCALE = OrgScale(departments=20, employees_per_dept=10,
                     projects_per_dept=4, skills=40,
                     skills_per_employee=3, skills_per_project=3,
                     arc_fraction=0.25, seed=1994)

OO1_SCALE = OO1Scale(parts=400, fanout=3, seed=1994)


def build_org(cache_enabled: bool) -> Database:
    options = PipelineOptions()
    if not cache_enabled:
        options.plan_cache_size = 0
    db = Database(options)
    create_org_schema(db.catalog)
    populate_org(db.catalog, ORG_SCALE)
    # Point lookups go through an index, like any OLTP key access.
    db.execute("CREATE INDEX IX_EMP_ENO ON EMP (ENO)")
    return db


def build_oo1(cache_enabled: bool) -> Database:
    options = PipelineOptions()
    if not cache_enabled:
        options.plan_cache_size = 0
    db = Database(options)
    create_oo1_schema(db.catalog)
    populate_oo1(db.catalog, OO1_SCALE)
    return db


def best_of(measure, repetitions: int = BEST_OF) -> float:
    """Run ``measure()`` (returns elapsed seconds) N times; keep the
    fastest — classic best-of-N to shed scheduler noise."""
    return min(measure() for _ in range(repetitions))


def timed(run_all) -> float:
    start = time.perf_counter()
    run_all()
    return time.perf_counter() - start


def record(name: str, queries: int, cached_s: float, uncached_s: float,
           extra: dict | None = None) -> float:
    cached_qps = queries / cached_s
    uncached_qps = queries / uncached_s
    speedup = cached_qps / uncached_qps
    entry = {
        "queries": queries,
        "uncached_seconds": round(uncached_s, 6),
        "cached_seconds": round(cached_s, 6),
        "uncached_qps": round(uncached_qps, 1),
        "cached_qps": round(cached_qps, 1),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "best_of": BEST_OF,
    }
    if extra:
        entry.update(extra)
    _results[name] = entry
    RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print_table(
        f"plan cache A/B: {name} (best of {BEST_OF})",
        ["pipeline", "queries/sec", "speedup"],
        [["uncached (recompile)", f"{uncached_qps:,.0f}", "1.0x"],
         ["plan cache", f"{cached_qps:,.0f}", f"{speedup:.1f}x"]],
    )
    return speedup


# ----------------------------------------------------------------------
# Workload 1: org point lookups, ad-hoc literal SQL (auto-param path)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def org_ab() -> tuple[Database, Database]:
    return build_org(True), build_org(False)


@pytest.fixture(scope="module")
def oo1_ab() -> tuple[Database, Database]:
    return build_oo1(True), build_oo1(False)


def test_org_point_lookup_speedup(org_ab):
    cached, uncached = org_ab
    employees = ORG_SCALE.departments * ORG_SCALE.employees_per_dept
    ids = [1 + (i * 37) % employees for i in range(300)]
    sqls = [f"SELECT ENAME, SAL FROM EMP WHERE ENO = {eno}"
            for eno in ids]

    # Soundness: both engines agree on every query.
    for sql in sqls[:50]:
        assert cached.query(sql).rows == uncached.query(sql).rows

    cached_s = best_of(lambda: timed(
        lambda: [cached.query(sql) for sql in sqls]))
    uncached_s = best_of(lambda: timed(
        lambda: [uncached.query(sql) for sql in sqls]))
    speedup = record("org_point_lookup_adhoc", len(sqls), cached_s,
                     uncached_s)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"plan cache only {speedup:.1f}x faster on repeated point "
        f"lookups (need >= {REQUIRED_SPEEDUP}x)"
    )


def test_org_point_lookup_prepared_speedup(org_ab):
    cached, uncached = org_ab
    employees = ORG_SCALE.departments * ORG_SCALE.employees_per_dept
    ids = [1 + (i * 53) % employees for i in range(300)]
    sql = "SELECT ENAME, SAL FROM EMP WHERE ENO = ?"
    stmt = cached.prepare(sql)

    for eno in ids[:50]:
        assert stmt.run([eno]).rows == uncached.query(sql, [eno]).rows

    cached_s = best_of(lambda: timed(
        lambda: [stmt.run([eno]) for eno in ids]))
    uncached_s = best_of(lambda: timed(
        lambda: [uncached.query(sql, [eno]) for eno in ids]))
    speedup = record("org_point_lookup_prepared", len(ids), cached_s,
                     uncached_s)
    assert speedup >= REQUIRED_SPEEDUP


# ----------------------------------------------------------------------
# Workload 2: OO1 navigation (part -> connections -> parts)
# ----------------------------------------------------------------------
def test_oo1_navigation_speedup(oo1_ab):
    cached, uncached = oo1_ab
    sql = ("SELECT p.id, p.ptype, c.length FROM CONNECTION c, PART p "
           "WHERE c.from_id = ? AND p.id = c.to_id")
    stmt = cached.prepare(sql)
    starts = [1 + (i * 17) % OO1_SCALE.parts for i in range(200)]

    def navigate(run_one) -> None:
        # OO1-style traversal: hop from each start through its
        # connections, then one level further from the first neighbor.
        for part_id in starts:
            neighbors = run_one(part_id).rows
            if neighbors:
                run_one(neighbors[0][0])

    for part_id in starts[:20]:
        assert sorted(stmt.run([part_id]).rows) \
            == sorted(uncached.query(sql, [part_id]).rows)

    cached_s = best_of(lambda: timed(
        lambda: navigate(lambda pid: stmt.run([pid]))))
    uncached_s = best_of(lambda: timed(
        lambda: navigate(lambda pid: uncached.query(sql, [pid]))))
    speedup = record("oo1_navigation", 2 * len(starts), cached_s,
                     uncached_s)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"plan cache only {speedup:.1f}x faster on OO1 navigation "
        f"(need >= {REQUIRED_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# Workload 3: cached DML qualification (repeated UPDATE by key)
# ----------------------------------------------------------------------
def test_dml_qualification_speedup(org_ab):
    cached, uncached = org_ab
    employees = ORG_SCALE.departments * ORG_SCALE.employees_per_dept
    ids = [1 + (i * 41) % employees for i in range(200)]
    sql = "UPDATE EMP SET SAL = ? WHERE ENO = ?"

    cached_s = best_of(lambda: timed(lambda: [
        cached.execute(sql, [90000 + eno, eno]) for eno in ids]))
    uncached_s = best_of(lambda: timed(lambda: [
        uncached.execute(sql, [90000 + eno, eno]) for eno in ids]))
    # Both databases converge to the same salaries; spot-check.
    probe = ids[0]
    assert cached.query("SELECT SAL FROM EMP WHERE ENO = ?",
                        [probe]).rows \
        == uncached.query("SELECT SAL FROM EMP WHERE ENO = ?",
                          [probe]).rows
    speedup = record("dml_update_by_key", len(ids), cached_s, uncached_s,
                     extra={"floor": 2.0})
    # DML spends real time in constraint checks and storage mutation,
    # so the cache's share of the win is smaller than for pure reads;
    # the floor is correspondingly lower (measured ~7x in practice).
    assert speedup >= 2.0, (
        f"cached DML qualification only {speedup:.1f}x faster "
        f"(need >= 2x)"
    )
