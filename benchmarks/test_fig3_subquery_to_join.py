"""Fig. 3: existential-subquery-to-join rewrite.

The paper's walkthrough: ``SELECT * FROM EMP e WHERE EXISTS (SELECT 1
FROM DEPT d WHERE d.loc = 'ARC' AND d.dno = e.edno)``.

"One straightforward execution strategy used in many DBMSs is to
retrieve employees first and for each execute the subquery ...  Such a
strategy may result in poor performance ...  A better strategy could be
to find departments at 'ARC' location first and then get their
employees.  This is achieved by a rewrite optimization ...  The
performance study in [39] shows orders of magnitude improvement."

Three strategies, same engine:

* **tuple-at-a-time** — the quoted strawman: one subquery execution per
  employee row;
* **semi-join** — rewrite disabled: the E quantifier runs as a hash
  semi-join (set-oriented, but scans all employees);
* **rewritten** — E-to-F conversion + SELECT merge + index selection:
  selective departments first, index probes into EMP.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_org_db, print_table
from repro.executor.runtime import PipelineOptions, QueryPipeline
from repro.sql.parser import parse_statement
from repro.workloads.orgdb import OrgScale

QUERY = ("SELECT e.eno FROM EMP e WHERE EXISTS "
         "(SELECT 1 FROM DEPT d WHERE d.loc = 'ARC' AND "
         "d.dno = e.edno)")

SCALE = OrgScale(departments=120, employees_per_dept=25,
                 projects_per_dept=1, skills=10, skills_per_employee=1,
                 skills_per_project=1, arc_fraction=0.05, seed=3)


def tuple_at_a_time(db) -> list:
    """Per-employee correlated execution (one prepared probe plan)."""
    probe = QueryPipeline(db.catalog, db.stats)
    compiled = probe.compile_select(parse_statement(
        "SELECT dno, loc FROM DEPT"))
    departments = probe.run_compiled(compiled).rows
    found = []
    for eno, edno in db.query("SELECT eno, edno FROM EMP").rows:
        # the strawman: evaluate the subquery predicate per outer row,
        # scanning DEPT each time (no index, no reordering)
        for dno, loc in departments:
            if loc == "ARC" and dno == edno:
                found.append((eno,))
                break
    return found


def compile_with_options(db, apply_rewrite: bool, use_indexes: bool):
    """Compile once; the strategies are compared on execution time
    (the paper's concern), not compilation."""
    from repro.optimizer.optimizer import PlannerOptions
    options = PipelineOptions(
        apply_nf_rewrite=apply_rewrite,
        planner=PlannerOptions(use_indexes=use_indexes),
    )
    pipeline = QueryPipeline(db.catalog, db.stats, options)
    compiled = pipeline.compile_select(parse_statement(QUERY))

    def run():
        return pipeline.run_compiled(compiled)
    return run


def timed(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.benchmark(group="fig3")
def test_fig3_rewrite_strategies(benchmark):
    db = make_org_db(SCALE)
    run_semi = compile_with_options(db, apply_rewrite=False,
                                    use_indexes=False)
    run_rewritten = compile_with_options(db, apply_rewrite=True,
                                         use_indexes=True)
    naive_rows, naive_time = timed(lambda: tuple_at_a_time(db))
    semi_result, semi_time = timed(run_semi)
    rewritten_result, rewritten_time = timed(run_rewritten)
    benchmark(run_rewritten)

    assert sorted(naive_rows) == sorted(semi_result.rows) \
        == sorted(rewritten_result.rows)

    speedup_semi = naive_time / semi_time
    speedup_full = naive_time / rewritten_time
    print_table(
        "Fig. 3 — existential subquery execution strategies",
        ["strategy", "time (ms)", "speedup vs tuple-at-a-time"],
        [["tuple-at-a-time subquery", f"{naive_time * 1e3:.2f}", "1.0x"],
         ["semi-join (no rewrite)", f"{semi_time * 1e3:.2f}",
          f"{speedup_semi:.1f}x"],
         ["E-to-F rewrite + index", f"{rewritten_time * 1e3:.2f}",
          f"{speedup_full:.1f}x"]],
    )
    print("paper: 'orders of magnitude improvement in performance of "
          "queries with existential predicates' [39]")

    # Shape: the rewrite wins clearly over the strawman, and the full
    # rewrite beats the plain semi-join (selective side drives).
    assert speedup_full > 10, "rewrite should win by >10x at this scale"
    assert rewritten_time <= semi_time * 1.5


@pytest.mark.benchmark(group="fig3")
def test_fig3_selectivity_sweep(benchmark):
    """The win grows as the restriction gets more selective — the
    rewritten plan touches only matching departments' employees."""
    rows = []
    ratios = []
    for arc_fraction in (0.5, 0.2, 0.05):
        scale = OrgScale(departments=80, employees_per_dept=15,
                         projects_per_dept=1, skills=5,
                         skills_per_employee=1, skills_per_project=1,
                         arc_fraction=arc_fraction, seed=11)
        db = make_org_db(scale)
        run_rewritten = compile_with_options(db, True, True)
        _n, naive_time = timed(lambda d=db: tuple_at_a_time(d))
        _r, rewritten_time = timed(run_rewritten)
        ratio = naive_time / rewritten_time
        ratios.append(ratio)
        rows.append([f"{arc_fraction:.0%}",
                     f"{naive_time * 1e3:.2f}",
                     f"{rewritten_time * 1e3:.2f}",
                     f"{ratio:.1f}x"])
    print_table("Fig. 3 — selectivity sweep (ARC fraction)",
                ["selectivity", "naive (ms)", "rewritten (ms)",
                 "speedup"], rows)
    benchmark(lambda: ratios)
    # The win grows with selectivity and is solid at the selective end.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 3
