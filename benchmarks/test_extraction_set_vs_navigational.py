"""Sect. 1: set-oriented extraction vs. query-per-parent navigation.

"This style of data extraction leads to numerous queries, and does not
lend itself to effective set-oriented processing ...  the number of
fragments is in the order of number of instances of parent components
...  set-oriented processing could lead to significant improvement in
performance, even in orders of magnitude."
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_org_db, print_table
from repro.baseline.navigational import NavigationalExtractor
from repro.executor.runtime import PipelineOptions, QueryPipeline
from repro.sql.parser import parse_statement
from repro.workloads.orgdb import DEPS_ARC_QUERY, OrgScale


def extract_both(db):
    query = parse_statement(DEPS_ARC_QUERY)
    # The navigational baseline models Sect. 1's query-per-parent
    # client: each fragment is an independent ad-hoc statement, so it
    # runs through a cache-disabled pipeline (the server-side plan
    # cache is this repo's addition and would mask the paper's shape).
    nav_pipeline = QueryPipeline(db.catalog, db.stats,
                                 PipelineOptions(plan_cache_size=0))
    navigator = NavigationalExtractor(nav_pipeline)
    start = time.perf_counter()
    fragmented = navigator.extract(query)
    nav_time = time.perf_counter() - start

    executable = db.xnf_executable("deps_arc")
    start = time.perf_counter()
    co = executable.run()
    xnf_time = time.perf_counter() - start
    return fragmented, nav_time, co, xnf_time


@pytest.mark.benchmark(group="extraction")
def test_extraction_comparison(benchmark):
    scale = OrgScale(departments=25, employees_per_dept=8,
                     projects_per_dept=4, skills=40,
                     skills_per_employee=2, skills_per_project=2,
                     arc_fraction=0.4, seed=8)
    db = make_org_db(scale)
    fragmented, nav_time, co, xnf_time = extract_both(db)
    benchmark(db.xnf_executable("deps_arc").run)

    # Semantics agree.
    for name in co.components:
        assert sorted(fragmented.components[name]) == \
            sorted(co.component(name).rows), name

    ratio = nav_time / xnf_time
    print_table(
        "Sect. 1 — extraction strategies",
        ["strategy", "queries issued", "time (ms)", "relative"],
        [["navigational (query per parent)",
          fragmented.queries_issued, f"{nav_time * 1e3:.2f}",
          f"{ratio:.1f}x"],
         ["set-oriented XNF", 1, f"{xnf_time * 1e3:.2f}", "1.0x"]],
    )
    assert fragmented.queries_issued > 50  # fragments ~ parent instances
    assert ratio > 5, "set-oriented extraction should win clearly"


@pytest.mark.benchmark(group="extraction")
def test_extraction_scale_sweep(benchmark):
    """The gap grows with the number of parent instances."""
    rows = []
    ratios = []
    queries_issued = []
    for departments in (5, 15, 40):
        scale = OrgScale(departments=departments, employees_per_dept=8,
                         projects_per_dept=3, skills=30,
                         skills_per_employee=2, skills_per_project=2,
                         arc_fraction=0.5, seed=9)
        db = make_org_db(scale)
        fragmented, nav_time, _co, xnf_time = extract_both(db)
        ratios.append(nav_time / xnf_time)
        queries_issued.append(fragmented.queries_issued)
        rows.append([departments, fragmented.queries_issued,
                     f"{nav_time * 1e3:.1f}", f"{xnf_time * 1e3:.1f}",
                     f"{ratios[-1]:.1f}x"])
    print_table("Sect. 1 — extraction scale sweep",
                ["departments", "nav queries", "nav (ms)", "XNF (ms)",
                 "nav/XNF"], rows)
    benchmark(lambda: ratios)
    # Query count scales with parent instances, and the advantage
    # persists with scale (timing ratios tolerate scheduler noise).
    assert queries_issued[2] > queries_issued[0] * 4
    assert all(r > 3 for r in ratios)
