"""Shared benchmark fixtures and reporting helpers.

Every benchmark prints a paper-vs-measured table (captured into
bench_output.txt by the EXPERIMENTS harness) and asserts the *shape* of
the paper's result — who wins and by roughly what factor — rather than
absolute numbers, per DESIGN.md §4.
"""

from __future__ import annotations

import pytest

from repro.api.database import Database
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)

BENCH_ORG = OrgScale(departments=30, employees_per_dept=10,
                     projects_per_dept=5, skills=50,
                     skills_per_employee=3, skills_per_project=3,
                     arc_fraction=0.2, seed=1994)


def make_org_db(scale: OrgScale = BENCH_ORG,
                with_indexes: bool = True) -> Database:
    db = Database()
    create_org_schema(db.catalog, with_indexes=with_indexes)
    populate_org(db.catalog, scale)
    db.execute(f"CREATE VIEW deps_arc AS {DEPS_ARC_QUERY}")
    return db


@pytest.fixture(scope="module")
def bench_org_db() -> Database:
    return make_org_db()


def print_table(title: str, headers: list[str],
                rows: list[list]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)] if rows else \
        [len(str(h)) for h in headers]
    line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
