"""Commit-latency overhead of the write-ahead log (ISSUE 6).

The durability claim: with group commit, making every acknowledged
transaction durable costs little more than not logging at all, because
concurrent committers share fsyncs at the log's sync barrier.  The A/B:

* **in-memory**: 8 sessions / 8 threads, each committing explicit
  multi-row transactions against a plain ``Engine()`` — the floor, no
  durability work at all;
* **wal (group)**: the same workload against ``Engine(path=...)`` with
  the default ``fsync="group"`` policy — every acknowledged commit is
  fsync-durable;
* **wal (always, serial)**: reference point — one session committing
  alone pays a full fsync per transaction, which is the cost group
  commit exists to amortize.

Acceptance floor: at 8 concurrent sessions, durable group commit is at
most ``2x`` the in-memory per-transaction time.  The telemetry row
(``syncs per commit``) shows *why*: the barrier coalesces the 8
committers' records into far fewer fsyncs.  Results land in
``BENCH_wal.json``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.api.engine import Engine

#: Acceptance ceiling: durable group commit vs in-memory, per txn.
MAX_OVERHEAD = 2.0

#: Timed repetitions; the best (lowest-overhead) one is reported.
BEST_OF = 3

N_SESSIONS = 8
TXNS_PER_SESSION = 40
ROWS_PER_TXN = 4

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_wal.json"

_results: dict[str, dict] = {}


def run_sessions(engine: Engine, n_sessions: int) -> float:
    """Drive ``n_sessions`` committing threads; seconds of wall time."""
    bootstrap = engine.connect(label="bootstrap")
    bootstrap.execute(
        "CREATE TABLE LEDGER (K INT PRIMARY KEY, S INT, T INT, R INT)")
    sessions = [engine.connect(label=f"committer-{i}")
                for i in range(n_sessions)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_sessions)

    def committer(index: int) -> None:
        try:
            session = sessions[index]
            barrier.wait()
            for txn in range(TXNS_PER_SESSION):
                session.begin()
                for row in range(ROWS_PER_TXN):
                    key = (index * TXNS_PER_SESSION + txn) \
                        * ROWS_PER_TXN + row
                    session.execute(
                        "INSERT INTO LEDGER VALUES (?, ?, ?, ?)",
                        [key, index, txn, row])
                session.commit()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=committer, args=(i,))
               for i in range(n_sessions)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    expected = n_sessions * TXNS_PER_SESSION * ROWS_PER_TXN
    assert len(list(engine.catalog.table("LEDGER").rows())) == expected
    return elapsed


def test_group_commit_amortizes_fsync(tmp_path):
    txns = N_SESSIONS * TXNS_PER_SESSION
    best = None
    for attempt in range(BEST_OF):
        memory_engine = Engine()
        memory_s = run_sessions(memory_engine, N_SESSIONS)
        memory_engine.close()

        wal_engine = Engine(path=str(tmp_path / f"group-{attempt}"),
                            fsync="group", group_window=0.001)
        group_s = run_sessions(wal_engine, N_SESSIONS)
        syncs = wal_engine.wal.sync_count
        appends = wal_engine.wal.append_count
        wal_engine.close()

        measurement = {
            "memory_s": memory_s,
            "group_s": group_s,
            "overhead": group_s / memory_s,
            "syncs": syncs,
            "appends": appends,
        }
        if best is None or measurement["overhead"] < best["overhead"]:
            best = measurement

    # Reference: one lone committer pays one fsync per transaction.
    serial_engine = Engine(path=str(tmp_path / "serial"), fsync="always")
    serial_s = run_sessions(serial_engine, 1)
    serial_per_txn_us = serial_s / TXNS_PER_SESSION * 1e6
    serial_engine.close()

    memory_per_txn_us = best["memory_s"] / txns * 1e6
    group_per_txn_us = best["group_s"] / txns * 1e6
    commits_per_sync = txns / max(best["syncs"], 1)
    _results["group_commit"] = {
        "sessions": N_SESSIONS,
        "txns_total": txns,
        "rows_per_txn": ROWS_PER_TXN,
        "memory_per_txn_us": round(memory_per_txn_us, 1),
        "wal_group_per_txn_us": round(group_per_txn_us, 1),
        "wal_always_serial_per_txn_us": round(serial_per_txn_us, 1),
        "overhead": round(best["overhead"], 3),
        "ceiling": MAX_OVERHEAD,
        "fsyncs": best["syncs"],
        "wal_appends": best["appends"],
        "commits_per_fsync": round(commits_per_sync, 2),
        "note": ("overhead = durable group commit vs in-memory, same "
                 "8-thread workload; commits_per_fsync > 1 is the "
                 "amortization doing the work"),
    }
    print_table(
        f"WAL commit latency ({N_SESSIONS} sessions x "
        f"{TXNS_PER_SESSION} txns x {ROWS_PER_TXN} rows)",
        ["configuration", "per-txn"],
        [["in-memory (no durability)", f"{memory_per_txn_us:.0f} us"],
         ["wal fsync=group, 8 sessions", f"{group_per_txn_us:.0f} us"],
         ["wal fsync=always, 1 session", f"{serial_per_txn_us:.0f} us"],
         ["overhead vs in-memory",
          f"{best['overhead']:.2f}x (ceiling {MAX_OVERHEAD}x)"],
         ["commits per fsync", f"{commits_per_sync:.1f}"]],
    )
    assert best["overhead"] <= MAX_OVERHEAD, (
        f"durable group commit is {best['overhead']:.2f}x the in-memory "
        f"per-txn time (ceiling {MAX_OVERHEAD}x)"
    )
    # The mechanism, not just the outcome: concurrent committers must
    # actually share fsyncs, else the ceiling held by accident.
    assert commits_per_sync > 1.0, (
        f"group commit did not group: {best['syncs']} fsyncs for "
        f"{txns} transactions"
    )


@pytest.fixture(scope="session", autouse=True)
def write_results_at_exit():
    yield
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nresults written to {RESULTS_PATH}")
