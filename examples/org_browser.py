"""The paper's running example end to end: the deps_ARC view (Fig. 1).

Loads the six-table organizational database, defines the exact CO view
printed in the paper, and walks through the facilities Sects. 2-5
describe: reachability, object sharing, path expressions, all three
cursor kinds, update operators with write-back, and cache persistence.

Run:  python examples/org_browser.py
"""

import os
import tempfile

from repro import Database
from repro.cache.manager import XNFCache
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)


def main() -> None:
    db = Database()
    create_org_schema(db.catalog)
    counts = populate_org(db.catalog, OrgScale(
        departments=8, employees_per_dept=4, projects_per_dept=3,
        skills=12, arc_fraction=0.25, seed=21,
    ))
    print("base data:", counts)

    db.execute(f"CREATE VIEW deps_arc AS {DEPS_ARC_QUERY}")
    cache = db.open_cache("deps_arc")
    workspace = cache.workspace

    # --- reachability (Sect. 2): only ARC-anchored tuples appear --------
    print(f"\ncached: {len(cache.extent('xdept'))} departments, "
          f"{len(cache.extent('xemp'))} employees, "
          f"{len(cache.extent('xproj'))} projects, "
          f"{len(cache.extent('xskills'))} skills "
          f"(of {counts['skills']} stored)")

    # --- object sharing: one tuple, many connections --------------------
    shared = [
        skill for skill in cache.extent("xskills")
        if len(skill.parents("empproperty"))
        + len(skill.parents("projproperty")) > 1
    ]
    print(f"shared skill objects (like s3 in Fig. 1): {len(shared)}")

    # --- path expressions ------------------------------------------------
    path = cache.path_cursor("xdept.employment.xemp.empproperty.xskills")
    print(f"skills reachable via employees: {len(path)}")

    # --- browse with cursors ---------------------------------------------
    dept_cursor = cache.independent_cursor("xdept")
    emp_cursor = cache.dependent_cursor("employment")
    print("\norganization browser:")
    dept = dept_cursor.fetch_next()
    while dept is not None:
        emp_cursor.position_on(dept)
        names = [e.ename for e in emp_cursor]
        projects = [p.pname for p in dept.children("ownership")]
        print(f"  {dept.dname} ({dept.loc}): staff={names} "
              f"projects={projects}")
        dept = dept_cursor.fetch_next()

    # --- the CO update operators (Sect. 2) -------------------------------
    first_dept = cache.extent("xdept")[0]
    hire = cache.insert("xemp", ENO=9001, ENAME="grace",
                        EDNO=first_dept.dno, SAL=180000)
    cache.connect("employment", first_dept, hire)
    star_skill = cache.extent("xskills")[0]
    cache.connect("empproperty", hire, star_skill)
    veteran = first_dept.children("employment")[0]
    veteran.set("SAL", veteran.sal + 5000)
    print(f"\npending changes: "
          f"{[entry.operation for entry in cache.pending_changes()]}")
    applied = cache.write_back()
    print(f"write-back applied {applied} changes")
    print("server sees grace:",
          db.query("SELECT ename, edno FROM EMP WHERE eno = 9001").rows)
    print("and her skill row:",
          db.query("SELECT * FROM EMPSKILLS WHERE eseno = 9001").rows)

    # --- long transactions: persist the cache (Sect. 3) ------------------
    snapshot = os.path.join(tempfile.gettempdir(), "deps_arc.cache")
    fresh = db.open_cache("deps_arc")
    fresh.extent("xemp")[0].set("SAL", 1_000_000)  # not yet written back
    fresh.save(snapshot)
    reloaded = XNFCache.load(
        snapshot, catalog=db.catalog, transactions=db.transactions,
        translated=db.xnf_executable("deps_arc").translated,
    )
    print(f"\nreloaded cache from {snapshot}: "
          f"{reloaded.object_count()} objects, "
          f"{len(reloaded.pending_changes())} pending change(s)")
    reloaded.write_back()
    print("pending change applied after reload")
    os.unlink(snapshot)

    del workspace


if __name__ == "__main__":
    main()
