"""The Object/SQL gateway: seamless objects over relational data.

Sect. 5.2/6: XNF "allows the cache to be stored in C++ structures,
allowing seamless interface between applications and the data in the
cache ... creating classes for xemp and xdept" plus container classes —
realized in the 'Object/SQL Gateway' prototype bridging ObjectStore to
Starburst.  The Python analogue generates one class per CO component,
with properties, role-named navigation methods and extents.

Run:  python examples/object_gateway.py
"""

from repro import Engine, ObjectGateway
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)


def main() -> None:
    engine = Engine()
    db = engine.connect(label="app-client")
    create_org_schema(engine.catalog)
    populate_org(engine.catalog, OrgScale(departments=6,
                                          employees_per_dept=4,
                                          projects_per_dept=2, skills=10,
                                          arc_fraction=0.34, seed=30))
    db.execute(f"CREATE VIEW deps_arc AS {DEPS_ARC_QUERY}")

    # The gateway rides one session: its commits apply through that
    # session's transaction scope on the shared engine.
    gateway = ObjectGateway(db)
    org = gateway.open("deps_arc", name="org")

    # Generated classes with property access and role-named navigation:
    # dept.employs(), dept.has(), emp.possesses(), skill sharing, etc.
    print("generated classes:", sorted(org.classes))
    for dept in org.XDEPT.extent:
        print(f"\n{dept.dname} ({dept.loc})")
        for employee in dept.employs():
            skills = ", ".join(s.sname for s in employee.possesses())
            print(f"  {employee.ename:10s} salary={employee.sal:>7} "
                  f"skills=[{skills}]")
        for project in dept.has():
            print(f"  project {project.pname} budget={project.budget}")

    # Objects are plain Python: comprehensions, sorting, aggregation.
    staff = list(org.XEMP.extent)
    top = max(staff, key=lambda e: e.sal)
    print(f"\ntop earner: {top.ename} (${top.sal})")
    print("works for:", [d.dname for d in top.employs_parents()])

    # The unit of work: assign everyone a raise, commit once.
    for employee in staff:
        employee.sal = int(employee.sal * 1.03)
    print(f"\ndirty: {org.dirty}; committing...")
    applied = org.commit()
    print(f"committed {applied} updates; server average now:",
          db.query("SELECT AVG(e.sal) FROM EMP e, DEPT d "
                   "WHERE e.edno = d.dno AND d.loc = 'ARC'").rows)

    # New objects through the extent, wired into the graph, committed.
    tools = next(iter(org.XDEPT.extent))
    recruit = org.XEMP.extent.insert(ENO=7777, ENAME="hopper",
                                     EDNO=tools.dno, SAL=210000)
    db_cache = org.cache
    db_cache.connect("employment", tools.raw, recruit.raw)
    org.commit()
    print("\nrecruit persisted:",
          db.query("SELECT ename, edno FROM EMP WHERE eno = 7777").rows)


if __name__ == "__main__":
    main()
