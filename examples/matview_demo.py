"""Materialized composite-object views, maintained by deltas.

Builds the paper's org database, materializes the Fig. 1 ``deps_arc``
view under both staleness policies, and shows single-row DML flowing
through the delta-propagation engine instead of triggering
recomputation.  See docs/MATVIEWS.md for the full story.

Run:  python examples/matview_demo.py
"""

from repro import Database
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)


def describe(db: Database, name: str) -> str:
    result = db.matview(name)
    view = db.matviews.get(name)
    sizes = ", ".join(f"{component.lower()}={len(stream)}"
                      for component, stream in
                      result.components.items())
    return f"{sizes} | stats={view.stats}"


def main() -> None:
    db = Database()
    create_org_schema(db.catalog)
    populate_org(db.catalog, OrgScale(departments=8,
                                      employees_per_dept=5,
                                      projects_per_dept=3, skills=15,
                                      arc_fraction=0.25, seed=42))

    # --- eager: maintained on every write ------------------------------
    db.execute(f"CREATE MATERIALIZED VIEW deps_arc AS {DEPS_ARC_QUERY}")
    view = db.matviews.get("deps_arc")
    print("created deps_arc (eager policy)")
    print("  incrementally maintainable:", view.is_incremental)
    print("  base tables:", ", ".join(sorted(view.base_tables)))
    print("  initial:", describe(db, "deps_arc"))

    # A single-row insert propagates as a delta through the component
    # and connection streams — no recomputation (watch full_refreshes).
    db.execute("INSERT INTO EMP VALUES (900, 'delta-emp', 1, 75000)")
    print("\nafter INSERT of one employee:")
    print("  ", describe(db, "deps_arc"))

    # Moving a department out of ARC cascades: the department, its
    # employees and projects, and any skills now unreachable all leave
    # the view — still purely by delta propagation.
    db.execute("UPDATE DEPT SET LOC = 'SF' WHERE DNO = 1")
    print("\nafter moving dept 1 out of ARC (three-level cascade):")
    print("  ", describe(db, "deps_arc"))

    # --- deferred: queue on write, apply on read -----------------------
    db.execute(f"CREATE MATERIALIZED VIEW deps_lazy REFRESH DEFERRED "
               f"AS {DEPS_ARC_QUERY}")
    lazy = db.matviews.get("deps_lazy")
    db.execute("INSERT INTO EMP VALUES (901, 'queued-1', 2, 60000)")
    db.execute("INSERT INTO EMP VALUES (902, 'queued-2', 2, 61000)")
    print(f"\ndeferred view has {len(lazy.pending)} queued delta(s); "
          f"fresh={lazy.fresh}")
    db.execute("REFRESH MATERIALIZED VIEW deps_lazy")
    print(f"after REFRESH: fresh={lazy.fresh} | stats={lazy.stats}")

    # --- read-through ---------------------------------------------------
    # db.xnf() recognizes queries structurally equal to a registered
    # view's definition and serves the materialization.
    before = view.stats["reads"]
    db.xnf("deps_arc")
    print(f"\ndb.xnf('deps_arc') served from the materialization "
          f"(reads {before} -> {view.stats['reads']})")

    # Components still compose into plain SQL, like any XNF view.
    print("avg ARC salary:",
          db.query("SELECT AVG(sal) FROM deps_arc.xemp").rows[0][0])


if __name__ == "__main__":
    main()
