"""Full CRUD through the composite-object gateway (write-through).

The lens-style write-back subsystem makes views a read *and* write
surface: SQL DML may name a view (or one component of an XNF view as
``view.component``), and gateway objects opened with
``write_through=True`` put every mutation back to the base tables
immediately — statically classified, translated to base DML, and
dynamically verified (get∘put must be the identity) inside one
transaction.  Rejected writes raise ``ViewUpdateError`` naming the box,
column and reason, and leave both the database and the object cache
untouched.

Run:  python examples/gateway_crud.py
"""

from repro import Engine, ObjectGateway
from repro.errors import ViewUpdateError
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)


def main() -> None:
    engine = Engine()
    db = engine.connect(label="crud-client")
    create_org_schema(engine.catalog)
    populate_org(engine.catalog, OrgScale(departments=4,
                                          employees_per_dept=3,
                                          projects_per_dept=2, skills=8,
                                          arc_fraction=0.5, seed=10))
    db.execute(f"CREATE VIEW deps_arc AS {DEPS_ARC_QUERY}")

    # ------------------------------------------------------------------
    # 1. SQL DML straight at a view: the put-back translator at work.
    # ------------------------------------------------------------------
    db.execute("CREATE VIEW well_paid (ID, NAME, PAY) AS "
               "SELECT ENO, ENAME, SAL FROM EMP WHERE SAL > 100000")
    n = db.execute("UPDATE well_paid SET PAY = PAY + 1000")
    print(f"raised {n} well-paid employees through the view")

    # An XNF view is addressed one component at a time:
    n = db.execute("UPDATE deps_arc.XEMP SET SAL = SAL + 1 "
                   "WHERE SAL < 100000")
    print(f"raised {n} employees through deps_arc.XEMP")

    # Writes that would escape the view are rejected — atomically:
    try:
        db.execute("UPDATE well_paid SET PAY = 1")
    except ViewUpdateError as exc:
        print(f"rejected, as it must be:\n  {exc}")

    # ------------------------------------------------------------------
    # 2. The object API as a full CRUD surface (write-through mode).
    # ------------------------------------------------------------------
    gateway = ObjectGateway(db)
    org = gateway.open("deps_arc", name="org", write_through=True)

    dept = next(iter(org.XDEPT.extent))
    print(f"\ndepartment {dept.dname.strip()}:",
          [e.ename.strip() for e in dept.employs()])

    # CREATE: a child object, wired to its parent in one statement.
    hire = dept.insert_child("EMPLOYS", ENO=9001, ENAME="newhire",
                             SAL=90000)
    print("hired:", hire.ename.strip(), "->", "dept", hire.edno)

    # UPDATE: plain attribute assignment hits the base table now.
    hire.sal = 95000
    print("server sees salary:",
          db.query("SELECT SAL FROM EMP WHERE ENO = 9001").rows[0][0])

    # Rejected writes leave object and database consistent:
    try:
        hire.edno = 4242  # no such department
    except ViewUpdateError as exc:
        print(f"rejected FK rewire: {exc.reason.splitlines()[0]}")
    print("object still consistent, dept =", hire.edno)

    # DELETE: gone from the base table, marked in the cache.
    hire.delete()
    print("after delete, server rows:",
          db.query("SELECT COUNT(*) FROM EMP WHERE ENO = 9001").rows)

    gateway.close()
    engine.close()


if __name__ == "__main__":
    main()
