"""Quickstart: from relational tables to a navigable composite object.

Builds a small department/employee database on a shared Engine, runs
SQL through a session's streaming cursor, defines an XNF view over it
(the paper's ``OUT OF ... RELATE ... TAKE`` constructor), extracts the
composite object and navigates it through the client-side cache.

Run:  python examples/quickstart.py
"""

from repro import Engine


def main() -> None:
    engine = Engine()
    session = engine.connect(label="quickstart")

    # --- plain SQL: schema and data ------------------------------------
    session.execute_script("""
    CREATE TABLE DEPT (DNO INT PRIMARY KEY, DNAME VARCHAR, LOC VARCHAR);
    CREATE TABLE EMP (ENO INT PRIMARY KEY, ENAME VARCHAR, EDNO INT,
                      SAL INT,
                      FOREIGN KEY (EDNO) REFERENCES DEPT (DNO));
    CREATE INDEX IX_EMP_EDNO ON EMP (EDNO);
    INSERT INTO DEPT VALUES (1, 'Tools', 'ARC'), (2, 'Apps', 'SF'),
                            (3, 'Databases', 'ARC');
    INSERT INTO EMP VALUES (10, 'ann', 1, 120), (11, 'bob', 2, 100),
                           (12, 'carl', 1, 90), (13, 'dee', 3, 200);
    """)

    # Ordinary SQL keeps working — XNF is strictly an extension.  A
    # cursor streams result blocks instead of materializing everything.
    with session.cursor() as cursor:
        cursor.execute("SELECT dname FROM DEPT WHERE loc = ?", ["ARC"])
        print("ARC departments:", cursor.fetchall())

    # Sessions have their own transaction scope over the shared engine;
    # a reader never observes another session's uncommitted rows.
    with engine.connect(label="auditor") as auditor:
        session.begin()
        session.execute("INSERT INTO EMP VALUES (14, 'eve', 1, 150)")
        print("\nwriter sees",
              session.query("SELECT COUNT(*) FROM EMP").rows[0][0],
              "employees; auditor still sees",
              auditor.query("SELECT COUNT(*) FROM EMP").rows[0][0])
        session.commit()
        print("after commit the auditor sees",
              auditor.query("SELECT COUNT(*) FROM EMP").rows[0][0])

    # --- the XNF view: a composite-object abstraction -------------------
    session.execute("""
    CREATE VIEW arc_orgs AS
    OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
    """)

    # One set-oriented extraction materializes the whole CO.
    co = session.xnf("arc_orgs")
    print(f"\nextracted {co.total_tuples()} tuples "
          f"({co.shipped_tuples} shipped; employment connections were "
          f"elided and rebuilt client-side)")

    # --- the CO cache: pointer navigation, no server round trips --------
    cache = session.open_cache("arc_orgs")
    for dept in cache.extent("xdept"):
        employees = [f"{e.ename} (${e.sal}k)"
                     for e in dept.children("employment")]
        print(f"  {dept.dname}: {', '.join(employees)}")

    # Dependent cursors navigate parent -> child (Sect. 2's API).
    cursor = cache.dependent_cursor("employment")
    tools = cache.find("xdept", dname="Tools")[0]
    cursor.position_on(tools)
    print("\ncursor over Tools:",
          [employee.ename for employee in cursor])

    # --- local updates, written back atomically -------------------------
    ann = cache.find("xemp", ename="ann")[0]
    ann.set("SAL", 130)
    applied = cache.write_back()
    print(f"\nwrite-back applied {applied} change(s); server now says:",
          session.query("SELECT sal FROM EMP WHERE ename = 'ann'").rows)

    # --- composition: CO components are tables again ---------------------
    print("\navg ARC salary:",
          session.query("SELECT AVG(sal) FROM arc_orgs.xemp").rows)

    engine.close()


if __name__ == "__main__":
    main()
