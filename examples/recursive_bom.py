"""Recursive composite objects: a bill-of-materials explosion.

Sect. 2: "An XNF query may also specify a recursive CO being identified
by a cycle in the query's schema graph.  This cycle basically defines a
'derivation rule' that iterates along the cycle's relationships to
collect the tuples until a fixed point is reached."

The CONTAINS_PART relationship relates xpart to itself; the translator
detects the cycle and evaluates the view by semi-naive fixpoint, then
the cache walks the explosion and costs the assemblies.

Run:  python examples/recursive_bom.py
"""

from repro import Database
from repro.workloads.bom import (BOMScale, bom_view_query,
                                 create_bom_schema, populate_bom)


def explode(cache, part, depth: int = 0, budget: list | None = None,
            seen: set | None = None, qty: int = 1) -> None:
    seen = seen if seen is not None else set()
    marker = " (shared)" if id(part) in seen else ""
    seen.add(id(part))
    print("  " * depth + f"- {qty} x {part.pname} [{part.kind}] "
          f"cost={part.cost}{marker}")
    if budget is not None:
        budget[0] += part.cost * qty
    if marker:
        return  # do not re-expand shared subassemblies
    for child in part.children("subparts"):
        attrs = cache.workspace.connection_attributes(
            "subparts", part, child)
        explode(cache, child, depth + 1, budget, seen,
                qty=attrs.get("QTY", 1))


def main() -> None:
    db = Database()
    create_bom_schema(db.catalog)
    info = populate_bom(db.catalog, BOMScale(
        roots=2, depth=3, fanout=2, share_probability=0.25, seed=13,
    ))
    print(f"parts database: {info['parts']} parts, "
          f"{info['edges']} containment edges, "
          f"roots = {info['roots']}")

    co = db.xnf(bom_view_query(info["roots"]))
    print(f"\nfixpoint closed in "
          f"{co.counters['fixpoint_iterations']} iterations; "
          f"{len(co.component('xpart'))} of {info['parts']} parts are "
          f"reachable from the anchors")

    cache = db.open_cache(bom_view_query(info["roots"]))
    for root in cache.extent("xassembly"):
        print(f"\nexplosion of {root.pname}:")
        budget = [root.cost]
        for top in root.children("toplevel"):
            attrs = cache.workspace.connection_attributes(
                "toplevel", root, top)
            explode(cache, top, 1, budget, qty=attrs.get("QTY", 1))
        print(f"  => total materialized cost: {budget[0]}")

    # The flat relational view of the same data stays available.
    heaviest = db.query(
        "SELECT p.pname, COUNT(*) AS uses FROM PART p, CONTAINS c "
        "WHERE p.pno = c.child GROUP BY p.pname "
        "ORDER BY uses DESC, p.pname LIMIT 3")
    print("\nmost-used subparts (plain SQL):", heaviest.rows)


if __name__ == "__main__":
    main()
