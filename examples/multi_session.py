"""Concurrent clients over one shared engine.

The paper's deployment picture (Sect. 2, Sect. 5.3) is a server-side
view facility consumed by many application clients.  This example
drives that shape: four threads, each with its own session, mixing
writers (explicit transactions, some rolled back) with readers that
stream through cursors — all over one engine, one plan cache, one
materialized view.

Run:  python examples/multi_session.py
"""

import threading

from repro import Engine
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)


def writer(engine: Engine, number: int, inserts: int) -> None:
    with engine.connect(label=f"writer-{number}") as session:
        base = 5000 + number * 100
        for i in range(inserts):
            session.begin()
            session.execute(
                f"INSERT INTO EMP VALUES ({base + i}, "
                f"'w{number}-{i}', 1, {100 + i})")
            if i % 4 == 3:
                session.rollback()   # this client changed its mind
            else:
                session.commit()


def reader(engine: Engine, number: int, rounds: int) -> None:
    with engine.connect(label=f"reader-{number}", batch_size=16) as s:
        for _ in range(rounds):
            with s.cursor() as cursor:
                cursor.execute(
                    "SELECT eno, ename FROM EMP WHERE sal >= ?", [100])
                block = cursor.fetchmany(8)   # streams batch-at-a-time
                while block:
                    block = cursor.fetchmany(8)
            # Reads see committed state only; the materialized view is
            # maintained from commit-scoped deltas.
            s.matview("deps_arc_m")


def main() -> None:
    engine = Engine()
    create_org_schema(engine.catalog)
    populate_org(engine.catalog, OrgScale(
        departments=6, employees_per_dept=4, projects_per_dept=2,
        skills=10, arc_fraction=0.34, seed=30))

    bootstrap = engine.connect(label="bootstrap")
    bootstrap.execute(
        f"CREATE MATERIALIZED VIEW deps_arc_m AS {DEPS_ARC_QUERY}")
    before = bootstrap.query("SELECT COUNT(*) FROM EMP").rows[0][0]

    threads = [
        threading.Thread(target=writer, args=(engine, 0, 8)),
        threading.Thread(target=writer, args=(engine, 1, 8)),
        threading.Thread(target=reader, args=(engine, 0, 10)),
        threading.Thread(target=reader, args=(engine, 1, 10)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    after = bootstrap.query("SELECT COUNT(*) FROM EMP").rows[0][0]
    committed = 2 * sum(1 for i in range(8) if i % 4 != 3)
    print(f"employees: {before} -> {after} "
          f"(+{committed} committed, rollbacks discarded)")

    served = bootstrap.matview("deps_arc_m")
    fresh = bootstrap.xnf(DEPS_ARC_QUERY)
    match = all(
        sorted(served.component(name).rows)
        == sorted(fresh.component(name).rows)
        for name in served.components)
    print("materialized view equals fresh recompute:", match)

    cache = engine.pipeline.plan_cache.stats
    print(f"shared plan cache over all sessions: {cache.hits} hits, "
          f"{cache.misses} misses")
    engine.close()
    assert after == before + committed
    assert match


if __name__ == "__main__":
    main()
