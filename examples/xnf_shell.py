"""An interactive SQL/XNF shell over the engine.

Type plain SQL, XNF queries (``OUT OF ... TAKE ...``), or the meta
commands below against an in-memory database pre-loaded with the
paper's organizational schema:

    \\d               list tables and views
    \\explain <stmt>  show QGM + plan for a SELECT or XNF query
    \\co <view|query> extract a CO view and print its streams
    \\q               quit

Run:  python examples/xnf_shell.py            (interactive)
      echo "SELECT * FROM DEPT" | python examples/xnf_shell.py
"""

import sys

from repro import Database
from repro.errors import ReproError
from repro.executor.runtime import QueryResult
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   create_org_schema, populate_org)
from repro.xnf.result import COResult


def print_result(result) -> None:
    if isinstance(result, QueryResult):
        print(" | ".join(result.columns))
        for row in result.rows[:50]:
            print(" | ".join(str(v) for v in row))
        if len(result.rows) > 50:
            print(f"... ({len(result.rows)} rows total)")
        else:
            print(f"({len(result.rows)} rows)")
    elif isinstance(result, COResult):
        print_co(result)
    elif result is not None:
        print(f"ok ({result} rows affected)")
    else:
        print("ok")


def print_co(co: COResult) -> None:
    for name, stream in co.components.items():
        print(f"component {name} ({len(stream)} tuples): "
              f"{stream.columns}")
        for row in stream.rows[:5]:
            print(f"   {row}")
        if len(stream) > 5:
            print("   ...")
    for name, stream in co.relationships.items():
        origin = " [reconstructed]" if stream.reconstructed else ""
        print(f"relationship {name} ({len(stream)} connections, "
              f"{stream.parent} -{stream.role}-> "
              f"{','.join(stream.children)}){origin}")


def make_database() -> Database:
    db = Database()
    create_org_schema(db.catalog)
    populate_org(db.catalog, OrgScale(departments=6,
                                      employees_per_dept=4,
                                      projects_per_dept=2, skills=10,
                                      arc_fraction=0.34, seed=1))
    db.execute(f"CREATE VIEW deps_arc AS {DEPS_ARC_QUERY}")
    return db


def handle_meta(db: Database, line: str) -> bool:
    """Returns False when the shell should exit."""
    if line in ("\\q", "\\quit", "exit"):
        return False
    if line == "\\d":
        for table in db.catalog.tables():
            print(f"table {table.name} ({len(table)} rows): "
                  f"{', '.join(table.column_names)}")
        for view in db.catalog.views():
            kind = "XNF view" if view.is_xnf else "view"
            print(f"{kind} {view.name}")
        return True
    if line.startswith("\\explain "):
        print(db.explain(line[len("\\explain "):]))
        return True
    if line.startswith("\\co "):
        print_co(db.xnf(line[len("\\co "):].strip()))
        return True
    print(f"unknown meta command: {line.split()[0]}")
    return True


def main() -> None:
    db = make_database()
    interactive = sys.stdin.isatty()
    if interactive:
        print(__doc__)
        print("pre-loaded: DEPT/EMP/PROJ/SKILLS (+ mapping tables) and "
              "the deps_arc XNF view\n")
    buffer: list[str] = []
    while True:
        try:
            prompt = "xnf> " if not buffer else "...> "
            line = input(prompt) if interactive else next(sys.stdin, None)
            if line is None:
                break
        except (EOFError, KeyboardInterrupt):
            break
        line = line.strip()
        if not line:
            continue
        if line.startswith("\\") or line == "exit":
            if not handle_meta(db, line):
                break
            continue
        buffer.append(line)
        # Interactively, statements span lines until a semicolon; piped
        # input is one statement per line.
        if interactive and not line.endswith(";"):
            continue
        statement = " ".join(buffer).rstrip(";")
        buffer = []
        try:
            print_result(db.execute(statement))
        except ReproError as exc:
            print(f"error: {exc}")


if __name__ == "__main__":
    main()
