"""A CAD-style workload: the Cattell OO1 traversal on the XNF cache.

Sect. 5.2: "the performance of XNF cache is quite comparable with fast
OODBMSs reported in Cattell's benchmark ...  we could access in a
pre-loaded XNF cache more than 100,000 tuples per second which matches
the requirements for CAD applications."

This example builds the OO1 parts database, extracts the connected
design neighborhood of a set of anchor parts as a recursive CO, and
runs the depth-7 traversal against the swizzled cache.

Run:  python examples/design_cad.py
"""

import random
import time

from repro import Database
from repro.cache.manager import XNFCache
from repro.workloads.oo1 import (OO1Scale, create_oo1_schema,
                                 oo1_view_query, populate_oo1)

PARTS = 5000
DEPTH = 7
TRAVERSALS = 25


def traverse(part, depth: int) -> int:
    touched = 1
    if depth == 0:
        return touched
    for child in part.children("connects"):
        touched += traverse(child, depth - 1)
    return touched


def main() -> None:
    db = Database()
    create_oo1_schema(db.catalog)
    summary = populate_oo1(db.catalog, OO1Scale(parts=PARTS, seed=1994))
    print(f"OO1 database: {summary['parts']} parts, "
          f"{summary['connections']} connections")

    # Extract the design: anchors plus the transitive CONNECTS closure
    # (a recursive CO evaluated by fixpoint, Sect. 2).
    start = time.perf_counter()
    executable = db.xnf_executable(oo1_view_query(1, PARTS // 100))
    cache = XNFCache.evaluate(executable)
    load_time = time.perf_counter() - start
    parts = cache.extent("xpart")
    connections = sum(len(p.children("connects")) for p in parts)
    print(f"cache loaded in {load_time:.2f}s: {len(parts)} parts, "
          f"{connections} swizzled connections")

    # The OO1 traversal: depth-7 from random parts, all in memory.
    rng = random.Random(7)
    starts = [rng.choice(parts) for _ in range(TRAVERSALS)]
    begin = time.perf_counter()
    touched = sum(traverse(s, DEPTH) for s in starts)
    elapsed = time.perf_counter() - begin
    rate = touched / elapsed
    print(f"\ndepth-{DEPTH} traversal x{TRAVERSALS}: "
          f"{touched:,} tuples in {elapsed * 1e3:.1f} ms "
          f"-> {rate:,.0f} tuples/second")
    print("paper's bar: >100,000 tuples/second — "
          + ("MET" if rate > 100_000 else "NOT MET"))

    # Reverse navigation works on the same pointers.
    popular = max(parts, key=lambda p: len(p.parents("connects")))
    print(f"\nmost referenced part: id={popular.id} with "
          f"{len(popular.parents('connects'))} incoming connections")

    # A type-filtered scan, the other OO1 lookup pattern.
    typed = [p for p in parts if p.ptype == "part-type1"]
    print(f"parts of type 'part-type1' in the cache: {len(typed)}")


if __name__ == "__main__":
    main()
