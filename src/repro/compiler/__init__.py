"""The unified compile pipeline (Fig. 2 as one pass manager).

Every consumer of compiled artifacts — ad-hoc SELECTs, DML
qualification, XNF/materialized-view translation, and the plan cache's
read-through — drives the same :class:`CompilationPipeline`, so the
stage sequence (parse -> build -> normalize -> rewrite-to-fixpoint ->
prune -> plan), the rule catalog, the fixpoint budget, and the cache
keying exist in exactly one place.
"""

from repro.compiler.pipeline import (CompilationPipeline, CompilationTrace,
                                     CompiledQuery, PipelineOptions,
                                     StageRecord, rewrite_fixpoint)

__all__ = [
    "CompilationPipeline", "CompilationTrace", "CompiledQuery",
    "PipelineOptions", "StageRecord", "rewrite_fixpoint",
]
