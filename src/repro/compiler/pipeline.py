"""The pass manager owning the canonical compile stage sequence.

Sect. 4.4's implementation claim is that NF and XNF queries share one
rule representation and one rule engine over QGM.  This module makes
the *whole compile path* shared as well: the
:class:`CompilationPipeline` drives

    parse -> QGM build -> normalize -> rewrite-to-fixpoint -> prune
          -> plan

for every consumer — the Database facade's query/execute, DML
qualification, XNF and materialized-view translation, and the plan
cache's read-through — with per-stage tracing for EXPLAIN.

Plan-cache keying is two-level.  The first key is the parameterized
statement AST (cheap, catches exact repeats).  On a miss the pipeline
runs the front half (build/normalize/rewrite/prune) and probes again
with the *post-rewrite canonical form* of the QGM graph
(:func:`repro.qgm.dump.canonical_fingerprint`): two statements that
differ only pre-rewrite — a view reference and its hand-inlined
equivalent, say — converge to one compiled plan, and the AST key is
aliased to it so the next repeat hits on the first probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.executor.plan_cache import (CacheInfo, PlanCache,
                                       parameterize_select)
from repro.optimizer.optimizer import (ExecutablePlan, Planner,
                                       PlannerOptions)
from repro.qgm.builder import QGMBuilder
from repro.qgm.dump import canonical_fingerprint, dump_graph
from repro.qgm.model import BaseBox, Box, QGMGraph, SelectBox
from repro.rewrite.engine import RewriteContext, RuleEngine
from repro.rewrite.nf_rules import default_nf_rules, prune_unused_columns
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager


@dataclass
class PipelineOptions:
    """Stage toggles, exposed so benchmarks can ablate the rewrites.

    Batch-at-a-time execution is controlled through the nested planner
    options: ``PipelineOptions(planner=PlannerOptions(
    batch_execution=False))`` falls back to row-at-a-time Volcano
    iteration; ``PlannerOptions(batch_size=...)`` tunes the batch width,
    and ``PlannerOptions(rewrite_budget=...)`` bounds the rewrite
    fixpoint.
    """

    apply_nf_rewrite: bool = True
    prune_columns: bool = True
    #: Capacity of the parameterized plan cache (entries); 0 disables
    #: caching, so every statement recompiles through the full pipeline.
    plan_cache_size: int = 256
    planner: PlannerOptions = field(default_factory=PlannerOptions)

    @property
    def batch_execution(self) -> bool:
        return self.planner.batch_execution

    @batch_execution.setter
    def batch_execution(self, enabled: bool) -> None:
        self.planner.batch_execution = enabled


@dataclass
class CompiledQuery:
    """Everything the pipeline produced for one statement."""

    graph: QGMGraph
    #: None only transiently, between the front half and planning.
    plan: Optional[ExecutablePlan]
    rewrite_context: Optional[RewriteContext] = None
    pruned_columns: int = 0
    #: Post-rewrite canonical fingerprint (set on cached compiles).
    canonical: Optional[str] = None


@dataclass
class StageRecord:
    """One pipeline stage's trace entry."""

    stage: str
    detail: str
    dump: Optional[str] = None


@dataclass
class CompilationTrace:
    """Per-stage QGM dumps plus the ordered rule firings.

    Collected when a caller passes ``trace=CompilationTrace()`` (the
    facade's ``explain(sql, rewrite_trace=True)``); rendering follows
    the stage order, then the rule sequence.
    """

    records: list[StageRecord] = field(default_factory=list)
    rules_fired: list[str] = field(default_factory=list)

    def record(self, stage: str, detail: str,
               graph: Optional[QGMGraph] = None) -> None:
        dump = None if graph is None else dump_graph(graph)
        self.records.append(StageRecord(stage, detail, dump))

    def render(self) -> str:
        lines: list[str] = ["-- rewrite trace --"]
        for entry in self.records:
            lines.append(f"stage {entry.stage}: {entry.detail}")
            if entry.dump is not None:
                lines.extend("  " + line
                             for line in entry.dump.splitlines())
        fired = " -> ".join(self.rules_fired) if self.rules_fired \
            else "(none)"
        lines.append(f"rules fired: {fired}")
        return "\n".join(lines)


def rewrite_fixpoint(graph: QGMGraph, catalog: Catalog,
                     budget: Optional[int] = None,
                     prune: bool = True,
                     trace: Optional[CompilationTrace] = None
                     ) -> RewriteContext:
    """Run the shared rule catalog to a fixpoint, then a final prune.

    The one rewrite implementation in the codebase: the pipeline's
    rewrite stage and the XNF translator's post-translation cleanup both
    call this.  ``prune`` includes the PruneColumns rule in the fixpoint
    (and a belt-and-braces final sweep, normally a no-op).
    """
    engine = RuleEngine(
        default_nf_rules(prune=prune),
        budget=budget if budget is not None
        else PlannerOptions().rewrite_budget,
    )
    context = engine.run(graph, catalog)
    if trace is not None:
        trace.rules_fired.extend(context.fired)
        trace.record("rewrite",
                     f"fixpoint after {len(context.fired)} rule "
                     f"applications: {context.applications}", graph)
    if prune:
        context.pruned_columns += prune_unused_columns(graph)
    if trace is not None:
        trace.record("prune",
                     f"{context.pruned_columns} head columns removed",
                     graph)
    return context


class CompilationPipeline:
    """The single compile path from SQL text (or QGM) to a plan.

    Owns the stage sequence, the rewrite rule catalog and budget, the
    planner, and the plan cache with its two-level (AST + canonical)
    keying.  Entry points:

    * :meth:`compile_select` / :meth:`compile_select_cached` — SELECTs;
    * :meth:`compile_qgm` — pre-built graphs (DML qualification);
    * :meth:`rewrite_graph` — rewrite+prune only (XNF translation);
    * :meth:`cached_compile` — generic read-through for other compiled
      artifacts (XNF executables) sharing this cache's invalidation.
    """

    def __init__(self, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None,
                 options: Optional[PipelineOptions] = None,
                 xnf_component_resolver: Optional[
                     Callable[[str, str], Box]] = None):
        self.catalog = catalog
        # A self-created manager subscribes to the delta protocol so DML
        # through this pipeline invalidates statistics automatically.
        self.stats = stats or StatisticsManager(catalog, subscribe=True)
        self.options = options or PipelineOptions()
        self.xnf_component_resolver = xnf_component_resolver
        self.plan_cache = PlanCache(self.options.plan_cache_size)

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def builder(self) -> QGMBuilder:
        return QGMBuilder(self.catalog, self.xnf_component_resolver)

    def build_select(self, statement: ast.SelectStatement) -> QGMGraph:
        return self.builder().build_select(statement)

    def build_xnf(self, query: ast.XNFQuery,
                  view_name: str = "XNF") -> QGMGraph:
        return self.builder().build_xnf(query, view_name=view_name)

    @staticmethod
    def normalize(graph: QGMGraph) -> int:
        """Canonical cleanup before rule matching: drop Literal(TRUE)
        conjuncts left by subquery detachment.  Returns #dropped."""
        dropped = 0
        for box in graph.all_boxes():
            if not isinstance(box, SelectBox):
                continue
            before = len(box.predicates)
            box.predicates = [p for p in box.predicates
                              if p != ast.Literal(True)]
            dropped += before - len(box.predicates)
        return dropped

    def rewrite_graph(self, graph: QGMGraph,
                      trace: Optional[CompilationTrace] = None
                      ) -> RewriteContext:
        """Rewrite-to-fixpoint + prune, without planning."""
        return rewrite_fixpoint(
            graph, self.catalog,
            budget=self.options.planner.rewrite_budget,
            prune=self.options.prune_columns, trace=trace,
        )

    def plan(self, graph: QGMGraph,
             peek: Optional[dict] = None) -> ExecutablePlan:
        planner = Planner(self.catalog, self.stats, self.options.planner,
                          peek=peek)
        return planner.plan(graph)

    # ------------------------------------------------------------------
    # Whole-pipeline compiles
    # ------------------------------------------------------------------
    def compile_select(self, statement: ast.SelectStatement,
                       trace: Optional[CompilationTrace] = None
                       ) -> CompiledQuery:
        graph = self.build_select(statement)
        if trace is not None:
            trace.record("build", "AST resolved to QGM", graph)
        return self.compile_qgm(graph, trace=trace)

    def compile_qgm(self, graph: QGMGraph,
                    trace: Optional[CompilationTrace] = None
                    ) -> CompiledQuery:
        """normalize -> rewrite -> prune -> plan over a built graph."""
        compiled, _canonical = self._front_half(graph, trace)
        compiled.plan = self.plan(graph)
        if trace is not None:
            trace.record("plan", compiled.plan.explain().splitlines()[0]
                         if compiled.plan.outputs else "empty plan")
        return compiled

    def _front_half(self, graph: QGMGraph,
                    trace: Optional[CompilationTrace] = None,
                    want_canonical: bool = False
                    ) -> tuple[CompiledQuery, Optional[str]]:
        """Everything before planning; returns a plan-less
        CompiledQuery plus (optionally) the canonical fingerprint."""
        dropped = self.normalize(graph)
        if trace is not None:
            trace.record("normalize",
                         f"{dropped} trivial conjuncts dropped")
        context = None
        pruned = 0
        if self.options.apply_nf_rewrite:
            context = self.rewrite_graph(graph, trace=trace)
            pruned = context.pruned_columns
        elif self.options.prune_columns:
            pruned = prune_unused_columns(graph)
            if trace is not None:
                trace.record("prune",
                             f"{pruned} head columns removed", graph)
        canonical = canonical_fingerprint(graph) if want_canonical \
            else None
        compiled = CompiledQuery(graph=graph, plan=None,
                                 rewrite_context=context,
                                 pruned_columns=pruned,
                                 canonical=canonical)
        return compiled, canonical

    # ------------------------------------------------------------------
    # Plan-cache integration
    # ------------------------------------------------------------------
    def _options_signature(self) -> tuple:
        """The option values a compiled plan depends on; part of the
        cache key so toggling a knob never serves a stale plan."""
        planner = self.options.planner
        return (self.options.apply_nf_rewrite, self.options.prune_columns,
                planner.use_indexes, planner.share_common_subexpressions,
                planner.batch_execution, planner.batch_size,
                planner.join_enumeration, planner.dp_join_threshold,
                planner.cost_based_access_paths, planner.legacy_cost_model,
                planner.parallel_degree, planner.parallel_row_threshold)

    def _stats_view(self, table_name: str) -> tuple[int, int]:
        """(table epoch, live cardinality) — what cached entries over
        this table are validated against.  Cardinality -1 when the
        table is gone (the schema version catches that anyway)."""
        name = table_name.upper()
        live = len(self.catalog.table(name)) \
            if self.catalog.has_table(name) else -1
        return self.stats.table_epoch(name), live

    def _on_stats_drift(self, table_name: str) -> None:
        """Lookup detected direct-storage drift the delta protocol
        never saw: invalidate the table's statistics (bumping its
        epoch, so sibling cached plans fall too)."""
        self.stats.invalidate(table_name)

    @staticmethod
    def graph_tables(graph: QGMGraph) -> list[str]:
        """The base tables a compiled graph reads (for cache
        validation keys)."""
        return sorted({box.table.name for box in graph.all_boxes()
                       if isinstance(box, BaseBox)})

    @staticmethod
    def _plan_estimated_rows(plan: ExecutablePlan) -> float:
        """The planner's output-row estimate for a single-output plan
        (-1.0 when there is no single output to summarize)."""
        if plan is not None and len(plan.outputs) == 1:
            return float(plan.outputs[0][1].estimated_rows)
        return -1.0

    def _stats_keys(self, tables) -> tuple:
        return tuple(
            (name.upper(),) + tuple(self._stats_view(name))
            for name in tables
        )

    def compile_parameterized(self, parameterized) -> CompiledQuery:
        """Compile a pre-parameterized SELECT through the plan cache.

        Single source of truth for the SELECT cache key shape — both
        the ad-hoc path (:meth:`compile_select_cached`) and prepared
        statements go through here.
        """
        signature = self._options_signature()
        key = ("select", parameterized.statement, signature)
        cache = self.plan_cache
        if not cache.enabled:
            cache.last_info = CacheInfo(status="bypass",
                                        reason="plan cache disabled")
            return self.compile_select(parameterized.statement)
        schema_version = self.catalog.schema_version
        entry = cache.lookup(key, schema_version, self._stats_view,
                             self._on_stats_drift)
        if entry is not None:
            self._stamp_epoch()
            return entry.value
        # First-level miss: run the front half and probe the canonical
        # (post-rewrite) key before paying for plan optimization.
        graph = self.build_select(parameterized.statement)
        compiled, canonical = self._front_half(graph,
                                               want_canonical=True)
        canon_key = ("canon", canonical, signature)
        canon_entry = cache.probe(canon_key, schema_version,
                                  self._stats_view, self._on_stats_drift)
        if canon_entry is not None:
            # Equivalent statement already compiled: alias the AST key
            # to the same artifact and report a (canonical) hit.  The
            # first-level lookup already counted a miss; reclassify it,
            # so one compile is exactly one hit or one miss.
            cache.store(key, canon_entry.value, schema_version,
                        canon_entry.stats_keys,
                        estimated_rows=canon_entry.estimated_rows)
            cache.stats.misses -= 1
            cache.stats.hits += 1
            cache.last_info = CacheInfo(
                status="hit", fingerprint=canon_entry.fingerprint,
                reason="post-rewrite canonical form matched",
                schema_version=schema_version,
                estimated_rows=canon_entry.estimated_rows,
            )
            self._stamp_epoch()
            return canon_entry.value
        # Plan with the lifted literals peeked, so the cost model keeps
        # value-aware (MCV/histogram) estimates for ad-hoc statements.
        compiled.plan = self.plan(graph, peek=parameterized.bindings)
        miss_info = cache.last_info
        stats_keys = self._stats_keys(self.graph_tables(graph))
        estimated = self._plan_estimated_rows(compiled.plan)
        miss_info.estimated_rows = estimated
        cache.store(key, compiled, schema_version, stats_keys,
                    estimated_rows=estimated)
        cache.store(canon_key, compiled, schema_version, stats_keys,
                    estimated_rows=estimated)
        cache.last_info = miss_info
        self._stamp_epoch()
        return compiled

    def compile_select_cached(self, statement: ast.SelectStatement
                              ) -> tuple[CompiledQuery, dict]:
        """Compile through the plan cache.

        The statement is auto-parameterized (literals lifted into
        synthetic parameters) to form the cache key; returns the
        compiled query plus the synthetic bindings to install in the
        execution context.  With the cache disabled this falls through
        to a plain compile with no lifting.
        """
        if not self.plan_cache.enabled:
            self.plan_cache.last_info = CacheInfo(
                status="bypass", reason="plan cache disabled")
            return self.compile_select(statement), {}
        parameterized = parameterize_select(statement)
        return self.compile_parameterized(parameterized), \
            parameterized.bindings

    def cached_compile(self, key: tuple, compile_fn,
                       tables_of=None) -> object:
        """Generic read-through for compiled artifacts (XNF
        executables, DML qualification plans) sharing this pipeline's
        cache and invalidation rules.  ``tables_of(value)`` names the
        base tables the artifact reads, for per-table statistics
        validation."""
        if not self.plan_cache.enabled:
            self.plan_cache.last_info = CacheInfo(
                status="bypass", reason="plan cache disabled")
            return compile_fn()
        value = self.plan_cache.get_or_compile(
            key, self.catalog.schema_version, self._stats_view,
            compile_fn, tables_of=tables_of,
            on_drift=self._on_stats_drift,
        )
        self._stamp_epoch()
        return value

    def _stamp_epoch(self) -> None:
        # Display-only: EXPLAIN's cache section reports the manager's
        # total epoch alongside the schema version.
        self.plan_cache.last_info.stats_epoch = self.stats.epoch
