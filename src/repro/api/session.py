"""Sessions: one client's view of a shared :class:`Engine`.

A session owns a transaction scope (``begin``/``commit``/``rollback``
affect only this session), a statement-text parse cache, and execution
options (cursor ``arraysize``, executor batch width, XNF compile
options).  Everything compiled flows through the engine's *shared*
plan cache, so hot statements prepared by one session serve them all.

    engine = Engine()
    with engine.connect() as session:
        session.execute("CREATE TABLE T (A INT PRIMARY KEY)")
        with session.cursor() as cur:
            for row in cur.execute("SELECT * FROM T WHERE a > ?", [1]):
                ...

Sessions are *not* thread-safe objects: use one session per thread.
The engine underneath is — that is the whole point of the split.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.errors import CatalogError, InterfaceError, SemanticError
from repro.executor.runtime import QueryResult, QueryStream
from repro.cache.manager import XNFCache
from repro.cache.matview import MaterializedView
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.catalog import ViewDefinition
from repro.storage.partition import (HashPartitioning, Partitioning,
                                     RangePartitioning)
from repro.storage.table import Table
from repro.storage.types import Column, type_from_name
from repro.xnf.naive import NaiveXNFEvaluator
from repro.xnf.result import COResult, XNFExecutable
from repro.xnf.translate import XNFOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.engine import Engine

ExecuteResult = Union[QueryResult, COResult, int, None]


def _partitioning_from_spec(
        spec: Optional[ast.PartitionSpec]) -> Optional[Partitioning]:
    """Convert a parsed ``PARTITION BY`` clause into a storage scheme."""
    if spec is None:
        return None
    columns = tuple(c.upper() for c in spec.columns)
    if spec.scheme == "HASH":
        return HashPartitioning(columns, spec.partitions)
    return RangePartitioning(columns[0], tuple(spec.bounds))


class _SessionWriteBack:
    """The transaction surface handed to client caches for write-back.

    Routes ``run_atomic`` through the engine's write protocol (writer
    latch + exclusive statement latch) on behalf of one session, so a
    cache write-back obeys the same serialization as any DML.
    """

    def __init__(self, session: "Session"):
        self._session = session

    @property
    def in_transaction(self) -> bool:
        return self._session.in_transaction

    def run_atomic(self, thunk):
        session = self._session
        return session.engine.write(
            session,
            lambda: session.engine.transactions.run_atomic(
                thunk, session.scope),
        )


class Session:
    """One client connection to a shared engine."""

    def __init__(self, engine: "Engine", scope: str, label: str,
                 arraysize: Optional[int] = None,
                 batch_size: Optional[int] = None,
                 xnf_options: Optional[XNFOptions] = None):
        self.engine = engine
        self.scope = scope
        self.label = label
        #: Default ``Cursor.fetchmany`` size for cursors of this session.
        self.arraysize = arraysize if arraysize and arraysize > 0 else 64
        #: Executor batch width override for this session's streams
        #: (None: the planner default).
        self.batch_size = batch_size
        self.xnf_options = xnf_options or engine.xnf_options
        # Session-level statement-text LRU in front of the engine's
        # shared one: exact-text repeats skip even the shared cache's
        # lock.  Disabled with the plan cache so `plan_cache_size=0`
        # measures true full-pipeline cost.
        from repro.api.engine import StatementTextCache
        self._parse_cache = StatementTextCache(
            engine.parse_cache_capacity)
        #: Open cursors, so closing the session closes their streams
        #: deterministically (an abandoned half-consumed stream must not
        #: hold executor state until garbage collection).
        self._cursors: list = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close open cursors, roll back any open transaction, and
        close the session."""
        if self._closed:
            return
        for cursor in list(self._cursors):
            cursor.close()
        if self.in_transaction:
            self.engine.end_transaction(self, commit=False)
        self.engine._forget(self)
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("operation on a closed session")
        self.engine._check_open()

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed and self.in_transaction:
            self.engine.end_transaction(self, commit=exc_type is None)
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"<Session {self.label} ({state})>"

    # ------------------------------------------------------------------
    # Transactions (this session's scope only)
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self.engine.transactions.in_transaction_for(self.scope)

    def begin(self) -> None:
        self._check_open()
        self.engine.transactions.begin(self.scope)

    def commit(self) -> None:
        self._check_open()
        self.engine.end_transaction(self, commit=True)

    def rollback(self) -> None:
        self._check_open()
        self.engine.end_transaction(self, commit=False)

    def savepoint(self, name: str) -> None:
        self._check_open()
        self.engine.transactions.savepoint(name, self.scope)

    def rollback_to_savepoint(self, name: str) -> None:
        self._check_open()
        self.engine.write(
            self, lambda: self.engine.transactions.rollback_to_savepoint(
                name, self.scope))

    # ------------------------------------------------------------------
    # Statement parsing
    # ------------------------------------------------------------------
    def _parse(self, sql: str) -> ast.Statement:
        """Two-level parse: this session's lock-free LRU over the
        engine's shared statement-text cache (one client's parse of a
        hot statement serves every session)."""
        if self._parse_cache.capacity <= 0:
            return parse_statement(sql)
        statement = self._parse_cache.get(sql)
        if statement is not None:
            return statement
        statement = self.engine.parse(sql)
        self._parse_cache.put(sql, statement)
        return statement

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params=None) -> ExecuteResult:
        """Run one statement of any kind; return type depends on it.

        ``params`` binds ``?`` (sequence) or ``:name`` (mapping)
        markers for SELECT and DML statements.
        """
        self._check_open()
        return self.execute_statement(self._parse(sql), params=params)

    def execute_statement(self, statement: ast.Statement,
                          params=None) -> ExecuteResult:
        self._check_open()
        engine = self.engine
        if isinstance(statement, ast.SelectStatement):
            return engine.read(
                self, lambda: engine.pipeline.run_select(statement,
                                                         params=params))
        if isinstance(statement, ast.XNFQuery):
            return self.run_xnf_query(statement)
        if isinstance(statement, ast.InsertStatement):
            # DML naming a view (or an XNF component path) routes to
            # the put-back translator; base tables to the plain path.
            if engine.viewupdates.handles(statement.table):
                return self._write_atomic(
                    lambda: engine.viewupdates.insert(statement, params))
            return self._write_atomic(
                lambda: engine.dml.insert(statement, params))
        if isinstance(statement, ast.UpdateStatement):
            if engine.viewupdates.handles(statement.table):
                return self._write_atomic(
                    lambda: engine.viewupdates.update(statement, params))
            return self._write_atomic(
                lambda: engine.dml.update(statement, params))
        if isinstance(statement, ast.DeleteStatement):
            if engine.viewupdates.handles(statement.table):
                return self._write_atomic(
                    lambda: engine.viewupdates.delete(statement, params))
            return self._write_atomic(
                lambda: engine.dml.delete(statement, params))
        if isinstance(statement, ast.AnalyzeStatement):
            return self.analyze(statement.table)
        if isinstance(statement, ast.CreateTableStatement):
            engine.write(self, lambda: self._create_table(statement))
            return None
        if isinstance(statement, ast.CreateIndexStatement):
            engine.write(self, lambda: engine.catalog.create_index(
                statement.name, statement.table, list(statement.columns),
                unique=statement.unique))
            return None
        if isinstance(statement, ast.CreateViewStatement):
            engine.write(self, lambda: self._create_view(statement))
            return None
        if isinstance(statement, ast.CreateMaterializedViewStatement):
            self.create_materialized_view(statement.name, statement.query,
                                          policy=statement.policy)
            return None
        if isinstance(statement, ast.RefreshStatement):
            return self.refresh_materialized_view(statement.name,
                                                  full=statement.full)
        if isinstance(statement, ast.DropStatement):
            engine.write(self, lambda: self._drop(statement))
            return None
        raise SemanticError(f"cannot execute {type(statement).__name__}")

    def _write_atomic(self, thunk) -> ExecuteResult:
        engine = self.engine
        return engine.write(
            self, lambda: engine.transactions.run_atomic(thunk,
                                                         self.scope))

    def query(self, sql: str, params=None) -> QueryResult:
        """Run a SELECT and return its (fully materialized) result.

        Repeated queries hit the engine's auto-parameterizing plan
        cache: two calls differing only in literal constants (or bound
        parameter values) share one compiled plan — across sessions.
        """
        self._check_open()
        statement = self._parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise SemanticError("query() expects a SELECT statement")
        engine = self.engine
        return engine.read(
            self, lambda: engine.pipeline.run_select(statement,
                                                     params=params))

    def cursor(self):
        """A DB-API-2.0-flavored cursor streaming from the batch
        executor."""
        from repro.api.cursor import Cursor
        self._check_open()
        cursor = Cursor(self)
        self._cursors.append(cursor)
        return cursor

    def _forget_cursor(self, cursor) -> None:
        if cursor in self._cursors:
            self._cursors.remove(cursor)

    def prepare(self, sql: str):
        """Parse (and pre-parameterize) a statement for repeated runs.

        The returned object's :meth:`~PreparedStatement.run` binds
        parameter values and executes through the shared plan cache,
        skipping parse *and* compile on every execution after the
        first.
        """
        from repro.api.prepared import PreparedStatement
        self._check_open()
        return PreparedStatement(self, sql, parse_statement(sql))

    def analyze(self, table: Optional[str] = None) -> int:
        """Recompute optimizer statistics (the ``ANALYZE`` statement)."""
        self._check_open()
        return self.engine.write(
            self, lambda: self.engine.stats.analyze(table))

    def execute_script(self, sql: str) -> list[ExecuteResult]:
        """Run a multi-statement script **atomically**.

        All-or-nothing for table data: a failure mid-script rolls the
        data changes of earlier statements back (in the session's own
        transaction when none is open, else to a savepoint).  DDL is
        not undo-logged and survives — documented single-writer
        simplification.
        """
        from repro.sql.parser import parse_script
        self._check_open()
        statements = parse_script(sql)
        own_txn = not self.in_transaction
        savepoint_name = None
        if own_txn:
            self.begin()
        else:
            txn = self.engine.transactions.transaction_for(self.scope)
            savepoint_name = f"__script_{len(txn.log)}"
            self.savepoint(savepoint_name)
        try:
            results = [self.execute_statement(s) for s in statements]
        except Exception:
            if own_txn:
                self.rollback()
            else:
                self.rollback_to_savepoint(savepoint_name)
            raise
        if own_txn:
            self.commit()
        return results

    # ------------------------------------------------------------------
    # Streaming (the cursor's engine-side hooks)
    # ------------------------------------------------------------------
    def _stream_select(self, statement: ast.SelectStatement,
                       params=None) -> QueryStream:
        engine = self.engine
        return engine.read(
            self, lambda: engine.pipeline.stream_select(
                statement, params=params, batch_size=self.batch_size))

    def _next_batch(self, stream: QueryStream) -> Optional[list[tuple]]:
        self._check_open()
        return self.engine.read(self, stream.next_batch)

    # ------------------------------------------------------------------
    # DDL handlers
    # ------------------------------------------------------------------
    def _create_table(self, statement: ast.CreateTableStatement) -> None:
        catalog = self.engine.catalog
        pk = {c.upper() for c in statement.primary_key}
        columns = []
        for definition in statement.columns:
            is_pk = definition.primary_key or definition.name.upper() in pk
            columns.append(Column(
                name=definition.name.upper(),
                data_type=type_from_name(definition.type_name,
                                         definition.type_length),
                nullable=definition.nullable and not is_pk,
                primary_key=is_pk,
            ))
        partitioning = _partitioning_from_spec(statement.partition_by)
        catalog.create_table(statement.name, columns,
                             partitioning=partitioning)
        for number, fk in enumerate(statement.foreign_keys):
            name = fk.name or f"FK_{statement.name}_{number}".upper()
            catalog.add_foreign_key(
                name, statement.name, list(fk.columns),
                fk.parent_table, list(fk.parent_columns),
            )

    def _create_view(self, statement: ast.CreateViewStatement) -> None:
        view = ViewDefinition(
            name=statement.name,
            definition=statement.query,
            text="",
            is_xnf=statement.is_xnf,
            column_names=tuple(c.upper() for c in statement.column_names),
        )
        # Validate eagerly: building the QGM catches bad references.
        compiler = self.engine.pipeline.compiler
        if not statement.is_xnf:
            compiler.build_select(statement.query)
        else:
            compiler.build_xnf(statement.query, view_name=statement.name)
        self.engine.catalog.create_view(view)

    def _drop(self, statement: ast.DropStatement) -> None:
        engine = self.engine
        if statement.kind == "TABLE":
            dependent = [view.name for view in engine.matviews.views()
                         if statement.name.upper() in view.base_tables]
            if dependent:
                raise CatalogError(
                    f"cannot drop table {statement.name!r}: materialized "
                    f"views {dependent} are defined over it"
                )
            engine.catalog.drop_table(statement.name)
            engine.stats.invalidate(statement.name)
        elif statement.kind == "VIEW":
            if engine.catalog.has_view(statement.name) \
                    and engine.catalog.view(statement.name).materialized:
                raise CatalogError(
                    f"{statement.name!r} is a materialized view; use "
                    f"DROP MATERIALIZED VIEW"
                )
            engine.catalog.drop_view(statement.name)
        elif statement.kind == "MATERIALIZED VIEW":
            engine.matviews.drop(statement.name)
            engine.catalog.drop_view(statement.name)
        elif statement.kind == "INDEX":
            engine.catalog.drop_index(statement.name)
        else:  # pragma: no cover - parser restricts kinds
            raise SemanticError(f"cannot drop {statement.kind}")

    # ------------------------------------------------------------------
    # XNF entry points
    # ------------------------------------------------------------------
    def xnf_executable(self, source: Union[str, ast.XNFQuery],
                       xnf_options: Optional[XNFOptions] = None,
                       ) -> XNFExecutable:
        """Compile an XNF query (text, view name, or AST) to plans."""
        self._check_open()
        engine = self.engine
        query, view_name = engine.xnf_query_of(source)
        return engine.read(
            self, lambda: engine.compile_xnf(
                query, view_name, xnf_options or self.xnf_options))

    def run_xnf_query(self, source: Union[str, ast.XNFQuery]) -> COResult:
        self._check_open()
        engine = self.engine
        query, view_name = engine.xnf_query_of(source)
        # Read-through: a query structurally equal to a registered
        # materialized view's definition is served from the
        # materialization (refreshed per its staleness policy).
        materialized = engine.matviews.lookup_query(query)
        if materialized is not None:
            return engine.matview_read(self, materialized.read)
        return engine.read(
            self, lambda: engine.compile_xnf(
                query, view_name, self.xnf_options).run())

    def xnf(self, source: Union[str, ast.XNFQuery]) -> COResult:
        """Materialize a CO view (alias of :meth:`run_xnf_query`)."""
        return self.run_xnf_query(source)

    def xnf_naive(self, source: Union[str, ast.XNFQuery]) -> COResult:
        """Evaluate with the reference (unoptimized) evaluator."""
        self._check_open()
        engine = self.engine
        query, view_name = engine.xnf_query_of(source)

        def run():
            graph = engine.pipeline.compiler.build_xnf(
                query, view_name=view_name)
            return NaiveXNFEvaluator(engine.catalog,
                                     engine.stats).evaluate(graph)
        return engine.read(self, run)

    def open_cache(self, source: Union[str, ast.XNFQuery],
                   write_through: bool = False) -> XNFCache:
        """Evaluate a CO view into a navigable client-side cache.

        The cache's ``write_back()`` applies local changes through this
        session's transaction scope under the engine's write protocol.
        With ``write_through=True`` every local mutation is put back
        immediately instead of batching until ``write_back()``.
        """
        self._check_open()
        engine = self.engine
        query, view_name = engine.xnf_query_of(source)

        def run():
            executable = engine.compile_xnf(query, view_name,
                                            self.xnf_options)
            return XNFCache.evaluate(executable, catalog=engine.catalog,
                                     transactions=_SessionWriteBack(self),
                                     write_through=write_through)
        return engine.read(self, run)

    # ------------------------------------------------------------------
    # Materialized XNF views
    # ------------------------------------------------------------------
    def create_materialized_view(self, name: str,
                                 source: Union[str, ast.XNFQuery],
                                 policy: str = "eager"
                                 ) -> MaterializedView:
        """Register, evaluate and store a materialized CO view.

        The view is entered in the catalog (so its components compose
        into SQL like any XNF view's).  ``policy`` is 'eager' or
        'deferred'.  The initial materialization reads *committed*
        state, so deltas buffered on an open transaction apply exactly
        once — at that transaction's commit.
        """
        self._check_open()
        engine = self.engine
        query, _view_name = engine.xnf_query_of(source)

        def create():
            engine.catalog._check_fresh(name)
            view = engine.matviews.create(name, query, policy=policy)
            engine.catalog.create_view(ViewDefinition(
                name=name, definition=query, text="", is_xnf=True,
                materialized=True,
            ))
            return view
        return engine.write(self, create, committed_views=True)

    def refresh_materialized_view(self, name: str,
                                  full: bool = False) -> COResult:
        """Apply queued deltas (or recompute with ``full=True``)."""
        self._check_open()
        engine = self.engine
        view = engine.matviews.get(name)
        return engine.write(self, lambda: view.refresh(full=full),
                            committed_views=True)

    def matview(self, name: str) -> COResult:
        """Read a materialized view per its staleness policy."""
        self._check_open()
        engine = self.engine
        view = engine.matviews.get(name)
        return engine.matview_read(self, view.read)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, sql: str, rewrite_trace: bool = False) -> str:
        """QGM graph, physical plan, and plan-cache status for a SELECT
        or XNF query (see :meth:`Database.explain` for details)."""
        from repro.compiler.pipeline import CompilationTrace
        from repro.executor.plan_cache import CacheInfo
        from repro.qgm.dump import dump_graph
        self._check_open()
        engine = self.engine
        pipeline = engine.pipeline
        statement = parse_statement(sql)
        if isinstance(statement, ast.SelectStatement):
            def run():
                trace = None
                if rewrite_trace:
                    trace = CompilationTrace()
                    compiled = pipeline.compile_select(statement,
                                                       trace=trace)
                    pipeline.plan_cache.last_info = CacheInfo(
                        status="bypass",
                        reason="rewrite trace requested")
                else:
                    compiled, _bindings = pipeline.compile_select_cached(
                        statement)
                parts = ["-- QGM (after rewrite) --",
                         dump_graph(compiled.graph),
                         "-- plan --", compiled.plan.explain()]
                if compiled.plan.join_orders:
                    parts.append("-- join order --")
                    parts.extend(record.render()
                                 for record in compiled.plan.join_orders)
                if compiled.rewrite_context is not None:
                    parts.append(
                        "-- rewrites: "
                        f"{compiled.rewrite_context.applications}"
                    )
                if trace is not None:
                    parts.append(trace.render())
                parts.append(self._explain_cache_section())
                return "\n".join(parts)
            return engine.read(self, run)
        if isinstance(statement, ast.XNFQuery):
            def run_xnf():
                executable = engine.compile_xnf(
                    *engine.xnf_query_of(statement),
                    xnf_options=self.xnf_options)
                return "\n".join(
                    ["-- XNF QGM (after semantic rewrite) --",
                     dump_graph(executable.translated.graph),
                     "-- plan --", executable.explain(),
                     self._explain_cache_section()])
            return engine.read(self, run_xnf)
        raise SemanticError("EXPLAIN supports SELECT and XNF queries")

    def _explain_cache_section(self) -> str:
        info = self.engine.pipeline.plan_cache.last_info
        lines = ["-- plan cache --", f"status: {info.status}"]
        if info.fingerprint:
            lines.append(f"fingerprint: {info.fingerprint}")
        if info.reason:
            lines.append(f"reason: {info.reason}")
        if info.status != "bypass":
            lines.append(f"schema_version: {info.schema_version}, "
                         f"stats_epoch: {info.stats_epoch}")
        if info.estimated_rows >= 0:
            lines.append(f"estimated_rows: ~{info.estimated_rows:.0f}")
        return "\n".join(lines)

    def table(self, name: str) -> Table:
        return self.engine.catalog.table(name)
