"""Simulated client/server shipping (Sect. 5.3).

The paper's related-work discussion compares shipping disciplines:

* RDBMS-style **tuple-at-a-time** — one request/response round trip per
  tuple ("a call for each tuple of the CO ... unnecessary crossing of
  process boundaries");
* XNF-style **block shipping** — "there is only one call (or only few
  calls) instead of a call for each tuple";
* OODB-style **object/page shipping** — whole objects or pages cross,
  dragging unrequested attributes/objects along (the security/integrity
  trade-off the paper describes).

Since the engine is in-process, the transport is a cost-accounting
simulator: it charges per-message overhead and per-value payload bytes
and reports message/byte totals, which is precisely the quantity the
paper argues about ("often increases the traffic ... by an order of
magnitude").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xnf.result import COResult

#: Rough wire sizes (bytes) — absolute values only matter relatively.
MESSAGE_OVERHEAD = 64
NULL_SIZE = 1
INTEGER_SIZE = 4
FLOAT_SIZE = 8
BOOLEAN_SIZE = 1
PAGE_SIZE = 4096


def value_size(value) -> int:
    if value is None:
        return NULL_SIZE
    if isinstance(value, bool):
        return BOOLEAN_SIZE
    if isinstance(value, int):
        return INTEGER_SIZE
    if isinstance(value, float):
        return FLOAT_SIZE
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, tuple):
        return sum(value_size(v) for v in value)
    return 8


def tuple_size(values: tuple) -> int:
    return sum(value_size(v) for v in values) + 2 * max(len(values), 1)


@dataclass
class TransportStats:
    """Accounted traffic of one extraction (down) or write-back (up)."""

    mode: str
    messages: int = 0
    tuples: int = 0
    payload_bytes: int = 0
    #: write traffic: update/insert/delete operations shipped to the
    #: server and their request payload, accounted separately from the
    #: read direction so a CRUD gateway's up-traffic is visible.
    updates_shipped: int = 0
    payload_bytes_up: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.payload_bytes + self.payload_bytes_up
                + self.messages * MESSAGE_OVERHEAD)

    def __str__(self) -> str:
        text = (f"{self.mode}: {self.messages} messages, "
                f"{self.tuples} tuples, {self.total_bytes} bytes")
        if self.updates_shipped:
            text += (f" ({self.updates_shipped} updates, "
                     f"{self.payload_bytes_up} bytes up)")
        return text


def entry_size(entry) -> int:
    """Wire size of one workspace log entry (a write-back operation)."""
    payload = entry.payload
    size = len(entry.target) + 8  # target name + object identity
    values = payload.get("values")
    if isinstance(values, dict):
        size += sum(value_size(v) for v in values.values())
    elif "new" in payload:
        size += len(payload.get("column", "")) \
            + value_size(payload["new"])
    else:
        size += 8  # connect/disconnect: partner identities
    return size


class TransportSimulator:
    """Charges a COResult's delivery under different disciplines."""

    def tuple_at_a_time(self, result: COResult) -> TransportStats:
        """One fetch request + one reply per tuple (2 crossings each)."""
        stats = TransportStats(mode="tuple-at-a-time")
        for tagged in result.wire_tuples():
            stats.tuples += 1
            stats.messages += 2  # request + response
            stats.payload_bytes += tuple_size(tagged.values)
        stats.messages += 2  # final fetch returning end-of-stream
        return stats

    def block_shipping(self, result: COResult,
                       block_bytes: int = 32 * 1024) -> TransportStats:
        """The XNF discipline: the whole CO in few, large messages."""
        stats = TransportStats(mode="block")
        stats.messages += 1  # the single request
        current = 0
        open_block = False
        for tagged in result.wire_tuples():
            stats.tuples += 1
            size = tuple_size(tagged.values) + 6  # component tag + id
            if not open_block or current + size > block_bytes:
                stats.messages += 1
                open_block = True
                current = 0
            current += size
            stats.payload_bytes += size
        if not open_block:
            stats.messages += 1  # empty result still answers
        return stats

    def object_shipping(self, result: COResult) -> TransportStats:
        """OODB-style: one message per object, all attributes cross.

        Identical tuple counts to block shipping, but per-object message
        overhead — the "order of magnitude" traffic increase of Sect. 5.3.
        """
        stats = TransportStats(mode="object")
        for tagged in result.wire_tuples():
            stats.tuples += 1
            stats.messages += 1
            stats.payload_bytes += tuple_size(tagged.values) + 6
        return stats

    def cursor_stream(self, cursor, block_rows: int = 0) -> TransportStats:
        """Charge a streaming :class:`~repro.api.cursor.Cursor`'s
        delivery: one request, then one message per ``fetchmany``
        block — the paper's "shipped result blocks" discipline applied
        to the session API's cursors.

        ``block_rows`` defaults to the cursor's ``arraysize``.  The
        cursor must hold an un-fetched result set; it is drained.
        """
        stats = TransportStats(mode="cursor-block")
        stats.messages += 1  # the single request
        size = block_rows or cursor.arraysize
        while True:
            block = cursor.fetchmany(size)
            if not block:
                break
            stats.messages += 1
            stats.tuples += len(block)
            stats.payload_bytes += sum(tuple_size(row) for row in block)
        stats.messages += 1  # end-of-stream reply
        return stats

    def update_round_trips(self, entries) -> TransportStats:
        """Write-through CRUD: one request + one ack per operation —
        the up-direction analogue of tuple-at-a-time."""
        stats = TransportStats(mode="update-round-trips")
        for entry in entries:
            stats.updates_shipped += 1
            stats.messages += 2  # request + acknowledgement
            stats.payload_bytes_up += entry_size(entry)
        return stats

    def update_block_shipping(self, entries,
                              block_bytes: int = 32 * 1024
                              ) -> TransportStats:
        """Deferred write-back: the whole update log ships in few
        large messages, answered by one acknowledgement."""
        stats = TransportStats(mode="update-block")
        current = 0
        open_block = False
        for entry in entries:
            size = entry_size(entry)
            if not open_block or current + size > block_bytes:
                stats.messages += 1
                open_block = True
                current = 0
            current += size
            stats.updates_shipped += 1
            stats.payload_bytes_up += size
        stats.messages += 1  # the acknowledgement (or empty commit)
        return stats

    def page_shipping(self, result: COResult,
                      page_fill: float = 0.5) -> TransportStats:
        """OODB-style page server: whole pages cross; only ``page_fill``
        of each page is data the client asked for."""
        stats = TransportStats(mode="page")
        stats.messages += 1
        wanted = 0
        for tagged in result.wire_tuples():
            stats.tuples += 1
            wanted += tuple_size(tagged.values) + 6
        pages = max(1, round(wanted / (PAGE_SIZE * page_fill)))
        stats.messages += pages
        stats.payload_bytes = pages * PAGE_SIZE
        return stats
