"""Public API: engine/session surface, database facade, transport
simulation, object gateway."""

from repro.api.cursor import Cursor
from repro.api.database import Database
from repro.api.engine import Engine
from repro.api.gateway import ObjectGateway, ObjectView
from repro.api.prepared import PreparedStatement
from repro.api.session import Session
from repro.api.transport import (TransportSimulator, TransportStats,
                                 tuple_size, value_size)

__all__ = [
    "Engine", "Session", "Cursor",
    "Database", "PreparedStatement",
    "ObjectGateway", "ObjectView",
    "TransportSimulator", "TransportStats", "tuple_size", "value_size",
]
