"""Public API: database facade, transport simulation, object gateway."""

from repro.api.database import Database
from repro.api.gateway import ObjectGateway, ObjectView
from repro.api.transport import (TransportSimulator, TransportStats,
                                 tuple_size, value_size)

__all__ = [
    "Database",
    "ObjectGateway", "ObjectView",
    "TransportSimulator", "TransportStats", "tuple_size", "value_size",
]
