"""DB-API-2.0-flavored cursors streaming from the batch executor.

The paper's client interface is cursor-shaped (Sect. 2: "the
application program ... fetches the tuples of the CO through a set of
cursors"), and its transport argument (Sect. 5.3) is about shipping
result *blocks* rather than tuples.  A :class:`Cursor` is exactly
that: ``execute`` compiles the statement but materializes nothing;
each ``fetchone``/``fetchmany``/``fetchall`` pulls batches from the
executor on demand, so the first row of a million-row scan costs one
batch, not a full result.

Streaming reads are *read-committed per pull*: each fetch observes the
committed database state at that moment (plus the session's own open
transaction).  Operators that began scanning under one state keep
their iteration position; rows already delivered are not retracted.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import InterfaceError
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session


#: DB-API description entry: (name, type_code, display_size,
#: internal_size, precision, scale, null_ok) — only the name is known.
def _describe(columns: list[str]) -> list[tuple]:
    return [(name, None, None, None, None, None, None)
            for name in columns]


class Cursor:
    """One statement-at-a-time handle over a session.

    Supports the DB-API core: ``execute``/``executemany``,
    ``fetchone``/``fetchmany``/``fetchall``, ``description``,
    ``rowcount``, ``arraysize``, iteration, ``close()`` and the
    context-manager protocol.
    """

    def __init__(self, session: "Session"):
        self.session = session
        self.arraysize = session.arraysize
        self._closed = False
        self._stream = None
        self._exhausted = False
        self._buffer: deque = deque()
        self._description: Optional[list[tuple]] = None
        self._rowcount = -1
        self._delivered = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._discard()
        self._closed = True
        self.session._forget_cursor(self)

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("operation on a closed cursor")
        self.session._check_open()

    def __enter__(self) -> "Cursor":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _discard(self) -> None:
        if self._stream is not None:
            self._stream.close()
        self._stream = None
        self._exhausted = False
        self._buffer.clear()
        self._description = None
        self._rowcount = -1
        self._delivered = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, operation: str, params=None) -> "Cursor":
        """Run one statement; SELECTs open a lazy result stream."""
        self._check_open()
        self._discard()
        statement = self.session._parse(operation)
        if isinstance(statement, ast.SelectStatement):
            self._stream = self.session._stream_select(statement, params)
            self._description = _describe(self._stream.columns)
            return self
        if isinstance(statement, ast.XNFQuery):
            raise InterfaceError(
                "cursors deliver homogeneous row streams; run XNF "
                "queries through Session.xnf() / open_cache() instead"
            )
        result = self.session.execute_statement(statement, params=params)
        self._rowcount = result if isinstance(result, int) else -1
        return self

    def executemany(self, operation: str, seq_of_params) -> "Cursor":
        """Run a DML statement once per parameter set.

        ``rowcount`` accumulates across the whole sequence.
        """
        self._check_open()
        statement = self.session._parse(operation)
        if isinstance(statement, (ast.SelectStatement, ast.XNFQuery)):
            raise InterfaceError(
                "executemany() is for DML; use execute() for queries")
        self._discard()
        total = 0
        counted = False
        for params in seq_of_params:
            result = self.session.execute_statement(statement,
                                                    params=params)
            if isinstance(result, int):
                total += result
                counted = True
        self._rowcount = total if counted else -1
        return self

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[list[tuple]]:
        return self._description

    @property
    def rowcount(self) -> int:
        """DML: affected rows.  SELECT: -1 until the stream is
        exhausted, then the number of rows delivered."""
        return self._rowcount

    @property
    def counters(self) -> Optional[dict]:
        """The live execution counters of the current result stream
        (rows scanned/joined, index lookups, ...) — observability for
        streaming behavior."""
        if self._stream is None:
            return None
        return dict(self._stream.ctx.counters)

    def _require_result(self) -> None:
        if self._description is None:
            raise InterfaceError(
                "no result set; execute a SELECT on this cursor first")

    def _refill(self) -> bool:
        """Pull the next batch into the buffer; False at end of stream."""
        if self._stream is None or self._exhausted:
            return False
        batch = self.session._next_batch(self._stream)
        if batch is None:
            # The stream is kept (its counters remain readable);
            # everything is known now: rows already delivered plus the
            # buffered tail that will be.
            self._exhausted = True
            self._rowcount = self._delivered + len(self._buffer)
            return False
        self._buffer.extend(batch)
        return True

    def fetchone(self) -> Optional[tuple]:
        self._check_open()
        self._require_result()
        while not self._buffer:
            if not self._refill():
                return None
        self._delivered += 1
        return self._buffer.popleft()

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_open()
        self._require_result()
        size = self.arraysize if size is None else size
        if size <= 0:
            return []
        while len(self._buffer) < size:
            if not self._refill():
                break
        out = [self._buffer.popleft()
               for _ in range(min(size, len(self._buffer)))]
        self._delivered += len(out)
        return out

    def fetchall(self) -> list[tuple]:
        self._check_open()
        self._require_result()
        while self._refill():
            pass
        out = list(self._buffer)
        self._buffer.clear()
        self._delivered += len(out)
        return out

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"<Cursor of {self.session.label} ({state})>"
