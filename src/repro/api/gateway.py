"""An Object/SQL gateway over XNF views (Sect. 6, [33]).

"We can use an XNF DBMS ... to provide server services to an
object-oriented programming system running on the application site.
This idea was realized in the prototype system called 'Object/SQL
Gateway' ... providing object-oriented access to data residing in a
relational DBMS."

:class:`ObjectGateway` opens CO views as object graphs: generated
classes (via :mod:`repro.cache.objects`), extents, navigation, local
updates, and a ``commit`` that writes changes back through the view's
updatability analysis — the Persistence-DBMS/ObjectStore bridging role
the paper's introduction motivates.

The gateway rides the session surface: construct it over a
:class:`~repro.api.session.Session` (one application client), an
:class:`~repro.api.engine.Engine` (a private session is opened), or a
legacy :class:`~repro.api.database.Database` (its default session is
used).  View commits apply through that session's transaction scope.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.api.database import Database
from repro.api.engine import Engine
from repro.api.session import Session
from repro.errors import CacheError
from repro.cache.manager import XNFCache
from repro.cache.objects import bind_classes


def _session_of(target: Union[Session, Engine, Database]
                ) -> tuple[Session, bool]:
    """Resolve to a session, reporting whether we opened it (and thus
    own closing it)."""
    if isinstance(target, Session):
        return target, False
    if isinstance(target, Engine):
        return target.connect(label="gateway"), True
    if isinstance(target, Database):
        return target.session, False
    raise TypeError(
        f"ObjectGateway expects a Session, Engine or Database, "
        f"not {type(target).__name__}"
    )


class ObjectView:
    """One opened CO view: classes, extents, and a unit of work."""

    def __init__(self, session: Union[Session, Engine, Database],
                 source: str, write_through: bool = False):
        self.session, self._owns_session = _session_of(session)
        self.source = source
        self.write_through = write_through
        self.cache: XNFCache = self.session.open_cache(
            source, write_through=write_through)
        self.classes = bind_classes(self.cache)

    def close(self) -> None:
        """Release the view (closes its session if this view opened
        one, i.e. it was constructed over a bare Engine)."""
        if self._owns_session:
            self.session.close()

    # -- schema-ish access -------------------------------------------------
    def __getattr__(self, name: str):
        classes = object.__getattribute__(self, "classes")
        cls = classes.get(name.upper())
        if cls is None:
            raise AttributeError(name)
        return cls

    def extent(self, component: str):
        cls = self.classes.get(component.upper())
        if cls is None:
            raise CacheError(f"no component {component!r} in this view")
        return cls.extent

    # -- unit of work --------------------------------------------------
    @property
    def dirty(self) -> bool:
        return self.cache.dirty

    def commit(self) -> int:
        """Write local changes back to the database, atomically."""
        return self.cache.write_back()

    def refresh(self) -> None:
        """Re-extract the view (discarding local state)."""
        self.cache = self.session.open_cache(
            self.source, write_through=self.write_through)
        self.classes = bind_classes(self.cache)


class ObjectGateway:
    """Factory of object views over one session.

    Constructed over a bare ``Engine`` it opens a private session; call
    :meth:`close` (or use it as a context manager) to release it.
    """

    def __init__(self, session: Union[Session, Engine, Database]):
        self.session, self._owns_session = _session_of(session)
        self._views: dict[str, ObjectView] = {}

    @property
    def database(self):  # pragma: no cover - legacy accessor
        return self.session

    def open(self, source: str, name: Optional[str] = None,
             write_through: bool = False) -> ObjectView:
        """Open a CO view.  With ``write_through=True`` every object
        mutation is put back to the base tables immediately (full CRUD
        surface); the default defers changes until ``commit()``."""
        view = ObjectView(self.session, source,
                          write_through=write_through)
        self._views[(name or source).upper()] = view
        return view

    def view(self, name: str) -> ObjectView:
        try:
            return self._views[name.upper()]
        except KeyError:
            raise CacheError(f"no open object view {name!r}") from None

    def close(self) -> None:
        """Drop all open views; close the private session if the
        gateway opened one."""
        self._views.clear()
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "ObjectGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
