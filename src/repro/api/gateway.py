"""An Object/SQL gateway over XNF views (Sect. 6, [33]).

"We can use an XNF DBMS ... to provide server services to an
object-oriented programming system running on the application site.
This idea was realized in the prototype system called 'Object/SQL
Gateway' ... providing object-oriented access to data residing in a
relational DBMS."

:class:`ObjectGateway` opens CO views as object graphs: generated
classes (via :mod:`repro.cache.objects`), extents, navigation, local
updates, and a ``commit`` that writes changes back through the view's
updatability analysis — the Persistence-DBMS/ObjectStore bridging role
the paper's introduction motivates.
"""

from __future__ import annotations

from typing import Optional

from repro.api.database import Database
from repro.errors import CacheError
from repro.cache.manager import XNFCache
from repro.cache.objects import bind_classes


class ObjectView:
    """One opened CO view: classes, extents, and a unit of work."""

    def __init__(self, database: Database, source: str):
        self.database = database
        self.source = source
        self.cache: XNFCache = database.open_cache(source)
        self.classes = bind_classes(self.cache)

    # -- schema-ish access -------------------------------------------------
    def __getattr__(self, name: str):
        classes = object.__getattribute__(self, "classes")
        cls = classes.get(name.upper())
        if cls is None:
            raise AttributeError(name)
        return cls

    def extent(self, component: str):
        cls = self.classes.get(component.upper())
        if cls is None:
            raise CacheError(f"no component {component!r} in this view")
        return cls.extent

    # -- unit of work --------------------------------------------------
    @property
    def dirty(self) -> bool:
        return self.cache.dirty

    def commit(self) -> int:
        """Write local changes back to the database, atomically."""
        return self.cache.write_back()

    def refresh(self) -> None:
        """Re-extract the view (discarding local state)."""
        self.cache = self.database.open_cache(self.source)
        self.classes = bind_classes(self.cache)


class ObjectGateway:
    """Factory of object views over one database."""

    def __init__(self, database: Database):
        self.database = database
        self._views: dict[str, ObjectView] = {}

    def open(self, source: str, name: Optional[str] = None) -> ObjectView:
        view = ObjectView(self.database, source)
        self._views[(name or source).upper()] = view
        return view

    def view(self, name: str) -> ObjectView:
        try:
            return self._views[name.upper()]
        except KeyError:
            raise CacheError(f"no open object view {name!r}") from None
