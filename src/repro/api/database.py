"""The public database facade.

One object wiring the whole Fig. 2 pipeline together: parse ->
QGM build -> (XNF semantic rewrite ->) NF rewrite -> plan -> execute,
plus DDL, DML (atomic), transactions, XNF views, CO caches, and EXPLAIN.

    db = Database()
    db.execute("CREATE TABLE DEPT (DNO INT PRIMARY KEY, LOC VARCHAR)")
    db.execute("INSERT INTO DEPT VALUES (1, 'ARC')")
    db.execute("CREATE VIEW deps AS OUT OF ... TAKE *")
    co = db.xnf("deps")              # a materialized COResult
    cache = db.open_cache("deps")    # a navigable client cache
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Union

from repro.api.prepared import PreparedStatement
from repro.compiler.pipeline import CompilationTrace
from repro.errors import CatalogError, SemanticError
from repro.executor.dml import DMLExecutor
from repro.executor.plan_cache import CacheInfo
from repro.executor.runtime import (PipelineOptions, QueryPipeline,
                                    QueryResult)
from repro.cache.manager import XNFCache
from repro.cache.matview import (MaterializedView,
                                 MaterializedViewRegistry)
from repro.qgm.dump import dump_graph
from repro.qgm.model import Box
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog, ViewDefinition
from repro.storage.stats import StatisticsManager
from repro.storage.table import Table
from repro.storage.transactions import TransactionManager
from repro.storage.types import Column, type_from_name
from repro.xnf.naive import NaiveXNFEvaluator
from repro.xnf.result import COResult, XNFExecutable
from repro.xnf.translate import XNFOptions, XNFTranslator

ExecuteResult = Union[QueryResult, COResult, int, None]


class Database:
    """An embedded XNF-capable relational database."""

    def __init__(self, pipeline_options: Optional[PipelineOptions] = None,
                 xnf_options: Optional[XNFOptions] = None):
        self.catalog = Catalog()
        # Subscribed: DML deltas invalidate statistics (and, on material
        # drift, the plan-cache stats epoch) automatically.
        self.stats = StatisticsManager(self.catalog, subscribe=True)
        self.transactions = TransactionManager(self.catalog)
        self.pipeline_options = pipeline_options or PipelineOptions()
        self.xnf_options = xnf_options or XNFOptions()
        self.pipeline = QueryPipeline(
            self.catalog, self.stats, self.pipeline_options,
            xnf_component_resolver=self._resolve_xnf_component,
        )
        self.dml = DMLExecutor(self.pipeline)
        self.matviews = MaterializedViewRegistry(
            self.catalog, self._matview_executable)
        self.catalog.delta_listeners.append(self._on_table_delta)
        # Deltas emitted inside a rolled-back transaction were undone;
        # eagerly maintained views must recompute from the base tables.
        self.transactions.rollback_listeners.append(self._on_rollback)
        # Statement-text cache above the plan cache: exact-text repeats
        # skip the lexer/parser entirely.  Parsing is schema-independent
        # (ASTs are unresolved), so entries never need invalidation;
        # the LRU bound only caps memory.  Disabled with the plan cache
        # so `plan_cache_size=0` measures true full-pipeline cost.
        self._parse_cache: OrderedDict[str, ast.Statement] = OrderedDict()
        self._parse_cache_capacity = \
            2 * max(self.pipeline_options.plan_cache_size, 0)

    def _parse(self, sql: str) -> ast.Statement:
        if self._parse_cache_capacity <= 0:
            return parse_statement(sql)
        statement = self._parse_cache.get(sql)
        if statement is not None:
            self._parse_cache.move_to_end(sql)
            return statement
        statement = parse_statement(sql)
        self._parse_cache[sql] = statement
        while len(self._parse_cache) > self._parse_cache_capacity:
            self._parse_cache.popitem(last=False)
        return statement

    def _on_table_delta(self, delta) -> None:
        if self.transactions.in_transaction:
            self.transactions.current.delta_count += 1
        self.matviews.on_table_delta(delta)

    def _on_rollback(self, _txn) -> None:
        # The transaction manager only calls this when published deltas
        # were actually undone (full rollback or savepoint crossing an
        # emission).
        self.matviews.invalidate_all()

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params=None) -> ExecuteResult:
        """Run one statement of any kind; return type depends on it.

        ``params`` binds ``?`` (sequence) or ``:name`` (mapping)
        markers for SELECT and DML statements.
        """
        statement = self._parse(sql)
        return self.execute_statement(statement, params=params)

    def execute_statement(self, statement: ast.Statement,
                          params=None) -> ExecuteResult:
        if isinstance(statement, ast.SelectStatement):
            return self.pipeline.run_select(statement, params=params)
        if isinstance(statement, ast.XNFQuery):
            return self.run_xnf_query(statement)
        if isinstance(statement, ast.InsertStatement):
            return self.transactions.run_atomic(
                lambda: self.dml.insert(statement, params))
        if isinstance(statement, ast.UpdateStatement):
            return self.transactions.run_atomic(
                lambda: self.dml.update(statement, params))
        if isinstance(statement, ast.DeleteStatement):
            return self.transactions.run_atomic(
                lambda: self.dml.delete(statement, params))
        if isinstance(statement, ast.AnalyzeStatement):
            return self.analyze(statement.table)
        if isinstance(statement, ast.CreateTableStatement):
            self._create_table(statement)
            return None
        if isinstance(statement, ast.CreateIndexStatement):
            self.catalog.create_index(statement.name, statement.table,
                                      list(statement.columns),
                                      unique=statement.unique)
            return None
        if isinstance(statement, ast.CreateViewStatement):
            self._create_view(statement)
            return None
        if isinstance(statement, ast.CreateMaterializedViewStatement):
            self.create_materialized_view(statement.name, statement.query,
                                          policy=statement.policy)
            return None
        if isinstance(statement, ast.RefreshStatement):
            return self.refresh_materialized_view(statement.name,
                                                  full=statement.full)
        if isinstance(statement, ast.DropStatement):
            self._drop(statement)
            return None
        raise SemanticError(f"cannot execute {type(statement).__name__}")

    def query(self, sql: str, params=None) -> QueryResult:
        """Run a SELECT and return its result.

        Repeated queries hit the auto-parameterizing plan cache: two
        calls differing only in literal constants (or bound parameter
        values) share one compiled plan.
        """
        statement = self._parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise SemanticError("query() expects a SELECT statement")
        return self.pipeline.run_select(statement, params=params)

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse (and pre-parameterize) a statement for repeated runs.

        The returned object's :meth:`~PreparedStatement.run` binds
        parameter values and executes through the plan cache, skipping
        parse *and* compile on every execution after the first.
        """
        return PreparedStatement(self, sql, parse_statement(sql))

    def analyze(self, table: Optional[str] = None) -> int:
        """Recompute optimizer statistics (the ``ANALYZE`` statement).

        Returns the number of tables analyzed.  Advances the statistics
        epoch, so cached plans recompile against the new distributions.
        """
        return self.stats.analyze(table)

    def execute_script(self, sql: str) -> list[ExecuteResult]:
        from repro.sql.parser import parse_script
        return [self.execute_statement(s) for s in parse_script(sql)]

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create_table(self, statement: ast.CreateTableStatement) -> None:
        pk = {c.upper() for c in statement.primary_key}
        columns = []
        for definition in statement.columns:
            is_pk = definition.primary_key or definition.name.upper() in pk
            columns.append(Column(
                name=definition.name.upper(),
                data_type=type_from_name(definition.type_name,
                                         definition.type_length),
                nullable=definition.nullable and not is_pk,
                primary_key=is_pk,
            ))
        self.catalog.create_table(statement.name, columns)
        for number, fk in enumerate(statement.foreign_keys):
            name = fk.name or f"FK_{statement.name}_{number}".upper()
            self.catalog.add_foreign_key(
                name, statement.name, list(fk.columns),
                fk.parent_table, list(fk.parent_columns),
            )

    def _create_view(self, statement: ast.CreateViewStatement) -> None:
        view = ViewDefinition(
            name=statement.name,
            definition=statement.query,
            text="",
            is_xnf=statement.is_xnf,
            column_names=tuple(c.upper() for c in statement.column_names),
        )
        # Validate eagerly: building the QGM catches bad references.
        if not statement.is_xnf:
            self.pipeline.compiler.build_select(statement.query)
        else:
            self.pipeline.compiler.build_xnf(statement.query,
                                             view_name=statement.name)
        self.catalog.create_view(view)

    def _drop(self, statement: ast.DropStatement) -> None:
        if statement.kind == "TABLE":
            dependent = [view.name for view in self.matviews.views()
                         if statement.name.upper() in view.base_tables]
            if dependent:
                raise CatalogError(
                    f"cannot drop table {statement.name!r}: materialized "
                    f"views {dependent} are defined over it"
                )
            self.catalog.drop_table(statement.name)
            self.stats.invalidate(statement.name)
        elif statement.kind == "VIEW":
            if self.catalog.has_view(statement.name) \
                    and self.catalog.view(statement.name).materialized:
                raise CatalogError(
                    f"{statement.name!r} is a materialized view; use "
                    f"DROP MATERIALIZED VIEW"
                )
            self.catalog.drop_view(statement.name)
        elif statement.kind == "MATERIALIZED VIEW":
            self.matviews.drop(statement.name)
            self.catalog.drop_view(statement.name)
        elif statement.kind == "INDEX":
            self.catalog.drop_index(statement.name)
        else:  # pragma: no cover - parser restricts kinds
            raise SemanticError(f"cannot drop {statement.kind}")

    # ------------------------------------------------------------------
    # XNF entry points
    # ------------------------------------------------------------------
    def xnf_executable(self, source: Union[str, ast.XNFQuery],
                       xnf_options: Optional[XNFOptions] = None,
                       ) -> XNFExecutable:
        """Compile an XNF query (text, view name, or AST) to plans."""
        query, view_name = self._xnf_query_of(source)
        return self._compile_xnf(query, view_name, xnf_options)

    def _compile_xnf(self, query: ast.XNFQuery, view_name: str,
                     xnf_options: Optional[XNFOptions] = None
                     ) -> XNFExecutable:
        """Compile an XNF query, read through the plan cache.

        The XNF read path is hot for gateway navigation: repeated
        ``db.xnf()`` / ``open_cache()`` calls over the same view reuse
        the translated graph and physical plans.  Entries invalidate
        with the catalog schema version (view/DDL changes) and the
        statistics epoch like any cached plan.
        """
        options = xnf_options or self.xnf_options
        key = ("xnf", query, view_name, options.output_optimization,
               options.apply_nf_rewrite,
               self.pipeline._options_signature())
        return self.pipeline.cached_compile(
            key,
            lambda: self._compile_xnf_fresh(query, view_name, options),
            tables_of=lambda executable: self.pipeline.graph_tables(
                executable.translated.graph),
        )

    def _compile_xnf_fresh(self, query: ast.XNFQuery, view_name: str,
                           options: XNFOptions) -> XNFExecutable:
        graph = self.pipeline.compiler.build_xnf(query,
                                                 view_name=view_name)
        translator = XNFTranslator(self.catalog, options,
                                   compiler=self.pipeline.compiler)
        translated = translator.translate(graph)
        return XNFExecutable(translated, self.catalog, self.stats,
                             self.pipeline_options.planner)

    def run_xnf_query(self, source: Union[str, ast.XNFQuery]) -> COResult:
        query, view_name = self._xnf_query_of(source)
        # Read-through: a query structurally equal to a registered
        # materialized view's definition is served from the
        # materialization (refreshed per its staleness policy).
        materialized = self.matviews.lookup_query(query)
        if materialized is not None:
            return materialized.read()
        return self._compile_xnf(query, view_name).run()

    def xnf(self, source: Union[str, ast.XNFQuery]) -> COResult:
        """Materialize a CO view (alias of :meth:`run_xnf_query`)."""
        return self.run_xnf_query(source)

    def xnf_naive(self, source: Union[str, ast.XNFQuery]) -> COResult:
        """Evaluate with the reference (unoptimized) evaluator."""
        query, view_name = self._xnf_query_of(source)
        graph = self.pipeline.compiler.build_xnf(query,
                                                 view_name=view_name)
        return NaiveXNFEvaluator(self.catalog, self.stats).evaluate(graph)

    # ------------------------------------------------------------------
    # Materialized XNF views (delta-maintained; repro.cache.matview)
    # ------------------------------------------------------------------
    def _matview_executable(self, query: ast.XNFQuery) -> XNFExecutable:
        """Compile a materialized view's definition.

        The output optimization is disabled so the stored representation
        always carries explicit connection streams — the canonical form
        the delta engine maintains.
        """
        options = XNFOptions(
            output_optimization=False,
            apply_nf_rewrite=self.xnf_options.apply_nf_rewrite,
        )
        return self.xnf_executable(query, xnf_options=options)

    def create_materialized_view(self, name: str,
                                 source: Union[str, ast.XNFQuery],
                                 policy: str = "eager"
                                 ) -> MaterializedView:
        """Register, evaluate and store a materialized CO view.

        The view is also entered in the catalog (so its components
        compose into SQL like any XNF view's).  ``policy`` is 'eager'
        or 'deferred'.
        """
        query, _view_name = self._xnf_query_of(source)
        self.catalog._check_fresh(name)
        view = self.matviews.create(name, query, policy=policy)
        self.catalog.create_view(ViewDefinition(
            name=name, definition=query, text="", is_xnf=True,
            materialized=True,
        ))
        return view

    def refresh_materialized_view(self, name: str,
                                  full: bool = False) -> COResult:
        """Apply queued deltas (or recompute with ``full=True``)."""
        return self.matviews.get(name).refresh(full=full)

    def matview(self, name: str) -> COResult:
        """Read a materialized view per its staleness policy."""
        return self.matviews.get(name).read()

    def open_cache(self, source: Union[str, ast.XNFQuery]) -> XNFCache:
        """Evaluate a CO view into a navigable client-side cache."""
        executable = self.xnf_executable(source)
        return XNFCache.evaluate(executable, catalog=self.catalog,
                                 transactions=self.transactions)

    def _xnf_query_of(self, source: Union[str, ast.XNFQuery]
                      ) -> tuple[ast.XNFQuery, str]:
        if isinstance(source, ast.XNFQuery):
            return source, "XNF"
        text = source.strip()
        if " " not in text and self.catalog.has_view(text):
            view = self.catalog.view(text)
            if not view.is_xnf:
                raise SemanticError(f"view {text!r} is not an XNF view")
            return view.definition, view.name
        statement = parse_statement(source)
        if not isinstance(statement, ast.XNFQuery):
            raise SemanticError("expected an XNF query (OUT OF ... TAKE)")
        return statement, "XNF"

    def _resolve_xnf_component(self, view_name: str,
                               component: str) -> Box:
        """FROM-clause hook: ``viewname.component`` resolves to the
        component's reachability-restricted derivation — XNF's closure
        under composition (Sect. 2)."""
        view = self.catalog.view(view_name)
        if not view.is_xnf:
            raise SemanticError(f"{view_name!r} is not an XNF view")
        graph = self.pipeline.compiler.build_xnf(view.definition,
                                                 view_name=view.name)
        translated = XNFTranslator(
            self.catalog, self.xnf_options,
            compiler=self.pipeline.compiler).translate(graph)
        key = component.upper()
        info = translated.components.get(key)
        if info is None:
            raise CatalogError(
                f"XNF view {view_name!r} has no component {component!r}"
            )
        if translated.recursive:
            raise SemanticError(
                "components of recursive XNF views cannot be composed "
                "into other queries"
            )
        return info.final_box

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, sql: str, rewrite_trace: bool = False) -> str:
        """QGM graph, physical plan, and plan-cache status for a SELECT
        or XNF query.

        The plan-cache section reports whether this compile hit or
        missed, the normalized statement fingerprint, and — on a miss —
        why the cached entry (if any) was invalidated.

        With ``rewrite_trace=True`` (SELECT only) the output also
        carries the compiler pipeline's per-stage QGM dumps and the
        ordered list of rewrite rules that fired; the compile bypasses
        the plan cache, since a cache hit has no rewrite to trace.
        """
        statement = parse_statement(sql)
        if isinstance(statement, ast.SelectStatement):
            trace = None
            if rewrite_trace:
                trace = CompilationTrace()
                compiled = self.pipeline.compile_select(statement,
                                                        trace=trace)
                self.pipeline.plan_cache.last_info = CacheInfo(
                    status="bypass", reason="rewrite trace requested")
            else:
                compiled, _bindings = self.pipeline.compile_select_cached(
                    statement)
            parts = ["-- QGM (after rewrite) --",
                     dump_graph(compiled.graph),
                     "-- plan --", compiled.plan.explain()]
            if compiled.rewrite_context is not None:
                parts.append(
                    f"-- rewrites: {compiled.rewrite_context.applications}"
                )
            if trace is not None:
                parts.append(trace.render())
            parts.append(self._explain_cache_section())
            return "\n".join(parts)
        if isinstance(statement, ast.XNFQuery):
            executable = self.xnf_executable(statement)
            return "\n".join(["-- XNF QGM (after semantic rewrite) --",
                              dump_graph(executable.translated.graph),
                              "-- plan --", executable.explain(),
                              self._explain_cache_section()])
        raise SemanticError("EXPLAIN supports SELECT and XNF queries")

    def _explain_cache_section(self) -> str:
        info = self.pipeline.plan_cache.last_info
        lines = ["-- plan cache --", f"status: {info.status}"]
        if info.fingerprint:
            lines.append(f"fingerprint: {info.fingerprint}")
        if info.reason:
            lines.append(f"reason: {info.reason}")
        if info.status != "bypass":
            lines.append(f"schema_version: {info.schema_version}, "
                         f"stats_epoch: {info.stats_epoch}")
        return "\n".join(lines)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> None:
        self.transactions.begin()

    def commit(self) -> None:
        self.transactions.commit()

    def rollback(self) -> None:
        self.transactions.rollback()
