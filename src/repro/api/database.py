"""The public database facade — one engine plus one default session.

Historically this object *was* the whole public surface: a single
client with one implicit transaction.  The engine/session split moved
the shared state into :class:`~repro.api.engine.Engine` and the
per-client state into :class:`~repro.api.session.Session`;
``Database`` remains as a thin back-compat facade over an engine and
its default session, so existing code keeps working unchanged:

    db = Database()
    db.execute("CREATE TABLE DEPT (DNO INT PRIMARY KEY, LOC VARCHAR)")
    db.execute("INSERT INTO DEPT VALUES (1, 'ARC')")
    db.execute("CREATE VIEW deps AS OUT OF ... TAKE *")
    co = db.xnf("deps")              # a materialized COResult
    cache = db.open_cache("deps")    # a navigable client cache

New code — and anything that needs concurrent clients, streaming
cursors, or explicit transaction scoping — should use the engine
surface directly:

    engine = db.engine               # or Engine() standalone
    with engine.connect() as session:
        with session.cursor() as cur:
            cur.execute("SELECT * FROM DEPT WHERE dno = ?", [1])
            rows = cur.fetchall()

The implicit-transaction methods (``begin``/``commit``/``rollback``)
emit :class:`DeprecationWarning`: they operate the *default session's*
transaction, which is ambiguous the moment a second session exists.
Use ``session.begin()`` (or a session context manager) instead.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from repro.api.engine import Engine
from repro.api.session import ExecuteResult, Session
from repro.errors import InterfaceError
from repro.executor.runtime import PipelineOptions, QueryResult
from repro.cache.manager import XNFCache
from repro.cache.matview import MaterializedView
from repro.sql import ast
from repro.storage.table import Table
from repro.xnf.result import COResult, XNFExecutable
from repro.xnf.translate import XNFOptions

__all__ = ["Database", "ExecuteResult"]


class Database:
    """An embedded XNF-capable relational database (facade)."""

    def __init__(self, pipeline_options: Optional[PipelineOptions] = None,
                 xnf_options: Optional[XNFOptions] = None,
                 path: Optional[str] = None, **engine_options):
        self.engine = Engine(pipeline_options, xnf_options, path=path,
                             **engine_options)
        self.session: Session = self.engine.connect(label="default")

    # ------------------------------------------------------------------
    # Shared state (owned by the engine)
    # ------------------------------------------------------------------
    @property
    def catalog(self):
        return self.engine.catalog

    @property
    def stats(self):
        return self.engine.stats

    @property
    def transactions(self):
        return self.engine.transactions

    @property
    def pipeline(self):
        return self.engine.pipeline

    @property
    def pipeline_options(self) -> PipelineOptions:
        return self.engine.pipeline_options

    @property
    def xnf_options(self) -> XNFOptions:
        return self.engine.xnf_options

    @property
    def dml(self):
        return self.engine.dml

    @property
    def matviews(self):
        return self.engine.matviews

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def connect(self, **options) -> Session:
        """Open an additional session on this database's engine."""
        return self.engine.connect(**options)

    def close(self) -> None:
        """Close the engine (and with it every session)."""
        self.engine.close()

    @property
    def closed(self) -> bool:
        return self.engine.closed

    def __enter__(self) -> "Database":
        if self.closed:
            raise InterfaceError("operation on a closed engine")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def cursor(self):
        """A streaming cursor over the default session."""
        return self.session.cursor()

    # ------------------------------------------------------------------
    # Statement execution (default session)
    # ------------------------------------------------------------------
    def execute(self, sql: str, params=None) -> ExecuteResult:
        """Run one statement of any kind; return type depends on it."""
        return self.session.execute(sql, params=params)

    def execute_statement(self, statement: ast.Statement,
                          params=None) -> ExecuteResult:
        return self.session.execute_statement(statement, params=params)

    def query(self, sql: str, params=None) -> QueryResult:
        """Run a SELECT and return its result (plan-cache backed)."""
        return self.session.query(sql, params=params)

    def prepare(self, sql: str):
        """Parse (and pre-parameterize) a statement for repeated runs."""
        return self.session.prepare(sql)

    def analyze(self, table: Optional[str] = None) -> int:
        """Recompute optimizer statistics (the ``ANALYZE`` statement)."""
        return self.session.analyze(table)

    def repartition(self, table_name: str, partitioning) -> None:
        """Rebuild a table under a new partitioning scheme (or None to
        un-partition); see :meth:`repro.api.engine.Engine.repartition`."""
        self.engine.repartition(table_name, partitioning)

    def execute_script(self, sql: str) -> list[ExecuteResult]:
        """Run a multi-statement script atomically (all-or-nothing for
        table data; a mid-script failure rolls earlier statements
        back)."""
        return self.session.execute_script(sql)

    # ------------------------------------------------------------------
    # XNF entry points (default session)
    # ------------------------------------------------------------------
    def xnf_executable(self, source: Union[str, ast.XNFQuery],
                       xnf_options: Optional[XNFOptions] = None,
                       ) -> XNFExecutable:
        """Compile an XNF query (text, view name, or AST) to plans."""
        return self.session.xnf_executable(source,
                                           xnf_options=xnf_options)

    def run_xnf_query(self, source: Union[str, ast.XNFQuery]) -> COResult:
        return self.session.run_xnf_query(source)

    def xnf(self, source: Union[str, ast.XNFQuery]) -> COResult:
        """Materialize a CO view (alias of :meth:`run_xnf_query`)."""
        return self.session.xnf(source)

    def xnf_naive(self, source: Union[str, ast.XNFQuery]) -> COResult:
        """Evaluate with the reference (unoptimized) evaluator."""
        return self.session.xnf_naive(source)

    def open_cache(self, source: Union[str, ast.XNFQuery],
                   write_through: bool = False) -> XNFCache:
        """Evaluate a CO view into a navigable client-side cache."""
        return self.session.open_cache(source,
                                       write_through=write_through)

    @property
    def objects(self):
        """The object gateway over the default session (lazy)."""
        gateway = getattr(self, "_objects", None)
        if gateway is None:
            from repro.api.gateway import ObjectGateway
            gateway = self._objects = ObjectGateway(self.session)
        return gateway

    # ------------------------------------------------------------------
    # Materialized XNF views (default session)
    # ------------------------------------------------------------------
    def create_materialized_view(self, name: str,
                                 source: Union[str, ast.XNFQuery],
                                 policy: str = "eager"
                                 ) -> MaterializedView:
        return self.session.create_materialized_view(name, source,
                                                     policy=policy)

    def refresh_materialized_view(self, name: str,
                                  full: bool = False) -> COResult:
        return self.session.refresh_materialized_view(name, full=full)

    def matview(self, name: str) -> COResult:
        """Read a materialized view per its staleness policy."""
        return self.session.matview(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, sql: str, rewrite_trace: bool = False) -> str:
        """QGM graph, physical plan, and plan-cache status for a SELECT
        or XNF query.

        The plan-cache section reports whether this compile hit or
        missed, the normalized statement fingerprint, and — on a miss —
        why the cached entry (if any) was invalidated.

        With ``rewrite_trace=True`` (SELECT only) the output also
        carries the compiler pipeline's per-stage QGM dumps and the
        ordered list of rewrite rules that fired; the compile bypasses
        the plan cache, since a cache hit has no rewrite to trace.
        """
        return self.session.explain(sql, rewrite_trace=rewrite_trace)

    def table(self, name: str) -> Table:
        return self.session.table(name)

    # ------------------------------------------------------------------
    # Transactions (deprecated: implicitly the default session's)
    # ------------------------------------------------------------------
    def _warn_implicit(self, method: str) -> None:
        warnings.warn(
            f"Database.{method}() drives the default session's "
            f"transaction implicitly; use engine.connect() and "
            f"session.{method}() for explicit per-client scoping",
            DeprecationWarning, stacklevel=3,
        )

    def begin(self) -> None:
        self._warn_implicit("begin")
        self.session.begin()

    def commit(self) -> None:
        self._warn_implicit("commit")
        self.session.commit()

    def rollback(self) -> None:
        self._warn_implicit("rollback")
        self.session.rollback()
