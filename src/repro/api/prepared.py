"""Prepared statements: parse once, execute many.

``session.prepare(sql)`` (or the facade's ``db.prepare``) runs the
front half of the pipeline (lexing, parsing, and — for SELECTs —
literal lifting) exactly once and returns a :class:`PreparedStatement`
bound to that session.  Each :meth:`~PreparedStatement.run` binds
fresh parameter values and goes through the engine's shared plan
cache, so the compile stages (QGM build, rewrite, plan optimization)
are also skipped on every execution after the first.

Every ``run`` re-validates the handle against the catalog's
``schema_version``: DDL between executions transparently recompiles,
and a handle whose referenced tables or views were *dropped* raises a
descriptive :class:`~repro.errors.CatalogError` naming the missing
object and the statement — never executing a stale plan.

    stmt = session.prepare("SELECT ENAME FROM EMP WHERE ENO = ?")
    for eno in hot_ids:
        rows = stmt.run([eno]).rows
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import CatalogError, SemanticError
from repro.executor.plan_cache import (ParameterizedStatement,
                                       parameterize_select)
from repro.executor.runtime import QueryResult
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session


#: Statement kinds prepare() accepts.
_PREPARABLE = (ast.SelectStatement, ast.XNFQuery, ast.InsertStatement,
               ast.UpdateStatement, ast.DeleteStatement)


def _referenced_relations(statement: ast.Statement) -> set[str]:
    """Names of catalog relations a statement reads or writes.

    ``view.component`` references report the view part; subqueries in
    FROM and set operations are walked.  (WHERE-level subqueries are
    deliberately left to the compiler — a dropped table there still
    fails at compile time; this walk exists to catch the *common* DDL
    hazards with a precise error.)
    """
    names: set[str] = set()

    def from_item(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            name = item.name
            if "." in name:
                name = name.split(".", 1)[0]
            names.add(name.upper())
        elif isinstance(item, ast.Join):
            from_item(item.left)
            from_item(item.right)
        elif isinstance(item, ast.SubqueryRef):
            select(item.query)

    def select(node: ast.SelectStatement) -> None:
        for item in node.from_items:
            from_item(item)
        if node.set_operation is not None:
            select(node.set_operation.right)

    if isinstance(statement, ast.SelectStatement):
        select(statement)
    elif isinstance(statement, (ast.InsertStatement, ast.UpdateStatement,
                                ast.DeleteStatement)):
        names.add(statement.table.upper())
        query = getattr(statement, "query", None)
        if query is not None:
            select(query)
    elif isinstance(statement, ast.XNFQuery):
        for component in statement.components:
            select(component.query)
    return names


class PreparedStatement:
    """One parsed (and, for SELECT, pre-parameterized) statement."""

    def __init__(self, session: "Session", sql: str,
                 statement: ast.Statement):
        if not isinstance(statement, _PREPARABLE):
            raise SemanticError(
                f"cannot prepare a {type(statement).__name__}; prepare "
                "supports SELECT, XNF, INSERT, UPDATE and DELETE"
            )
        self.session = session
        self.sql = sql
        self.statement = statement
        self._schema_version = session.engine.catalog.schema_version
        self._references = _referenced_relations(statement)
        self._parameterized: Optional[ParameterizedStatement] = None
        if isinstance(statement, ast.SelectStatement):
            # Lift literals once at prepare time; run() only needs to
            # hash the normalized AST for the cache probe.
            self._parameterized = parameterize_select(statement)

    @property
    def kind(self) -> str:
        return type(self.statement).__name__

    # ------------------------------------------------------------------
    def run(self, params=None):
        """Execute with the given parameter values.

        ``params`` is a sequence for positional ``?`` markers or a
        mapping for ``:name`` markers.  Returns whatever the statement
        kind returns from ``execute``: a
        :class:`~repro.executor.runtime.QueryResult` for SELECT, a
        :class:`~repro.xnf.result.COResult` for XNF, a row count for
        DML.
        """
        session = self.session
        session._check_open()
        catalog = session.engine.catalog
        if catalog.schema_version != self._schema_version:
            self._revalidate()
        statement = self.statement
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(params)
        if isinstance(statement, ast.XNFQuery):
            if params:
                raise SemanticError(
                    "XNF queries do not take parameters")
            return session.run_xnf_query(statement)
        return session.execute_statement(statement, params=params)

    __call__ = run

    def _revalidate(self) -> None:
        """Re-check referenced relations after DDL.

        Cached plans key on the schema version, so a changed schema
        always recompiles; this check exists to turn "no table named
        'X'" deep inside a recompile into an error that names the
        prepared statement and tells the caller what to do.
        """
        catalog = self.session.engine.catalog
        for name in sorted(self._references):
            if not (catalog.has_table(name) or catalog.has_view(name)):
                raise CatalogError(
                    f"prepared statement {self.sql!r} is no longer "
                    f"valid: relation {name!r} was dropped by later "
                    f"DDL; re-prepare the statement"
                )
        self._schema_version = catalog.schema_version

    def _run_select(self, params) -> QueryResult:
        session = self.session
        engine = session.engine
        pipeline = engine.pipeline
        parameterized = self._parameterized

        def run():
            if not pipeline.plan_cache.enabled:
                return pipeline.run_select(self.statement, params=params)
            compiled = pipeline.compile_parameterized(parameterized)
            ctx = compiled.plan.new_context(params)
            if parameterized.values:
                ctx.parameters.update(parameterized.bindings)
            ctx.statement = self.statement
            ctx.parallel_runtime = pipeline.parallel_runtime
            return pipeline.run_compiled(compiled, ctx)
        return engine.read(session, run)

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """EXPLAIN output for the prepared form (SELECT/XNF only)."""
        return self.session.explain(self.sql)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PreparedStatement({self.kind}, {self.sql!r})"
