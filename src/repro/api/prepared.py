"""Prepared statements: parse once, execute many.

``db.prepare(sql)`` runs the front half of the pipeline (lexing,
parsing, and — for SELECTs — literal lifting) exactly once and returns
a :class:`PreparedStatement`.  Each :meth:`~PreparedStatement.run`
binds fresh parameter values and goes through the database's plan
cache, so the compile stages (QGM build, rewrite, plan optimization)
are also skipped on every execution after the first.  Cache entries
are revalidated against the catalog schema version and statistics
epoch on every run, so DDL or ANALYZE between executions transparently
recompiles.

    stmt = db.prepare("SELECT ENAME FROM EMP WHERE ENO = ?")
    for eno in hot_ids:
        rows = stmt.run([eno]).rows
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SemanticError
from repro.executor.plan_cache import (ParameterizedStatement,
                                       parameterize_select)
from repro.executor.runtime import QueryResult
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.database import Database


#: Statement kinds prepare() accepts.
_PREPARABLE = (ast.SelectStatement, ast.XNFQuery, ast.InsertStatement,
               ast.UpdateStatement, ast.DeleteStatement)


class PreparedStatement:
    """One parsed (and, for SELECT, pre-parameterized) statement."""

    def __init__(self, database: "Database", sql: str,
                 statement: ast.Statement):
        if not isinstance(statement, _PREPARABLE):
            raise SemanticError(
                f"cannot prepare a {type(statement).__name__}; prepare "
                "supports SELECT, XNF, INSERT, UPDATE and DELETE"
            )
        self.database = database
        self.sql = sql
        self.statement = statement
        self._parameterized: Optional[ParameterizedStatement] = None
        if isinstance(statement, ast.SelectStatement):
            # Lift literals once at prepare time; run() only needs to
            # hash the normalized AST for the cache probe.
            self._parameterized = parameterize_select(statement)

    @property
    def kind(self) -> str:
        return type(self.statement).__name__

    # ------------------------------------------------------------------
    def run(self, params=None):
        """Execute with the given parameter values.

        ``params`` is a sequence for positional ``?`` markers or a
        mapping for ``:name`` markers.  Returns whatever the statement
        kind returns from ``db.execute``: a
        :class:`~repro.executor.runtime.QueryResult` for SELECT, a
        :class:`~repro.xnf.result.COResult` for XNF, a row count for
        DML.
        """
        statement = self.statement
        database = self.database
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(params)
        if isinstance(statement, ast.XNFQuery):
            if params:
                raise SemanticError(
                    "XNF queries do not take parameters")
            return database.run_xnf_query(statement)
        return database.execute_statement(statement, params=params)

    __call__ = run

    def _run_select(self, params) -> QueryResult:
        pipeline = self.database.pipeline
        parameterized = self._parameterized
        if not pipeline.plan_cache.enabled:
            return pipeline.run_select(self.statement, params=params)
        compiled = pipeline.compile_parameterized(parameterized)
        ctx = compiled.plan.new_context(params)
        if parameterized.values:
            ctx.parameters.update(parameterized.bindings)
        return pipeline.run_compiled(compiled, ctx)

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """EXPLAIN output for the prepared form (SELECT/XNF only)."""
        return self.database.explain(self.sql)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PreparedStatement({self.kind}, {self.sql!r})"
