"""The shared engine behind every session.

The paper positions composite-object views as a *server-side* facility
that many application clients consume through cursors and shipped
result blocks (Sect. 2, Sect. 7).  This module is that server side:
one :class:`Engine` owns everything shared — catalog, storage,
statistics, the auto-parameterizing plan cache, the materialized-view
registry and the XNF compile cache — and hands out
:class:`~repro.api.session.Session` objects (``engine.connect()``),
each with its own transaction scope, statement cache and options.

Concurrency model (read-committed, serialized writers)
======================================================

* **Writer latch** — at most one session holds uncommitted writes.  A
  session acquires the latch on its first mutating statement and keeps
  it until its transaction commits or rolls back (auto-commit
  statements release it at statement end).  A second writer blocks (in
  another thread) or fails fast with :class:`TransactionError` (same
  thread, where blocking would self-deadlock).
* **Statement latch** — a reader/writer lock scoped to single
  statements: mutations and commit/rollback run exclusive, reads run
  shared.  It only guards physical structures (slot lists, indexes);
  it is never held across user code, so open transactions do not block
  readers.
* **Committed-state read views** — a reader overlapping another
  session's open write transaction sees the *committed* database: the
  writer's undo log is distilled into per-table overlays
  (:class:`~repro.storage.table.TableReadView`) installed around the
  read.  The writing session itself reads without overlays and thus
  sees its own uncommitted changes.

Deltas feeding derived state (statistics, materialized views) are
buffered on the emitting session's transaction and published at its
commit — see :mod:`repro.storage.transactions`.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Optional, Union

from repro.errors import (CatalogError, InterfaceError, SemanticError,
                          TransactionError)
from repro.executor.dml import DMLExecutor
from repro.executor.runtime import PipelineOptions, QueryPipeline
from repro.cache.matview import MaterializedViewRegistry
from repro.qgm.model import Box
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.recovery import (RecoveryReport, build_snapshot_payload,
                                    prune_snapshots, recover, wal_path,
                                    write_snapshot)
from repro.storage.stats import StatisticsManager
from repro.storage.table import TableReadView, read_views
from repro.storage.transactions import (DEFAULT_SCOPE, Transaction,
                                        TransactionManager)
from repro.storage.wal import WriteAheadLog
from repro.xnf.result import XNFExecutable
from repro.xnf.translate import XNFOptions, XNFTranslator


class StatementTextCache:
    """A bounded LRU of statement text -> parsed (immutable) AST.

    Parsing is schema-independent, so entries never invalidate; the
    bound only caps memory.  Capacity <= 0 disables the cache.  Used at
    two levels: one shared (locked) instance on the engine, one small
    lock-free instance per session in front of it.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[str, ast.Statement]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, sql: str):
        statement = self._entries.get(sql)
        if statement is not None:
            self._entries.move_to_end(sql)
        return statement

    def put(self, sql: str, statement) -> None:
        self._entries[sql] = statement
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class _StatementLatch:
    """A reentrant reader/writer lock for statement execution.

    Shared for reads, exclusive for mutations.  The exclusive holder's
    thread may re-enter in either mode (a DML statement runs SELECT
    internally); plain readers may nest shared acquisitions.  Lock
    *upgrades* (shared holder requesting exclusive) are a programming
    error and raise instead of deadlocking.
    """

    def __init__(self, timeout: float):
        self._cond = threading.Condition()
        self._timeout = timeout
        self._readers: dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0

    def _wait(self, predicate, what: str) -> None:
        if not self._cond.wait_for(predicate, timeout=self._timeout):
            raise TransactionError(
                f"timed out after {self._timeout}s waiting for {what}")

    @contextmanager
    def shared(self):
        tid = threading.get_ident()
        with self._cond:
            if self._writer != tid:
                self._wait(lambda: self._writer is None,
                           "a concurrent statement to finish")
            self._readers[tid] = self._readers.get(tid, 0) + 1
        try:
            yield
        finally:
            with self._cond:
                self._readers[tid] -= 1
                if not self._readers[tid]:
                    del self._readers[tid]
                self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        tid = threading.get_ident()
        with self._cond:
            if self._writer == tid:
                self._writer_depth += 1
            else:
                if self._readers.get(tid):
                    raise TransactionError(
                        "cannot start a mutating statement from inside "
                        "a read (lock upgrade)")
                self._wait(
                    lambda: self._writer is None and not any(
                        t != tid for t in self._readers),
                    "concurrent readers to finish",
                )
                self._writer = tid
                self._writer_depth = 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_depth -= 1
                if not self._writer_depth:
                    self._writer = None
                self._cond.notify_all()


class _WriterLatch:
    """Serializes *write transactions*: one uncommitted writer at most.

    Held by a session from its first write until its transaction ends.
    Waiting is only meaningful across threads; a conflict between two
    sessions driven by the same thread raises immediately (blocking
    would deadlock the thread against itself).
    """

    def __init__(self, timeout: float):
        self._cond = threading.Condition()
        self._timeout = timeout
        self.owner = None  # the Session holding uncommitted writes
        self._owner_thread: Optional[int] = None

    def acquire(self, session) -> None:
        tid = threading.get_ident()
        with self._cond:
            while self.owner is not None and self.owner is not session:
                if self._owner_thread == tid:
                    raise TransactionError(
                        f"session {self.owner.label!r} holds uncommitted "
                        f"writes on this thread; commit or roll back "
                        f"before writing through {session.label!r}"
                    )
                if not self._cond.wait(timeout=self._timeout):
                    raise TransactionError(
                        f"timed out after {self._timeout}s waiting for "
                        f"the writer latch (held by "
                        f"{self.owner.label!r})"
                    )
            self.owner = session
            self._owner_thread = tid

    def release(self, session) -> None:
        with self._cond:
            if self.owner is session:
                self.owner = None
                self._owner_thread = None
                self._cond.notify_all()


class Engine:
    """Shared state of one database, serving any number of sessions."""

    def __init__(self, pipeline_options: Optional[PipelineOptions] = None,
                 xnf_options: Optional[XNFOptions] = None,
                 lock_timeout: float = 30.0,
                 path: Optional[str] = None,
                 fsync: str = "group",
                 group_window: float = 0.002,
                 checkpoint_interval: int = 0):
        """``path=None`` (the default) keeps the engine purely in
        memory — exactly the pre-durability behaviour.  With a ``path``
        the engine recovers whatever state the directory holds, then
        write-ahead-logs every commit and schema change there; see
        :mod:`repro.storage.wal` for the ``fsync`` / ``group_window``
        knobs and ``docs/DURABILITY.md`` for the full story.
        ``checkpoint_interval`` > 0 snapshots automatically every that
        many commits (``checkpoint()`` is always available manually).
        """
        self.catalog = Catalog()
        self.path = path
        self.recovery: Optional[RecoveryReport] = None
        self._wal: Optional[WriteAheadLog] = None
        self._checkpoint_interval = checkpoint_interval
        self._commits_since_checkpoint = 0
        self._checkpoint_lock = threading.Lock()
        if path is not None:
            # Recover into the fresh catalog *before* anything
            # subscribes to it, so replay triggers no delta, DDL or
            # table-created listeners.
            self.recovery = recover(path, self.catalog)
        # Subscribed: committed DML deltas invalidate statistics (and,
        # on material drift, the plan-cache stats epoch) automatically.
        self.stats = StatisticsManager(self.catalog, subscribe=True)
        self.transactions = TransactionManager(self.catalog)
        self.pipeline_options = pipeline_options or PipelineOptions()
        self.xnf_options = xnf_options or XNFOptions()
        self.pipeline = QueryPipeline(
            self.catalog, self.stats, self.pipeline_options,
            xnf_component_resolver=self.resolve_xnf_component,
        )
        self.dml = DMLExecutor(self.pipeline)
        # DML statements naming a view route here: lens-style put-back
        # translation to base-table mutations (local import — the
        # subsystem imports executor machinery that imports this
        # module's siblings).
        from repro.viewupdate.executor import ViewUpdateManager
        self.viewupdates = ViewUpdateManager(self)
        # Morsel-driven parallel execution: the runtime owns a forked
        # worker pool; the pipeline stamps it onto SELECT contexts so
        # Gather nodes can reach it.  Degree 1 keeps everything —
        # including the compiled plans — exactly as before.
        self.parallel = None
        if self.pipeline_options.planner.parallel_degree > 1:
            from repro.executor.parallel import ParallelRuntime

            self.parallel = ParallelRuntime(self)
            self.pipeline.parallel_runtime = self.parallel
        self.matviews = MaterializedViewRegistry(
            self.catalog, self._matview_executable)
        self.catalog.delta_listeners.append(self.matviews.on_table_delta)
        # A rolled-back transaction that wrote may have been observed by
        # a concurrent materialized-view refresh (which reads committed
        # state, but conservatism is cheap and rollbacks are rare).
        self.transactions.rollback_listeners.append(self._on_rollback)
        self._statement_latch = _StatementLatch(lock_timeout)
        self._writer_latch = _WriterLatch(lock_timeout)
        self._sessions: list = []
        self._session_counter = itertools.count()
        self._overlay_cache: Optional[tuple] = None
        # Shared statement-text parse cache: one client's parse serves
        # every session (sessions layer a small lock-free LRU of their
        # own on top).  Sized with the plan cache and disabled with it.
        self.parse_cache_capacity = \
            2 * max(self.pipeline_options.plan_cache_size, 0)
        self._parse_cache = StatementTextCache(self.parse_cache_capacity)
        self._parse_lock = threading.Lock()
        self._closed = False
        if path is not None:
            self._finish_recovery(self.recovery, fsync, group_window)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _finish_recovery(self, report: RecoveryReport, fsync: str,
                         group_window: float) -> None:
        """Complete a durable open: adopt recovered derived-state
        markers, open the log at the recovered position, re-register
        materialized views stale, and only *then* attach the logging
        hooks (so none of this re-logs)."""
        self.stats.restore_epochs(report.stats_table_epochs,
                                  report.stats_global_epoch)
        self._wal = WriteAheadLog(
            wal_path(self.path), fsync=fsync, group_window=group_window,
            next_lsn=report.next_lsn,
            truncate_at=report.wal_truncate_at)
        # Materialized views come back *stale*: their definitions
        # recovered with the catalog, but the stored result did not —
        # the first read recomputes from the recovered base tables
        # (stale-or-correct, never a trusted pre-crash image).
        for name, policy in sorted(report.matview_policies.items()):
            view = self.catalog.view(name)
            self.matviews.create(name, view.definition, policy=policy,
                                 initial_refresh=False)
        self.transactions.pre_commit_hooks.append(self._log_commit)
        self.transactions.commit_listeners.append(self._count_commit)
        self.catalog.ddl_listeners.append(self._log_ddl)
        self.matviews.create_listeners.append(self._log_matview_create)
        self.matviews.drop_listeners.append(self._log_matview_drop)

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The write-ahead log (None for in-memory engines)."""
        return self._wal

    def _log_commit(self, txn: Transaction) -> None:
        # The write-ahead point: runs at the top of commit, before the
        # transaction detaches and before any delta is published.
        if txn.pending_deltas:
            self._wal.append({"t": "txn",
                              "deltas": list(txn.pending_deltas)})

    def _count_commit(self, _txn) -> None:
        self._commits_since_checkpoint += 1

    def _log_ddl(self, op: str, payload: dict) -> None:
        self._wal.append({"t": "ddl", "op": op, **payload})

    def _log_matview_create(self, name: str, policy: str) -> None:
        self._wal.append({"t": "matview", "op": "create", "name": name,
                          "policy": policy})

    def _log_matview_drop(self, name: str) -> None:
        self._wal.append({"t": "matview", "op": "drop", "name": name,
                          "policy": None})

    def _durability_barrier(self) -> None:
        """Make this thread's acknowledged work durable.

        Runs *after* the statement latch is released, so concurrent
        committers reach the log's sync barrier together and share
        fsyncs (group commit).  No-op for in-memory engines and for
        threads with nothing pending.
        """
        if self._wal is not None:
            self._wal.commit_barrier()

    def checkpoint(self) -> Optional[str]:
        """Snapshot the committed state and truncate the log.

        Returns the snapshot path (None for in-memory engines).  Safe
        at any time: open transactions are excluded via committed-state
        overlays, and their eventual commit records land *after* the
        snapshot's LSN, so replay composes.  A crash anywhere inside
        leaves either the old snapshot set or old-plus-new (snapshots
        are written atomically); stale log records below the snapshot
        LSN are skipped at replay.
        """
        self._check_open()
        if self._wal is None:
            return None
        with self._checkpoint_lock:
            with self._statement_latch.exclusive():
                with read_views(self._read_views_for(None)):
                    lsn = self._wal.last_lsn
                    self._wal.sync()
                    payload = build_snapshot_payload(
                        self.catalog, lsn, self.stats.table_epochs(),
                        self.stats.global_epoch,
                        {v.name: v.policy
                         for v in self.matviews.views()})
                    snapshot = write_snapshot(self.path, payload)
                    # Every record is covered by the snapshot (commits
                    # finish under the exclusive latch; open
                    # transactions have no records yet).
                    self._wal.truncate_through(lsn)
            prune_snapshots(self.path, lsn)
            self._commits_since_checkpoint = 0
        return snapshot

    def _maybe_checkpoint(self) -> None:
        if (self._wal is not None and self._checkpoint_interval > 0
                and self._commits_since_checkpoint
                >= self._checkpoint_interval):
            self.checkpoint()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def connect(self, label: Optional[str] = None,
                arraysize: Optional[int] = None,
                batch_size: Optional[int] = None,
                xnf_options: Optional[XNFOptions] = None):
        """Open a new session (its own transaction scope and options).

        ``arraysize`` seeds cursors' default fetchmany size;
        ``batch_size`` overrides the executor's batch width for this
        session's streams; ``xnf_options`` override the engine default
        for this session's XNF compiles.
        """
        from repro.api.session import Session
        self._check_open()
        number = next(self._session_counter)
        # The first session takes the manager's default scope, so the
        # legacy no-argument transaction API (db.transactions.begin()
        # and friends) and the facade's default session agree on which
        # transaction they drive.
        scope = DEFAULT_SCOPE if number == 0 else f"session-{number}"
        session = Session(
            self, scope=scope,
            label=label or f"session-{number}",
            arraysize=arraysize, batch_size=batch_size,
            xnf_options=xnf_options,
        )
        self._sessions.append(session)
        return session

    def sessions(self) -> list:
        """The currently open sessions."""
        return list(self._sessions)

    def close(self) -> None:
        """Close every open session (rolling back their transactions),
        then the engine itself.  Idempotent."""
        if self._closed:
            return
        for session in list(self._sessions):
            session.close()
        if self.parallel is not None:
            self.parallel.shutdown()
        if self._wal is not None:
            self._wal.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("operation on a closed engine")

    def _forget(self, session) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    def __enter__(self) -> "Engine":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The concurrency protocol
    # ------------------------------------------------------------------
    @contextmanager
    def reading(self, session):
        """Execute a read on behalf of ``session``: shared statement
        latch plus, when another session holds uncommitted writes, the
        committed-state read views."""
        self._check_open()
        with self._statement_latch.shared():
            with read_views(self._read_views_for(session)):
                yield

    def read(self, session, thunk):
        with self.reading(session):
            return thunk()

    def write(self, session, thunk, committed_views: bool = False):
        """Execute a mutating operation on behalf of ``session``.

        Acquires the writer latch (kept until the session's transaction
        ends) and runs the thunk under the exclusive statement latch.
        With ``committed_views=True`` the thunk reads through
        committed-state overlays even against the session's *own*
        uncommitted writes — the materialized-view paths need this so a
        refresh never ingests rows whose deltas are still buffered on
        an open transaction (they would be applied again at commit).
        """
        self._check_open()
        self._writer_latch.acquire(session)
        try:
            with self._statement_latch.exclusive():
                views = self._read_views_for(None) if committed_views \
                    else None
                with read_views(views):
                    result = thunk()
        finally:
            self._release_writer_if_done(session)
            # Durability barrier *outside* the latches: an auto-commit
            # statement is only acknowledged once its log record is
            # synced, and syncing here lets concurrent committers group.
            self._durability_barrier()
        self._maybe_checkpoint()
        return result

    def repartition(self, table_name: str, partitioning) -> None:
        """Rebuild ``table_name`` under ``partitioning`` (a
        :class:`~repro.storage.partition.HashPartitioning` /
        :class:`~repro.storage.partition.RangePartitioning`, or None to
        collapse back to a single unpartitioned slot array).

        Runs as DDL: exclusive statement latch, refused while any
        session holds uncommitted writes (row IDs are reassigned, which
        would invalidate that transaction's undo log), WAL-logged and
        durable before returning.
        """
        self._check_open()
        try:
            with self._statement_latch.exclusive():
                if self._writer_latch.owner is not None:
                    raise TransactionError(
                        "cannot repartition while a transaction holds "
                        "uncommitted writes")
                self.catalog.repartition_table(table_name, partitioning)
        finally:
            self._durability_barrier()

    def matview_read(self, session, thunk):
        """Read a materialized view per its staleness policy.

        Runs exclusive (a deferred read applies queued deltas, mutating
        the registry) but does *not* take the writer latch, so reads
        proceed while other sessions hold open write transactions; a
        full refresh triggered here reads the committed state through
        overlays, whoever the uncommitted writer is.
        """
        self._check_open()
        with self._statement_latch.exclusive():
            with read_views(self._read_views_for(None)):
                return thunk()

    def end_transaction(self, session, commit: bool) -> None:
        """Commit or roll back the session's open transaction."""
        self._check_open()
        try:
            with self._statement_latch.exclusive():
                if commit:
                    self.transactions.commit(session.scope)
                else:
                    self.transactions.rollback(session.scope)
        finally:
            self._release_writer_if_done(session)
            self._durability_barrier()
        self._maybe_checkpoint()

    def _release_writer_if_done(self, session) -> None:
        try:
            txn = self.transactions.transaction_for(session.scope)
        except TransactionError:
            self._writer_latch.release(session)
            return
        # An open transaction with no undo records and no buffered
        # deltas has no uncommitted state anyone could observe (e.g. a
        # savepoint rollback undid everything); holding the latch for
        # it would block writers for nothing.
        if not txn.log and not txn.pending_deltas:
            self._writer_latch.release(session)

    def _read_views_for(self, session
                        ) -> Optional[dict[str, TableReadView]]:
        """Committed-state overlays for a read by ``session``.

        ``None`` (no overlays needed) when nobody holds uncommitted
        writes, or when the writer is the reading session itself — a
        session always sees its own writes.  Pass ``session=None`` to
        get overlays against *any* uncommitted writer (the
        materialized-view paths, which must read committed state
        unconditionally).
        """
        writer = self._writer_latch.owner
        if writer is None or writer is session:
            return None
        try:
            txn = self.transactions.transaction_for(writer.scope)
        except TransactionError:
            return None
        if not txn.log:
            return None
        return self._build_read_views(txn)

    def _build_read_views(self, txn: Transaction
                          ) -> dict[str, TableReadView]:
        """Distill an undo log into per-table committed-state overlays.

        Stable while the shared statement latch is held (the writer
        needs the exclusive latch to grow its log), and cached on
        ``(txn, len(log))`` so streaming readers pay the distillation
        once per observed log state.
        """
        key = (txn.txn_id, len(txn.log))
        cached = self._overlay_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        per_table: dict[str, dict[int, tuple]] = {}
        for record in txn.log:
            touched = per_table.setdefault(record.table_name, {})
            if record.rid not in touched:
                # First touch: ``before`` is the committed image
                # (None for an uncommitted insert).
                touched[record.rid] = record.before
        views: dict[str, TableReadView] = {}
        for name, rows in per_table.items():
            if not self.catalog.has_table(name):
                continue  # dropped mid-transaction; nothing to overlay
            table = self.catalog.table(name)
            pk_map: dict[tuple, int] = {}
            live_delta = 0
            for rid, image in rows.items():
                committed_live = image is not None
                live_delta += (int(committed_live)
                               - int(table.is_live_physical(rid)))
                if committed_live and table.primary_key:
                    pk_map[table._pk_key(image)] = rid
            views[name] = TableReadView(rows, pk_map, live_delta)
        self._overlay_cache = (key, views)
        return views

    # ------------------------------------------------------------------
    # Shared parsing
    # ------------------------------------------------------------------
    def parse(self, sql: str) -> ast.Statement:
        """Parse through the engine-wide statement-text cache."""
        from repro.sql.parser import parse_statement
        if self.parse_cache_capacity <= 0:
            return parse_statement(sql)
        with self._parse_lock:
            statement = self._parse_cache.get(sql)
        if statement is not None:
            return statement
        statement = parse_statement(sql)
        with self._parse_lock:
            self._parse_cache.put(sql, statement)
        return statement

    # ------------------------------------------------------------------
    # Delta / rollback wiring
    # ------------------------------------------------------------------
    def _on_rollback(self, _txn) -> None:
        # Buffered deltas were discarded, so views never *applied*
        # anything from this transaction — but a full refresh that ran
        # while it was open may have snapshotted through its overlay
        # (correct) or, in non-engine code paths, without one.  Eagerly
        # invalidating keeps rollback a correctness-preserving
        # operation regardless of the read path used.
        self.matviews.invalidate_all()

    # ------------------------------------------------------------------
    # Shared XNF compilation (plan-cache read-through)
    # ------------------------------------------------------------------
    def compile_xnf(self, query: ast.XNFQuery, view_name: str,
                    xnf_options: Optional[XNFOptions] = None
                    ) -> XNFExecutable:
        """Compile an XNF query, read through the shared plan cache.

        The XNF read path is hot for gateway navigation: repeated
        ``xnf()`` / ``open_cache()`` calls over the same view reuse the
        translated graph and physical plans across *all* sessions.
        Entries invalidate with the catalog schema version (view/DDL
        changes) and the statistics epoch like any cached plan.
        """
        options = xnf_options or self.xnf_options
        key = ("xnf", query, view_name, options.output_optimization,
               options.apply_nf_rewrite,
               self.pipeline._options_signature())
        return self.pipeline.cached_compile(
            key,
            lambda: self._compile_xnf_fresh(query, view_name, options),
            tables_of=lambda executable: self.pipeline.graph_tables(
                executable.translated.graph),
        )

    def _compile_xnf_fresh(self, query: ast.XNFQuery, view_name: str,
                           options: XNFOptions) -> XNFExecutable:
        graph = self.pipeline.compiler.build_xnf(query,
                                                 view_name=view_name)
        translator = XNFTranslator(self.catalog, options,
                                   compiler=self.pipeline.compiler)
        translated = translator.translate(graph)
        return XNFExecutable(translated, self.catalog, self.stats,
                             self.pipeline_options.planner)

    def _matview_executable(self, query: ast.XNFQuery) -> XNFExecutable:
        """Compile a materialized view's definition.

        The output optimization is disabled so the stored representation
        always carries explicit connection streams — the canonical form
        the delta engine maintains.
        """
        options = XNFOptions(
            output_optimization=False,
            apply_nf_rewrite=self.xnf_options.apply_nf_rewrite,
        )
        return self.compile_xnf(query, "XNF", xnf_options=options)

    def resolve_xnf_component(self, view_name: str,
                              component: str) -> Box:
        """FROM-clause hook: ``viewname.component`` resolves to the
        component's reachability-restricted derivation — XNF's closure
        under composition (Sect. 2)."""
        view = self.catalog.view(view_name)
        if not view.is_xnf:
            raise SemanticError(f"{view_name!r} is not an XNF view")
        graph = self.pipeline.compiler.build_xnf(view.definition,
                                                 view_name=view.name)
        translated = XNFTranslator(
            self.catalog, self.xnf_options,
            compiler=self.pipeline.compiler).translate(graph)
        key = component.upper()
        info = translated.components.get(key)
        if info is None:
            raise CatalogError(
                f"XNF view {view_name!r} has no component {component!r}"
            )
        if translated.recursive:
            raise SemanticError(
                "components of recursive XNF views cannot be composed "
                "into other queries"
            )
        return info.final_box

    def xnf_query_of(self, source: Union[str, ast.XNFQuery]
                     ) -> tuple[ast.XNFQuery, str]:
        from repro.sql.parser import parse_statement
        if isinstance(source, ast.XNFQuery):
            return source, "XNF"
        text = source.strip()
        if " " not in text and self.catalog.has_view(text):
            view = self.catalog.view(text)
            if not view.is_xnf:
                raise SemanticError(f"view {text!r} is not an XNF view")
            return view.definition, view.name
        statement = parse_statement(source)
        if not isinstance(statement, ast.XNFQuery):
            raise SemanticError("expected an XNF query (OUT OF ... TAKE)")
        return statement, "XNF"
