"""Materialized composite-object views with incremental maintenance.

The paper evaluates XNF views from scratch on every extraction; this
module adds the layer the ROADMAP's "caching + hot-path speed" goal
asks for: a registry of **materialized** XNF views whose stored
:class:`~repro.xnf.result.COResult` is kept consistent under DML by
**delta propagation** instead of recomputation (in the spirit of
incremental view maintenance a la relational lenses).

How a view stays fresh
======================

DML (:mod:`repro.executor.dml`) and cache write-back
(:class:`repro.xnf.updates.CacheWriteBack`) publish one
:class:`~repro.storage.catalog.TableDelta` per touched base table per
statement through ``catalog.delta_listeners``.  For each registered
view the delta either:

* propagates **incrementally** — the common case, when every component
  derivation is a select/project of one base table (the same shape the
  Sect. 2 updatability analysis accepts) and every relationship
  predicate is an equi-join between parent, child and USING tables; or
* marks the view for **full refresh** — recursive COs, joins or
  DISTINCT inside component derivations, n-ary relationships,
  non-equi-join predicates (see ``fallback_reason``).

Incremental propagation mirrors the translator's semantics
(:mod:`repro.xnf.translate`): a relationship's connection set is the
join of the parent's *final* (reachability-restricted) extent with the
child's *raw* extent and the USING tables under the relationship
predicate; a non-root component's final extent is the set of child
tuples referenced by at least one visible connection.  Deltas are
propagated with the standard telescoping decomposition of a join delta
(one input advances at a time; each term joins the input's delta
against the current state of the others), evaluated through the
executor's own :class:`~repro.optimizer.plan.HashJoin` /
:class:`~repro.optimizer.plan.Materialized` operators via the
batch-at-a-time ``execute_batches`` protocol.  Connection multisets
and per-child support counts make deletions exact without
recomputation.

Staleness policies
==================

``eager``     maintain the internal state on every write (reads are
              always fresh; the result snapshot is rebuilt lazily).
``deferred``  queue deltas on write; apply them on the next read or
              explicit ``REFRESH MATERIALIZED VIEW``.

A transaction rollback invalidates every view (deltas emitted inside
the transaction were undone), forcing a full refresh on next read.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.errors import CacheError, CatalogError
from repro.executor.expressions import CompiledExpression, ExpressionCompiler
from repro.optimizer.plan import ExecutionContext, HashJoin, Materialized
from repro.qgm.model import BaseBox, QRef, RidRef
from repro.sql import ast
from repro.storage.catalog import Catalog, TableDelta
from repro.xnf.result import (ComponentStream, ConnectionStream, COResult,
                              XNFExecutable)
from repro.xnf.translate import TranslatedXNF
from repro.xnf.updates import analyze_component

#: (rid, row) pairs — the currency of raw extents and deltas.
Pairs = list


class _Fallback(Exception):
    """Internal: the view's shape is outside the incremental fragment."""


# ----------------------------------------------------------------------
# Static analysis: can this view be maintained incrementally?
# ----------------------------------------------------------------------
@dataclass
class _ComponentPlan:
    """Maintenance metadata for one component."""

    name: str
    number: int
    table: str
    qid: int
    #: view column (upper) -> base column position
    base_positions_by_column: dict[str, int]
    checks: list  # compiled predicates over the full base row
    #: final extent equals raw extent (root / reachability not required)
    root_like: bool
    taken: bool
    stream_columns: list[str] = field(default_factory=list)
    stream_positions: list[int] = field(default_factory=list)


@dataclass
class _InputSpec:
    """One join input of a relationship: parent, child or USING table."""

    kind: str  # 'parent' | 'child' | 'using'
    name: str  # component name, or USING table name
    qid: int
    table: str
    width: int  # row width (components carry a trailing oid slot)
    offset: int = 0  # start position in the combined join layout


@dataclass
class _RelationshipPlan:
    """Maintenance metadata for one relationship."""

    name: str
    number: int
    role: str
    parent: str
    child: str
    taken: bool
    attribute_names: tuple
    inputs: list  # _InputSpec, in join order (parent first)
    #: per join step: (positions in accumulated row, positions in the
    #: new input's row)
    join_keys: list
    predicate_fn: CompiledExpression = None
    attr_fns: list = field(default_factory=list)
    poid_pos: int = 0
    coid_pos: int = 0


@dataclass
class _IncrementalPlan:
    """Everything the delta engine needs, derived once per view."""

    components: dict
    relationships: dict
    topo: list  # component names, parents before children
    incoming: dict  # component -> [_RelationshipPlan]
    using_tables: set


def _check_no_subqueries(expression: ast.Expression, where: str) -> None:
    for node in ast.walk_expression(expression):
        if isinstance(node, (ast.Exists, ast.InSubquery,
                             ast.ScalarSubquery)):
            raise _Fallback(f"{where} contains a subquery")


def _analyze_incremental(translated: TranslatedXNF,
                         catalog: Catalog) -> _IncrementalPlan:
    """Build the incremental plan, or raise :class:`_Fallback`."""
    if translated.recursive:
        raise _Fallback("recursive CO views are refreshed fully")
    xnf = translated.xnf_box
    if xnf is None:
        raise _Fallback("translation kept no XNF operator box")

    components: dict = {}
    for name, info in translated.components.items():
        box = xnf.components[name].box
        updatability = analyze_component(box)
        if not updatability.updatable:
            raise _Fallback(f"component {name}: {updatability.reason}")
        if len(updatability.check_predicates) != len(box.predicates):
            raise _Fallback(
                f"component {name}: derivation predicate is not local "
                f"to its base table"
            )
        table = catalog.table(updatability.table)
        positions = {
            view_column: table.column_position(base_column)
            for view_column, base_column in
            updatability.column_map.items()
        }
        incoming_edges = translated.schema.incoming(name)
        root_like = (xnf.components[name].is_root
                     or not xnf.components[name].reachability_required
                     or not incoming_edges)
        plan = _ComponentPlan(
            name=name, number=info.number, table=table.name,
            qid=box.foreach_quantifiers()[0].qid,
            base_positions_by_column=positions,
            checks=updatability.check_predicates,
            root_like=root_like, taken=info.taken,
        )
        if info.taken:
            plan.stream_columns = list(info.columns)
            for column in plan.stream_columns:
                position = positions.get(column.upper())
                if position is None:
                    raise _Fallback(
                        f"component {name}: stream column {column!r} "
                        f"is not a stored column"
                    )
                plan.stream_positions.append(position)
        components[name] = plan

    relationships: dict = {}
    incoming: dict = {name: [] for name in components}
    for name, rinfo in translated.relationships.items():
        relationships[name] = _analyze_relationship(
            name, rinfo, xnf, components, catalog)
        incoming[relationships[name].child].append(relationships[name])

    topo = translated.schema.topological_order()
    if topo is None:  # pragma: no cover - recursive handled above
        raise _Fallback("schema graph has a cycle")
    using_tables = {
        spec.table
        for rel in relationships.values()
        for spec in rel.inputs if spec.kind == "using"
    }
    return _IncrementalPlan(components=components,
                            relationships=relationships, topo=topo,
                            incoming=incoming, using_tables=using_tables)


def _analyze_relationship(name, rinfo, xnf, components, catalog):
    relationship = xnf.relationships[name]
    if len(relationship.children) != 1:
        raise _Fallback(f"relationship {name}: n-ary relationships are "
                        f"refreshed fully")
    if relationship.predicate is None:
        raise _Fallback(f"relationship {name}: no join predicate")
    _check_no_subqueries(relationship.predicate,
                         f"relationship {name} predicate")
    for attr_name, expression in relationship.attributes:
        _check_no_subqueries(expression,
                             f"relationship {name} attribute {attr_name}")

    child = relationship.children[0]
    inputs: list[_InputSpec] = [
        _InputSpec("parent", relationship.parent,
                   relationship.parent_quantifier.qid,
                   components[relationship.parent].table,
                   len(catalog.table(
                       components[relationship.parent].table).columns) + 1),
        _InputSpec("child", child, relationship.child_quantifiers[0].qid,
                   components[child].table,
                   len(catalog.table(components[child].table).columns) + 1),
    ]
    seen_using: set[str] = set()
    for quantifier in relationship.using_quantifiers:
        if not isinstance(quantifier.box, BaseBox):
            raise _Fallback(f"relationship {name}: USING source "
                            f"{quantifier.name!r} is not a base table")
        table = quantifier.box.table
        if table.name in seen_using:
            raise _Fallback(f"relationship {name}: USING table "
                            f"{table.name} appears twice")
        seen_using.add(table.name)
        inputs.append(_InputSpec("using", table.name, quantifier.qid,
                                 table.name, len(table.columns)))

    by_qid = {spec.qid: index for index, spec in enumerate(inputs)}

    def resolve(qref: QRef) -> tuple[int, int]:
        index = by_qid.get(qref.quantifier.qid)
        if index is None:
            raise _Fallback(
                f"relationship {name}: predicate references "
                f"{qref.quantifier.name!r}, outside the relationship"
            )
        spec = inputs[index]
        if spec.kind == "using":
            return index, catalog.table(spec.table).column_position(
                qref.column)
        position = components[spec.name].base_positions_by_column.get(
            qref.column.upper())
        if position is None:
            raise _Fallback(
                f"relationship {name}: column {qref.column!r} of "
                f"{spec.name} is not a stored column"
            )
        return index, position

    # Validate every reference; collect equi pairs for the join order.
    pairs: list[tuple[tuple[int, int], tuple[int, int]]] = []
    for conjunct in ast.conjuncts(relationship.predicate):
        if (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
                and isinstance(conjunct.left, QRef)
                and isinstance(conjunct.right, QRef)):
            left, right = resolve(conjunct.left), resolve(conjunct.right)
            if left[0] != right[0]:
                pairs.append((left, right))
                continue
    for expression in ([relationship.predicate]
                       + [e for _n, e in relationship.attributes]):
        for node in ast.walk_expression(expression):
            if isinstance(node, QRef):
                resolve(node)
            elif isinstance(node, RidRef):
                index = by_qid.get(node.quantifier.qid)
                if index is None or inputs[index].kind == "using":
                    raise _Fallback(
                        f"relationship {name}: RID reference outside "
                        f"the joined components"
                    )

    # Greedy join order: start at the parent, add inputs connected by
    # at least one equality (no cross products in the delta path).
    order = [0]
    join_keys: list[tuple[list[int], list[int]]] = []
    remaining = [index for index in range(1, len(inputs))]
    offsets = {0: 0}
    width = inputs[0].width
    while remaining:
        step = None
        for candidate in remaining:
            left_keys: list[int] = []
            right_keys: list[int] = []
            for (a_index, a_pos), (b_index, b_pos) in pairs:
                if a_index in offsets and b_index == candidate:
                    left_keys.append(offsets[a_index] + a_pos)
                    right_keys.append(b_pos)
                elif b_index in offsets and a_index == candidate:
                    left_keys.append(offsets[b_index] + b_pos)
                    right_keys.append(a_pos)
            if left_keys:
                step = (candidate, left_keys, right_keys)
                break
        if step is None:
            raise _Fallback(
                f"relationship {name}: predicate does not equi-join "
                f"every table"
            )
        candidate, left_keys, right_keys = step
        remaining.remove(candidate)
        offsets[candidate] = width
        width += inputs[candidate].width
        order.append(candidate)
        join_keys.append((left_keys, right_keys))

    ordered_inputs = []
    for index in order:
        spec = inputs[index]
        spec.offset = offsets[index]
        ordered_inputs.append(spec)

    # Compile the predicate and attributes against the joined layout.
    layout: dict = {}
    for spec in ordered_inputs:
        if spec.kind == "using":
            table = catalog.table(spec.table)
            for position, column in enumerate(table.column_names):
                layout[(spec.qid, column.upper())] = spec.offset + position
        else:
            for column, position in components[
                    spec.name].base_positions_by_column.items():
                layout[(spec.qid, column)] = spec.offset + position
            layout[(spec.qid, "$RID$")] = spec.offset + spec.width - 1
    compiler = ExpressionCompiler(layout)

    parent_spec = ordered_inputs[[s.kind for s in ordered_inputs
                                  ].index("parent")]
    child_spec = ordered_inputs[[s.kind for s in ordered_inputs
                                 ].index("child")]
    return _RelationshipPlan(
        name=name, number=rinfo.number, role=rinfo.role,
        parent=relationship.parent, child=child, taken=rinfo.taken,
        attribute_names=tuple(n for n, _e in relationship.attributes),
        inputs=ordered_inputs, join_keys=join_keys,
        predicate_fn=compiler.compile_condition(relationship.predicate),
        attr_fns=[compiler.compile(e)
                  for _n, e in relationship.attributes],
        poid_pos=parent_spec.offset + parent_spec.width - 1,
        coid_pos=child_spec.offset + child_spec.width - 1,
    )


def _position_fn(position: int):
    return lambda row, ctx: row[position]


# ----------------------------------------------------------------------
# The incremental state and delta engine
# ----------------------------------------------------------------------
class _IncrementalState:
    """Shadowed extents, connection multisets and support counts."""

    def __init__(self, plan: _IncrementalPlan, catalog: Catalog):
        self.plan = plan
        self.catalog = catalog
        self.raw: dict[str, dict] = {}      # component -> rid -> base row
        self.final: dict[str, dict] = {}    # component -> oid -> base row
        self.support: dict[str, Counter] = {}
        self.using: dict[str, dict] = {}    # table -> rid -> row
        self.conn: dict[str, Counter] = {}  # relationship -> key -> count

    # -- construction ---------------------------------------------------
    def build(self) -> None:
        for table_name in self.plan.using_tables:
            self.using[table_name] = dict(
                self.catalog.table(table_name).scan())
        for component in self.plan.components.values():
            table = self.catalog.table(component.table)
            checks = component.checks
            self.raw[component.name] = {
                rid: row for rid, row in table.scan()
                if all(check(row, None) is True for check in checks)
            }
        for name in self.plan.topo:
            for relationship in self.plan.incoming[name]:
                self.conn[relationship.name] = Counter(
                    self._enumerate(relationship, {}))
            component = self.plan.components[name]
            if component.root_like:
                self.final[name] = dict(self.raw[name])
                continue
            support: Counter = Counter()
            for relationship in self.plan.incoming[name]:
                for key in self.conn[relationship.name]:
                    support[key[1]] += 1
            self.support[name] = support
            raw = self.raw[name]
            self.final[name] = {oid: raw[oid] for oid in raw
                                if support.get(oid, 0) > 0}

    # -- join evaluation ------------------------------------------------
    def _input_rows(self, spec: _InputSpec, overrides: dict,
                    index: int) -> list:
        if index in overrides:
            return overrides[index]
        if spec.kind == "using":
            return list(self.using[spec.table].values())
        source = (self.final if spec.kind == "parent" else self.raw)[
            spec.name]
        return [row + (oid,) for oid, row in source.items()]

    @staticmethod
    def _shape(spec: _InputSpec, pairs: Iterable) -> list:
        if spec.kind == "using":
            return [row for _rid, row in pairs]
        return [row + (oid,) for oid, row in pairs]

    def _enumerate(self, relationship: _RelationshipPlan,
                   overrides: dict) -> list[tuple]:
        """All connection keys of the join with ``overrides`` substituted
        for the corresponding inputs (the delta-join building block).

        Runs through the executor's hash-join machinery: each input is a
        :class:`Materialized` relation, each step a :class:`HashJoin`
        drained via the batch protocol.
        """
        inputs = relationship.inputs
        rows = self._input_rows(inputs[0], overrides, 0)
        if not rows:
            return []
        node: object = Materialized(
            [f"c{i}" for i in range(inputs[0].width)], rows)
        for step, spec in enumerate(inputs[1:]):
            step_rows = self._input_rows(spec, overrides, step + 1)
            if not step_rows:
                return []
            left_positions, right_positions = relationship.join_keys[step]
            node = HashJoin(
                node,
                Materialized([f"c{i}" for i in range(spec.width)],
                             step_rows),
                [_position_fn(p) for p in left_positions],
                [_position_fn(p) for p in right_positions],
            )
        ctx = ExecutionContext()
        predicate = relationship.predicate_fn
        attr_fns = relationship.attr_fns
        poid_pos = relationship.poid_pos
        coid_pos = relationship.coid_pos
        keys: list[tuple] = []
        for batch in node.execute_batches(ctx):
            for row in batch:
                if predicate(row, ctx) is not True:
                    continue
                key = (row[poid_pos], row[coid_pos])
                if attr_fns:
                    key += tuple(fn(row, ctx) for fn in attr_fns)
                keys.append(key)
        return keys

    def _term(self, relationship: _RelationshipPlan, index: int,
              removed: Pairs, added: Pairs, delta: Counter) -> None:
        """One telescoping term: input ``index`` advances by
        (removed, added) against the current state of the others."""
        spec = relationship.inputs[index]
        if removed:
            delta.subtract(
                self._enumerate(relationship,
                                {index: self._shape(spec, removed)}))
        if added:
            delta.update(
                self._enumerate(relationship,
                                {index: self._shape(spec, added)}))

    # -- delta application ----------------------------------------------
    def apply(self, delta: TableDelta) -> None:
        """Propagate one table's delta through every stream, exactly."""
        table_name = delta.table.upper()
        conn_deltas: dict[str, Counter] = {
            name: Counter() for name in self.plan.relationships}
        raw_deltas: dict[str, tuple[Pairs, Pairs]] = {}

        # Phase 1: advance the independent inputs (USING shadows and
        # component raw extents) one at a time; each advancement
        # contributes its delta-join terms before the next advances.
        if table_name in self.using:
            shadow = self.using[table_name]
            removed = [(rid, shadow[rid]) for rid, _row in delta.deleted
                       if rid in shadow]
            added = list(delta.inserted)
            for relationship in self.plan.relationships.values():
                for index, spec in enumerate(relationship.inputs):
                    if spec.kind == "using" and spec.table == table_name:
                        self._term(relationship, index, removed, added,
                                   conn_deltas[relationship.name])
            for rid, _row in removed:
                del shadow[rid]
            for rid, row in added:
                shadow[rid] = row

        for component in self.plan.components.values():
            if component.table != table_name:
                continue
            raw = self.raw[component.name]
            removed = [(rid, raw[rid]) for rid, _row in delta.deleted
                       if rid in raw]
            added = [(rid, row) for rid, row in delta.inserted
                     if all(check(row, None) is True
                            for check in component.checks)]
            if not removed and not added:
                continue
            raw_deltas[component.name] = (removed, added)
            for relationship in self.plan.relationships.values():
                for index, spec in enumerate(relationship.inputs):
                    if spec.kind == "child" \
                            and spec.name == component.name:
                        self._term(relationship, index, removed, added,
                                   conn_deltas[relationship.name])
            for rid, _row in removed:
                del raw[rid]
            for rid, row in added:
                raw[rid] = row

        # Phase 2: walk components parents-first; finalize incoming
        # connection sets (adding the parent-final terms), derive
        # support transitions, and advance final extents.
        final_deltas: dict[str, tuple[Pairs, Pairs]] = {}
        for name in self.plan.topo:
            component = self.plan.components[name]
            transitions: list[tuple[tuple, bool]] = []
            for relationship in self.plan.incoming[name]:
                parent_removed, parent_added = final_deltas.get(
                    relationship.parent, ((), ()))
                self._term(relationship, 0, parent_removed, parent_added,
                           conn_deltas[relationship.name])
                transitions.extend(self._apply_conn_delta(
                    relationship.name, conn_deltas[relationship.name]))

            removed_pairs: Pairs = []
            added_pairs: Pairs = []
            final = self.final.setdefault(name, {})
            raw = self.raw[name]
            if component.root_like:
                raw_removed, raw_added = raw_deltas.get(name, ((), ()))
                for rid, row in raw_removed:
                    final.pop(rid, None)
                    removed_pairs.append((rid, row))
                for rid, row in raw_added:
                    final[rid] = row
                    added_pairs.append((rid, row))
            else:
                support = self.support.setdefault(name, Counter())
                touched: set = set()
                for key, appeared in transitions:
                    support[key[1]] += 1 if appeared else -1
                    touched.add(key[1])
                for oid in touched:
                    count = support.get(oid, 0)
                    if count < 0:  # pragma: no cover - invariant
                        raise CacheError(
                            f"materialized view support of {name} oid "
                            f"{oid!r} went negative"
                        )
                    if count > 0 and oid not in final:
                        row = raw[oid]
                        final[oid] = row
                        added_pairs.append((oid, row))
                    elif count == 0:
                        if oid in final:
                            removed_pairs.append((oid, final.pop(oid)))
                        del support[oid]
                # A raw update that keeps the oid reachable changes the
                # stored row in place.
                raw_removed, raw_added = raw_deltas.get(name, ((), ()))
                replaced = {rid for rid, _row in raw_removed}
                for rid, row in raw_added:
                    if rid in replaced and rid in final \
                            and final[rid] != row:
                        removed_pairs.append((rid, final[rid]))
                        final[rid] = row
                        added_pairs.append((rid, row))
            if removed_pairs or added_pairs:
                final_deltas[name] = (removed_pairs, added_pairs)

    def _apply_conn_delta(self, name: str,
                          delta: Counter) -> list[tuple[tuple, bool]]:
        """Apply a signed connection-multiset delta; return visibility
        transitions as (key, appeared) pairs."""
        counter = self.conn[name]
        transitions: list[tuple[tuple, bool]] = []
        for key, change in delta.items():
            if change == 0:
                continue
            old = counter.get(key, 0)
            new = old + change
            if new < 0:  # pragma: no cover - invariant
                raise CacheError(
                    f"materialized view connection multiplicity of "
                    f"{name} went negative for {key!r}"
                )
            if new == 0:
                if old:
                    del counter[key]
            else:
                counter[key] = new
            if old == 0 and new > 0:
                transitions.append((key, True))
            elif old > 0 and new == 0:
                transitions.append((key, False))
        delta.clear()
        return transitions

    # -- result materialization ----------------------------------------
    def snapshot(self, translated: TranslatedXNF) -> COResult:
        """A fresh :class:`COResult` materialized from the state."""
        components: dict[str, ComponentStream] = {}
        for name, component in self.plan.components.items():
            if not component.taken:
                continue
            stream = ComponentStream(
                name=name, number=component.number,
                columns=list(component.stream_columns),
            )
            positions = component.stream_positions
            for oid, row in self.final[name].items():
                stream.oids.append(oid)
                stream.rows.append(tuple(row[p] for p in positions))
            components[name] = stream
        relationships: dict[str, ConnectionStream] = {}
        for name, relationship in self.plan.relationships.items():
            if not relationship.taken:
                continue
            relationships[name] = ConnectionStream(
                name=name, number=relationship.number,
                role=relationship.role, parent=relationship.parent,
                children=(relationship.child,),
                connections=list(self.conn[name]),
                attribute_names=relationship.attribute_names,
            )
        return COResult(
            schema=translated.schema, components=components,
            relationships=relationships,
            counters={"matview_snapshot": 1}, shipped_tuples=0,
        )


# ----------------------------------------------------------------------
# The registry-facing objects
# ----------------------------------------------------------------------
POLICIES = ("eager", "deferred")


class MaterializedView:
    """One registered view: stored result, base tables, refresh state."""

    def __init__(self, name: str, query: ast.XNFQuery,
                 compile_fn: Callable[[ast.XNFQuery], XNFExecutable],
                 catalog: Catalog, policy: str = "eager",
                 initial_refresh: bool = True):
        if policy not in POLICIES:
            raise CacheError(
                f"unknown staleness policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.name = name.upper()
        self.query = query
        self.policy = policy
        self.catalog = catalog
        self.executable = compile_fn(query)
        self.translated: TranslatedXNF = self.executable.translated
        self.base_tables = _base_tables_of(self.translated)
        self.fallback_reason = ""
        try:
            self._plan: Optional[_IncrementalPlan] = \
                _analyze_incremental(self.translated, catalog)
        except _Fallback as reason:
            self._plan = None
            self.fallback_reason = str(reason)
        self._state: Optional[_IncrementalState] = None
        self._result: Optional[COResult] = None
        self._snapshot_dirty = False
        self.pending: list[TableDelta] = []
        self.stale = True
        self.stats = {"full_refreshes": 0, "incremental_refreshes": 0,
                      "delta_rows_applied": 0, "reads": 0}
        if initial_refresh:
            self.refresh(full=True)
        # else: registered stale — crash recovery re-registers views
        # this way so the first read recomputes from the recovered base
        # tables instead of trusting a pre-crash materialization.

    # ------------------------------------------------------------------
    @property
    def is_incremental(self) -> bool:
        """True when DML deltas propagate instead of recomputing."""
        return self._plan is not None

    @property
    def fresh(self) -> bool:
        return not self.stale and not self.pending \
            and not self._snapshot_dirty

    @property
    def result(self) -> COResult:
        """The stored result (as of the last refresh; see :meth:`read`)."""
        if self._snapshot_dirty:
            self._result = self._state.snapshot(self.translated)
            self._snapshot_dirty = False
        return self._result

    def read(self) -> COResult:
        """The policy-respecting read path: refresh if needed, serve."""
        self.stats["reads"] += 1
        return self.refresh()

    # ------------------------------------------------------------------
    def refresh(self, full: bool = False) -> COResult:
        """Bring the view up to date; returns the fresh result."""
        if full or self.stale or (self.pending
                                  and not self.is_incremental):
            self._full_refresh()
        elif self.pending:
            self._apply_pending()
        return self.result

    def _full_refresh(self) -> None:
        self._result = self.executable.run()
        self._snapshot_dirty = False
        if self._plan is not None:
            self._state = _IncrementalState(self._plan, self.catalog)
            self._state.build()
        self.pending.clear()
        self.stale = False
        self.stats["full_refreshes"] += 1

    def _apply_pending(self) -> None:
        for delta in self.pending:
            self._state.apply(delta)
            self.stats["delta_rows_applied"] += (len(delta.inserted)
                                                 + len(delta.deleted))
        self.pending.clear()
        self._snapshot_dirty = True
        self.stats["incremental_refreshes"] += 1

    # ------------------------------------------------------------------
    def on_table_delta(self, delta: TableDelta) -> None:
        if delta.table.upper() not in self.base_tables:
            return
        if self.policy == "eager" and self.is_incremental \
                and not self.stale:
            self.pending.append(delta)
            self._apply_pending()
            return
        if self.is_incremental and not self.stale:
            self.pending.append(delta)
        else:
            # Outside the incremental fragment (or already stale) a
            # per-write recompute would cost a full evaluation per
            # statement; since results are only observable through the
            # read path, mark stale and recompute once on the next read.
            self.invalidate()

    def invalidate(self) -> None:
        """Force the next read to recompute from base tables."""
        self.stale = True
        self.pending.clear()


class MaterializedViewRegistry:
    """All materialized views of one database, keyed by name.

    Subscribed to the catalog's delta protocol; also consulted by the
    facade's XNF read path so a query structurally equal to a
    registered view's definition is served from the materialization.
    """

    def __init__(self, catalog: Catalog,
                 compile_fn: Callable[[ast.XNFQuery], XNFExecutable]):
        self.catalog = catalog
        self._compile = compile_fn
        self._views: dict[str, MaterializedView] = {}
        #: Called with ``(name, policy)`` / ``(name,)`` after a view is
        #: registered / dropped; the durability layer logs these so a
        #: recovered engine knows which views to re-register (stale).
        self.create_listeners: list[Callable[[str, str], None]] = []
        self.drop_listeners: list[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    def create(self, name: str, query: ast.XNFQuery,
               policy: str = "eager",
               initial_refresh: bool = True) -> MaterializedView:
        key = name.upper()
        if key in self._views:
            raise CatalogError(
                f"materialized view {name!r} already exists")
        view = MaterializedView(name, query, self._compile, self.catalog,
                                policy=policy,
                                initial_refresh=initial_refresh)
        self._views[key] = view
        for listener in list(self.create_listeners):
            listener(key, view.policy)
        return view

    def drop(self, name: str) -> None:
        if self._views.pop(name.upper(), None) is None:
            raise CatalogError(f"no materialized view named {name!r}")
        for listener in list(self.drop_listeners):
            listener(name.upper())

    def get(self, name: str) -> MaterializedView:
        view = self._views.get(name.upper())
        if view is None:
            raise CatalogError(f"no materialized view named {name!r}")
        return view

    def has(self, name: str) -> bool:
        return name.upper() in self._views

    def names(self) -> list[str]:
        return list(self._views)

    def views(self) -> list[MaterializedView]:
        return list(self._views.values())

    def lookup_query(self,
                     query: ast.XNFQuery) -> Optional[MaterializedView]:
        """A view whose definition is structurally equal to ``query``."""
        for view in self._views.values():
            if view.query == query:
                return view
        return None

    # ------------------------------------------------------------------
    def on_table_delta(self, delta: TableDelta) -> None:
        for view in self._views.values():
            view.on_table_delta(delta)

    def invalidate_all(self) -> None:
        for view in self._views.values():
            view.invalidate()


# ----------------------------------------------------------------------
# Helpers shared with tests
# ----------------------------------------------------------------------
def _base_tables_of(translated: TranslatedXNF) -> set[str]:
    names = {
        box.table.name.upper()
        for box in translated.graph.all_boxes()
        if isinstance(box, BaseBox)
    }
    xnf = translated.xnf_box
    if xnf is not None:
        for relationship in xnf.relationships.values():
            for quantifier in relationship.using_quantifiers:
                if isinstance(quantifier.box, BaseBox):
                    names.add(quantifier.box.table.name.upper())
    return names


def co_canonical(result: COResult) -> dict:
    """An order-insensitive, comparison-friendly view of a COResult.

    Component streams become ``{oid: {column: value}}`` maps (object
    identity is the key, row order is irrelevant); relationship streams
    become sets of connection tuples (they are DISTINCT streams by
    construction).  Two evaluations of the same view over the same data
    must agree on this form no matter which code path produced them.
    """
    components = {
        name: {
            repr(oid): tuple(sorted(zip(stream.columns, row)))
            for oid, row in zip(stream.oids, stream.rows)
        }
        for name, stream in result.components.items()
    }
    relationships = {
        name: frozenset(tuple(c) for c in stream.connections)
        for name, stream in result.relationships.items()
    }
    return {"components": components, "relationships": relationships}


def co_results_equal(left: COResult, right: COResult) -> bool:
    return co_canonical(left) == co_canonical(right)
