"""The seamless object interface (Sect. 5.2).

"XNF also allows the cache to be stored in C++ structures, allowing
seamless interface between applications and the data in the cache ...
creating classes for xemp and xdept which include a data member, whose
value is a pointer to an xemp object.  In addition to these classes we
also need a container class to hold all the instances of e.g. class
xemp."

The Python analogue: :func:`bind_classes` generates one class per
component, with

* properties for every column (lower-cased attribute names),
* navigation methods per outgoing relationship (named after the role:
  ``dept.employs()``) and per incoming relationship
  (``emp.employs_parents()``),
* an ``Extent`` container per class holding all instances.

Instances wrap the live :class:`~repro.cache.workspace.CachedObject`, so
updates made through the generated classes land in the cache's update
log like any other local change.
"""

from __future__ import annotations

import keyword
from typing import Iterator

from repro.errors import CacheError
from repro.cache.manager import XNFCache
from repro.cache.workspace import CachedObject


class Extent:
    """Container of all instances of one generated class."""

    def __init__(self, cache: XNFCache, component: str, cls: type):
        self._cache = cache
        self._component = component
        self._cls = cls

    def __iter__(self) -> Iterator:
        for obj in self._cache.extent(self._component):
            yield self._cls(obj)

    def __len__(self) -> int:
        return len(self._cache.extent(self._component))

    def find(self, **equalities) -> list:
        return [self._cls(o)
                for o in self._cache.find(self._component, **equalities)]

    def insert(self, **values):
        mark = self._cache.mutation_mark()
        obj = self._cache.insert(self._component, **values)
        self._cache.flush_through(mark)
        return self._cls(obj)

    def __repr__(self) -> str:
        return f"<Extent {self._component} ({len(self)} objects)>"


class BoundObject:
    """Base class of all generated component classes."""

    _component: str = ""
    _cache: XNFCache = None  # type: ignore[assignment]

    def __init__(self, raw: CachedObject):
        object.__setattr__(self, "_raw", raw)

    @property
    def raw(self) -> CachedObject:
        return self._raw

    def delete(self) -> None:
        mark = self._cache.mutation_mark()
        self._cache.delete(self._raw)
        self._cache.flush_through(mark)

    def update(self, **assignments) -> "BoundObject":
        """Set several columns as one write (one put-back round trip
        in write-through mode)."""
        cache = self._cache
        mark = cache.mutation_mark()
        try:
            for column, value in assignments.items():
                self._raw.set(column, value)
        except Exception:
            from repro.viewupdate.objects import revert_entries
            entries = cache.workspace.log[mark:]
            del cache.workspace.log[mark:]
            revert_entries(cache.workspace, entries)
            raise
        cache.flush_through(mark)
        return self

    def insert_child(self, relationship: str, **values):
        """Insert a new child object and connect it to this parent —
        in write-through mode the child row and its relationship
        wiring (e.g. foreign-key columns) land in one atomic
        statement."""
        cache = self._cache
        workspace = cache.workspace
        name = relationship.upper()
        if name not in workspace.relationship_children:
            # Accept the role name (the navigation-method name) too.
            for rel_name, parent in workspace.relationship_parent.items():
                role = workspace.relationship_role.get(rel_name)
                if parent == self._component and role \
                        and role.upper() == name:
                    name = rel_name
                    break
        children = workspace.relationship_children.get(name)
        if children is None:
            raise CacheError(f"no relationship {relationship!r}")
        if len(children) != 1:
            raise CacheError(
                f"relationship {relationship} is n-ary; insert and "
                f"connect its children explicitly")
        mark = cache.mutation_mark()
        try:
            child = cache.insert(children[0], **values)
            cache.connect(name, self._raw, child)
        except Exception:
            from repro.viewupdate.objects import revert_entries
            entries = cache.workspace.log[mark:]
            del cache.workspace.log[mark:]
            revert_entries(cache.workspace, entries)
            raise
        cache.flush_through(mark)
        return cache._classes[children[0]](child)

    def __eq__(self, other) -> bool:
        return isinstance(other, BoundObject) and other._raw is self._raw

    def __hash__(self) -> int:
        return hash(id(self._raw))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._raw.as_dict()}>"


def _safe_name(name: str) -> str:
    lowered = name.lower()
    if keyword.iskeyword(lowered) or not lowered.isidentifier():
        return lowered + "_"
    return lowered


def _make_column_property(column: str):
    def getter(self):
        return self._raw.get(column)

    def setter(self, value):
        mark = self._cache.mutation_mark()
        self._raw.set(column, value)
        self._cache.flush_through(mark)

    return property(getter, setter, doc=f"column {column}")


def _make_children_method(relationship: str):
    def navigate(self) -> list:
        found = []
        for child in self._raw.children(relationship):
            if isinstance(child, tuple):
                found.append(tuple(
                    self._cache._classes[c.component](c) for c in child
                ))
            else:
                found.append(
                    self._cache._classes[child.component](child)
                )
        return found
    navigate.__doc__ = f"children via relationship {relationship}"
    return navigate


def _make_parents_method(relationship: str):
    def navigate(self) -> list:
        return [self._cache._classes[p.component](p)
                for p in self._raw.parents(relationship)]
    navigate.__doc__ = f"parents via relationship {relationship}"
    return navigate


def bind_classes(cache: XNFCache) -> dict[str, type]:
    """Generate component classes over a cache.

    Returns a mapping of component name -> class; each class also
    carries an ``extent`` attribute (its container).  The mapping is
    stored on the cache so navigation methods can wrap partners.
    """
    workspace = cache.workspace
    classes: dict[str, type] = {}
    cache._classes = classes  # type: ignore[attr-defined]

    for component in workspace.component_names():
        namespace: dict = {
            "_component": component,
            "_cache": cache,
        }
        for column in workspace.components_columns[component]:
            namespace[_safe_name(column)] = _make_column_property(column)
        for rel_name, parent in workspace.relationship_parent.items():
            role = workspace.relationship_role.get(rel_name) or rel_name
            if parent == component:
                namespace[_safe_name(role)] = \
                    _make_children_method(rel_name)
            if component in workspace.relationship_children[rel_name]:
                namespace[_safe_name(role) + "_parents"] = \
                    _make_parents_method(rel_name)
        cls = type(component.capitalize(), (BoundObject,), namespace)
        cls.extent = Extent(cache, component, cls)
        classes[component] = cls
    return classes
