"""The workspace: main-memory CO representation (Sect. 5, Fig. 7).

"The workspace is constructed from the output tuples of the XNF query by
converting connections into pointers which allow traversing the structure
in any direction.  In addition we generate pointers to allow browsing all
elements of a component and all elements of a node which are connected to
a given component by a specified relationship."

Concretely: every component tuple becomes a :class:`CachedObject`;
connection tuples are *swizzled* into direct Python references held in
per-relationship adjacency lists (both directions).  Local updates are
recorded in an update log for later write-back (Sect. 2's CO update
operators: insert/read/update/delete plus connect/disconnect).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import CacheError
from repro.xnf.result import COResult
from repro.xnf.schema_graph import SchemaGraph


class CachedObject:
    """One component tuple in the workspace.

    Column values are accessible by subscript (``obj['ENAME']``) or as
    lowercase attributes (``obj.ename``), read-only through the latter;
    mutations go through :meth:`set` so they reach the update log.
    """

    __slots__ = ("workspace", "component", "oid", "values", "deleted",
                 "is_new")

    def __init__(self, workspace: "Workspace", component: str, oid,
                 values: list):
        self.workspace = workspace
        self.component = component
        self.oid = oid
        self.values = values
        self.deleted = False
        self.is_new = False

    # -- value access ----------------------------------------------------
    def _position(self, column: str) -> int:
        positions = self.workspace.column_positions[self.component]
        try:
            return positions[column.upper()]
        except KeyError:
            raise CacheError(
                f"component {self.component} has no column {column!r}"
            ) from None

    def __getitem__(self, column: str):
        return self.values[self._position(column)]

    def get(self, column: str):
        return self.values[self._position(column)]

    def __getattr__(self, name: str):
        # __getattr__ only fires for names not found normally; treat
        # them as column lookups.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.values[self._position(name)]
        except CacheError:
            raise AttributeError(name) from None

    def set(self, column: str, value) -> None:
        """Update a column locally, logging for write-back."""
        self.workspace.update_object(self, column, value)

    def as_dict(self) -> dict:
        columns = self.workspace.components_columns[self.component]
        return dict(zip(columns, self.values))

    # -- navigation (swizzled pointers) ----------------------------------
    def children(self, relationship: Optional[str] = None) -> list:
        return self.workspace.children_of(self, relationship)

    def parents(self, relationship: Optional[str] = None) -> list:
        return self.workspace.parents_of(self, relationship)

    def __repr__(self) -> str:
        flag = " deleted" if self.deleted else ""
        return (f"<{self.component}:{self.oid}{flag} "
                f"{dict(list(self.as_dict().items())[:3])}>")


@dataclass
class LogEntry:
    """One local change awaiting write-back."""

    operation: str  # update | insert | delete | connect | disconnect
    target: str  # component or relationship name
    payload: dict = field(default_factory=dict)


class Workspace:
    """Swizzled, navigable, locally-updatable image of a COResult."""

    def __init__(self, result: COResult):
        self.schema: SchemaGraph = result.schema
        self.components_columns: dict[str, list[str]] = {}
        self.column_positions: dict[str, dict[str, int]] = {}
        self.objects: dict[str, list[CachedObject]] = {}
        self.by_oid: dict[tuple[str, object], CachedObject] = {}
        #: relationship -> parent object -> list of child tuples
        self._children: dict[str, dict[int, list[tuple]]] = {}
        #: relationship -> child object -> list of parent objects
        self._parents: dict[str, dict[int, list[CachedObject]]] = {}
        self.relationship_children: dict[str, tuple[str, ...]] = {}
        self.relationship_parent: dict[str, str] = {}
        self.relationship_role: dict[str, str] = {}
        self.relationship_attributes: dict[str, tuple[str, ...]] = {}
        #: (rel, id(parent), ids(children)) -> attribute dicts, one per
        #: parallel connection between the same partners
        self._connection_attributes: dict[tuple, list[dict]] = {}
        self.log: list[LogEntry] = []
        self.dangling_connections = 0
        self._new_oid_counter = itertools.count(1)
        self._load(result)

    # ------------------------------------------------------------------
    # Construction (pointer swizzling)
    # ------------------------------------------------------------------
    def _load(self, result: COResult) -> None:
        for name, stream in result.components.items():
            columns = [c.upper() for c in stream.columns]
            self.components_columns[name] = columns
            self.column_positions[name] = {
                c: i for i, c in enumerate(columns)
            }
            bucket: list[CachedObject] = []
            for oid, row in zip(stream.oids, stream.rows):
                obj = CachedObject(self, name, oid, list(row))
                bucket.append(obj)
                self.by_oid[(name, oid)] = obj
            self.objects[name] = bucket
        for name, stream in result.relationships.items():
            self.relationship_children[name] = stream.children
            self.relationship_parent[name] = stream.parent
            self.relationship_role[name] = stream.role
            self.relationship_attributes[name] = stream.attribute_names
            width = 1 + len(stream.children)
            children_map: dict[int, list[tuple]] = {}
            parents_map: dict[int, list[CachedObject]] = {}
            for connection in stream.connections:
                parent = self.by_oid.get((stream.parent, connection[0]))
                child_objects = []
                missing = parent is None
                for child_name, child_oid in zip(stream.children,
                                                 connection[1:]):
                    child = self.by_oid.get((child_name, child_oid))
                    if child is None:
                        missing = True
                        break
                    child_objects.append(child)
                if missing:
                    # Partner not taken into the view: the connection
                    # cannot be swizzled (projection dropped a partner).
                    self.dangling_connections += 1
                    continue
                children_map.setdefault(id(parent), []).append(
                    tuple(child_objects))
                for child in child_objects:
                    parents_map.setdefault(id(child), []).append(parent)
                if stream.attribute_names:
                    key = (name, id(parent),
                           tuple(id(c) for c in child_objects))
                    self._connection_attributes.setdefault(
                        key, []).append(dict(
                            zip(stream.attribute_names,
                                connection[width:])))
            self._children[name] = children_map
            self._parents[name] = parents_map

    # ------------------------------------------------------------------
    # Browsing
    # ------------------------------------------------------------------
    def component_names(self) -> list[str]:
        return list(self.objects)

    def relationship_names(self) -> list[str]:
        return list(self._children)

    def extent(self, component: str) -> list[CachedObject]:
        """All live objects of a component (the container class of
        Sect. 5.2)."""
        try:
            bucket = self.objects[component.upper()]
        except KeyError:
            raise CacheError(f"no component {component!r} in cache") \
                from None
        return [o for o in bucket if not o.deleted]

    def object_count(self) -> int:
        return sum(len(self.extent(c)) for c in self.objects)

    def find(self, component: str, **equalities) -> list[CachedObject]:
        """Simple predicate scan over an extent."""
        wanted = {k.upper(): v for k, v in equalities.items()}
        found = []
        for obj in self.extent(component):
            if all(obj.get(column) == value
                   for column, value in wanted.items()):
                found.append(obj)
        return found

    def children_of(self, obj: CachedObject,
                    relationship: Optional[str] = None) -> list:
        """Child objects connected to ``obj``.

        For binary relationships returns the child objects; for n-ary
        relationships returns tuples of partners.  Without an explicit
        relationship name, all outgoing relationships contribute.
        """
        names = ([relationship.upper()] if relationship is not None
                 else [n for n, p in self.relationship_parent.items()
                       if p == obj.component])
        found: list = []
        for name in names:
            relation = self._children.get(name)
            if relation is None:
                if relationship is not None:
                    raise CacheError(f"no relationship {relationship!r}")
                continue
            for child_tuple in relation.get(id(obj), ()):
                live = [c for c in child_tuple if not c.deleted]
                if len(live) != len(child_tuple):
                    continue
                if len(child_tuple) == 1:
                    found.append(child_tuple[0])
                else:
                    found.append(child_tuple)
        return found

    def parents_of(self, obj: CachedObject,
                   relationship: Optional[str] = None
                   ) -> list[CachedObject]:
        names = ([relationship.upper()] if relationship is not None
                 else [n for n, cs in self.relationship_children.items()
                       if obj.component in cs])
        found: list[CachedObject] = []
        for name in names:
            relation = self._parents.get(name)
            if relation is None:
                if relationship is not None:
                    raise CacheError(f"no relationship {relationship!r}")
                continue
            found.extend(p for p in relation.get(id(obj), ())
                         if not p.deleted)
        return found

    def connection_attributes(self, relationship: str,
                              parent: CachedObject,
                              *children: CachedObject) -> dict:
        """Attribute values of one connection (Sect. 2's relationship
        attributes); empty dict when the relationship declares none.
        With parallel connections between the same partners, returns
        the first — :meth:`connection_attribute_list` returns all."""
        found = self.connection_attribute_list(relationship, parent,
                                               *children)
        return dict(found[0]) if found else {}

    def connection_attribute_list(self, relationship: str,
                                  parent: CachedObject,
                                  *children: CachedObject) -> list[dict]:
        """Attribute dicts of every parallel connection between the
        given partners."""
        name = relationship.upper()
        if name not in self._children:
            raise CacheError(f"no relationship {relationship!r}")
        key = (name, id(parent), tuple(id(c) for c in children))
        return [dict(d) for d in
                self._connection_attributes.get(key, [])]

    def connections_of(self, relationship: str
                       ) -> Iterator[tuple[CachedObject, tuple]]:
        """(parent, child-tuple) pairs of one relationship."""
        name = relationship.upper()
        relation = self._children.get(name)
        if relation is None:
            raise CacheError(f"no relationship {relationship!r}")
        parent_component = self.relationship_parent[name]
        for parent in self.extent(parent_component):
            for child_tuple in relation.get(id(parent), ()):
                if all(not c.deleted for c in child_tuple):
                    yield parent, child_tuple

    # ------------------------------------------------------------------
    # Local updates (logged for write-back)
    # ------------------------------------------------------------------
    def update_object(self, obj: CachedObject, column: str,
                      value) -> None:
        if obj.deleted:
            raise CacheError("cannot update a deleted object")
        position = obj._position(column)
        old = obj.values[position]
        if old == value:
            return
        obj.values[position] = value
        self.log.append(LogEntry("update", obj.component, {
            "oid": obj.oid, "column": column.upper(),
            "old": old, "new": value, "is_new": obj.is_new,
        }))

    def insert_object(self, component: str, values: dict) -> CachedObject:
        name = component.upper()
        if name not in self.objects:
            raise CacheError(f"no component {component!r} in cache")
        columns = self.components_columns[name]
        row = [values.get(c) if c in values else
               values.get(c.lower()) for c in columns]
        provided = {k.upper() for k in values}
        unknown = provided - set(columns)
        if unknown:
            raise CacheError(f"unknown columns for {component}: "
                             f"{sorted(unknown)}")
        oid = ("new", next(self._new_oid_counter))
        obj = CachedObject(self, name, oid, row)
        obj.is_new = True
        self.objects[name].append(obj)
        self.by_oid[(name, oid)] = obj
        self.log.append(LogEntry("insert", name, {
            "oid": oid, "values": dict(zip(columns, row)),
        }))
        return obj

    def delete_object(self, obj: CachedObject) -> None:
        if obj.deleted:
            return
        obj.deleted = True
        self.log.append(LogEntry("delete", obj.component, {
            "oid": obj.oid, "is_new": obj.is_new,
            "values": obj.as_dict(),
        }))

    def connect(self, relationship: str, parent: CachedObject,
                *children: CachedObject) -> None:
        name = relationship.upper()
        if name not in self._children:
            raise CacheError(f"no relationship {relationship!r}")
        expected = self.relationship_children[name]
        if len(children) != len(expected):
            raise CacheError(
                f"relationship {relationship} connects "
                f"{len(expected)} children, got {len(children)}"
            )
        if parent.component != self.relationship_parent[name]:
            raise CacheError(
                f"{parent.component} is not the parent of {relationship}"
            )
        for child, expected_name in zip(children, expected):
            if child.component != expected_name:
                raise CacheError(
                    f"{child.component} is not a child of {relationship}"
                )
        child_tuple = tuple(children)
        existing = self._children[name].setdefault(id(parent), [])
        if child_tuple in existing:
            return
        existing.append(child_tuple)
        for child in children:
            self._parents[name].setdefault(id(child), []).append(parent)
        self.log.append(LogEntry("connect", name, {
            "parent": parent, "children": child_tuple,
        }))

    def disconnect(self, relationship: str, parent: CachedObject,
                   *children: CachedObject) -> None:
        name = relationship.upper()
        if name not in self._children:
            raise CacheError(f"no relationship {relationship!r}")
        child_tuple = tuple(children)
        bucket = self._children[name].get(id(parent), [])
        if child_tuple not in bucket:
            raise CacheError("no such connection to disconnect")
        bucket.remove(child_tuple)
        for child in children:
            parent_bucket = self._parents[name].get(id(child), [])
            if parent in parent_bucket:
                parent_bucket.remove(parent)
        self.log.append(LogEntry("disconnect", name, {
            "parent": parent, "children": child_tuple,
        }))

    @property
    def dirty(self) -> bool:
        return bool(self.log)

    def clear_log(self) -> None:
        self.log.clear()
        for bucket in self.objects.values():
            for obj in bucket:
                obj.is_new = False
