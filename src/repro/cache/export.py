"""Exporting cached composite objects to other representations.

Sect. 5.2/6: the XNF API "is designed to be multi-lingual ... adequate
main-memory representations of the extracted COs as well as efficient
navigation and manipulation facilities are inherently supported" and
"XNF does not bind itself to only one kind of application language".

Besides the generated-class binding (:mod:`repro.cache.objects`), this
module offers:

* :func:`to_documents` — each root object as a nested dict tree (the
  natural hand-off to JSON-speaking environments).  Object sharing is
  preserved with ``"$ref"`` markers so shared components (e2, s3 in
  Fig. 1) serialize once per root.
* :func:`schema_graph_dot` / :func:`instance_graph_dot` — Graphviz DOT
  renderings of the CO schema graph and instance graphs, reproducing
  the two panels of the paper's Fig. 1.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.workspace import CachedObject, Workspace
from repro.xnf.schema_graph import SchemaGraph


def _object_key(obj: CachedObject) -> str:
    return f"{obj.component}:{obj.oid}"


def to_documents(workspace: Workspace,
                 roots: Optional[list[CachedObject]] = None,
                 max_depth: int = 12) -> list[dict]:
    """Serialize each root's composite object as a nested document.

    Children appear under keys named after the relationship's role.
    Within one document, an object revisited (sharing or a cycle) is
    emitted as ``{"$ref": key}`` pointing at its first, full occurrence
    (which carries ``"$id"``).
    """
    if roots is None:
        roots = []
        for name in workspace.component_names():
            if name in workspace.schema.roots:
                roots.extend(workspace.extent(name))

    def render(obj: CachedObject, depth: int, seen: set) -> dict:
        key = _object_key(obj)
        if key in seen:
            return {"$ref": key}
        seen.add(key)
        document: dict = {"$id": key, "$component": obj.component}
        document.update(obj.as_dict())
        if depth >= max_depth:
            return document
        for rel_name, parent in workspace.relationship_parent.items():
            if parent != obj.component:
                continue
            role = workspace.relationship_role.get(rel_name) or rel_name
            children = workspace.children_of(obj, rel_name)
            if not children:
                continue
            rendered = []
            for child in children:
                if isinstance(child, tuple):
                    rendered.append([render(c, depth + 1, seen)
                                     for c in child])
                else:
                    rendered.append(render(child, depth + 1, seen))
            document[role.lower()] = rendered
        return document

    return [render(root, 0, set()) for root in roots]


def schema_graph_dot(schema: SchemaGraph) -> str:
    """The Fig. 1 schema graph: component nodes, relationship edges."""
    lines = ["digraph schema {", "  rankdir=TB;",
             "  node [shape=box];"]
    for component in schema.components:
        shape = ("box, peripheries=2" if component in schema.roots
                 else "box")
        lines.append(f'  "{component}" [shape={shape}];')
    for edge in schema.edges:
        for child in edge.children:
            lines.append(
                f'  "{edge.parent}" -> "{child}" '
                f'[label="{edge.role.lower()}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def instance_graph_dot(workspace: Workspace,
                       label_columns: Optional[dict[str, str]] = None
                       ) -> str:
    """The Fig. 1 instance graphs: one node per cached tuple, one edge
    per connection.  ``label_columns`` picks the column shown per
    component (defaults to the first column)."""
    label_columns = {k.upper(): v
                     for k, v in (label_columns or {}).items()}
    lines = ["digraph instances {", "  rankdir=TB;",
             "  node [shape=ellipse, fontsize=10];"]
    for name in workspace.component_names():
        columns = workspace.components_columns[name]
        label_col = label_columns.get(name, columns[0] if columns
                                      else None)
        for obj in workspace.extent(name):
            label = obj.get(label_col) if label_col else obj.oid
            lines.append(
                f'  "{_object_key(obj)}" [label="{label}"];'
            )
    for rel_name in workspace.relationship_names():
        role = workspace.relationship_role.get(rel_name, rel_name)
        for parent, child_tuple in workspace.connections_of(rel_name):
            for child in child_tuple:
                lines.append(
                    f'  "{_object_key(parent)}" -> '
                    f'"{_object_key(child)}" '
                    f'[label="{role.lower()}", fontsize=8];'
                )
    lines.append("}")
    return "\n".join(lines)
