"""Cursors over the CO cache.

Sect. 2: "XNF API provides two kinds of cursors that support navigation
along the tuples of a node table (independent cursors) as well as
navigation from parent to child tuples along relationship edges
(dependent cursors)."  We add the path cursor Sect. 2's path expressions
imply: it walks a path on the CO structure and yields the (distinct)
target tuples reachable from a starting set.

All cursors are pure main-memory iterations over swizzled pointers —
no server round trips (that is the point of the cache; Sect. 5.2's
100k-tuples-per-second claim is measured on exactly these operations).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CacheError
from repro.cache.workspace import CachedObject, Workspace


class Cursor:
    """Common positioning protocol: open/fetch/next/prev/reset."""

    def __init__(self) -> None:
        self._items: list[CachedObject] = []
        self._position = -1

    def _load(self, items: list[CachedObject]) -> None:
        self._items = items
        self._position = -1

    # -- iteration -------------------------------------------------------
    def __iter__(self) -> Iterator[CachedObject]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # -- explicit positioning (the SQL-style cursor protocol) ------------
    def fetch_next(self) -> Optional[CachedObject]:
        if self._position + 1 >= len(self._items):
            return None
        self._position += 1
        return self._items[self._position]

    def fetch_prev(self) -> Optional[CachedObject]:
        if self._position <= 0:
            self._position = -1
            return None
        self._position -= 1
        return self._items[self._position]

    def current(self) -> Optional[CachedObject]:
        if 0 <= self._position < len(self._items):
            return self._items[self._position]
        return None

    def reset(self) -> None:
        self._position = -1

    def fetch_absolute(self, index: int) -> CachedObject:
        if not 0 <= index < len(self._items):
            raise CacheError(f"cursor position {index} out of range")
        self._position = index
        return self._items[index]


class IndependentCursor(Cursor):
    """Browses all tuples of one component table."""

    def __init__(self, workspace: Workspace, component: str):
        super().__init__()
        self.workspace = workspace
        self.component = component.upper()
        self._load(workspace.extent(component))

    def requery(self) -> None:
        """Re-snapshot the extent (after local inserts/deletes)."""
        self._load(self.workspace.extent(self.component))

    def __repr__(self) -> str:
        return f"<IndependentCursor {self.component} ({len(self)} rows)>"


class DependentCursor(Cursor):
    """Browses the children of a given parent along one relationship.

    Repositionable: ``position_on`` moves the cursor to another parent
    without rebuilding it, which is how applications iterate nested
    loops over the CO structure.
    """

    def __init__(self, workspace: Workspace, relationship: str,
                 parent: Optional[CachedObject] = None):
        super().__init__()
        self.workspace = workspace
        self.relationship = relationship.upper()
        if self.relationship not in workspace.relationship_parent:
            raise CacheError(f"no relationship {relationship!r}")
        self.parent: Optional[CachedObject] = None
        if parent is not None:
            self.position_on(parent)

    def position_on(self, parent: CachedObject) -> "DependentCursor":
        expected = self.workspace.relationship_parent[self.relationship]
        if parent.component != expected:
            raise CacheError(
                f"cursor over {self.relationship} expects parent "
                f"component {expected}, got {parent.component}"
            )
        self.parent = parent
        self._load(self.workspace.children_of(parent, self.relationship))
        return self

    def __repr__(self) -> str:
        return (f"<DependentCursor {self.relationship} on "
                f"{self.parent!r} ({len(self)} children)>")


class PathCursor(Cursor):
    """Browses the distinct tuples a path expression denotes.

    The path is resolved against the CO schema graph; traversal starts
    from all tuples of the path's head component (or an explicit list)
    and follows the swizzled pointers edge by edge.
    """

    def __init__(self, workspace: Workspace, path: str,
                 start: Optional[list[CachedObject]] = None):
        super().__init__()
        self.workspace = workspace
        self.path = path
        edges = workspace.schema.resolve_path(path)
        head = path.replace("->", ".").split(".")[0].upper()
        current = start if start is not None \
            else workspace.extent(head)
        parts = [p.upper() for p in path.replace("->", ".").split(".")
                 if p.strip()]
        target_names = self._targets_along(edges, parts)
        for edge, target in zip(edges, target_names):
            next_level: list[CachedObject] = []
            seen: set[int] = set()
            for obj in current:
                for child in workspace.children_of(obj, edge.name):
                    candidates = (child if isinstance(child, tuple)
                                  else (child,))
                    for candidate in candidates:
                        if candidate.component != target:
                            continue
                        if id(candidate) not in seen:
                            seen.add(id(candidate))
                            next_level.append(candidate)
            current = next_level
        self._load(current)

    @staticmethod
    def _targets_along(edges, parts) -> list[str]:
        """The child component chosen at each step of the path."""
        targets: list[str] = []
        index = 1
        for edge in edges:
            # parts[index] is either the edge name/role or the child.
            if index < len(parts) and parts[index] in (edge.name,
                                                       edge.role):
                index += 1
            if index < len(parts) and parts[index] in edge.children:
                targets.append(parts[index])
                index += 1
            else:
                targets.append(edge.children[0])
        return targets

    def __repr__(self) -> str:
        return f"<PathCursor {self.path!r} ({len(self)} rows)>"
