"""The XNF cache manager (Sect. 5.2, Fig. 7).

"There is a public method, called evaluate, which can take an XNF query
as input and construct an instance of an XNFCache by sending a request
to the database server, loading the catalog component, and converting
the heterogeneous stream of tuples delivered by the server into the
main-memory representation."

:class:`XNFCache` owns a :class:`~repro.cache.workspace.Workspace`, hands
out cursors, persists itself to disk ("for long transactions, XNF allows
the cache to be stored on disk and retrieved later, thereby protecting
the cache from client machine's failure"), and writes local changes back
through the updatability analysis of :mod:`repro.xnf.updates`.
"""

from __future__ import annotations

import pickle
from typing import Optional

from repro.errors import CacheError
from repro.cache.cursor import DependentCursor, IndependentCursor, PathCursor
from repro.cache.workspace import CachedObject, LogEntry, Workspace
from repro.xnf.result import ComponentStream, ConnectionStream, COResult
from repro.xnf.schema_graph import SchemaEdge, SchemaGraph
from repro.xnf.updates import (CacheWriteBack, analyze_xnf_box)

SNAPSHOT_FORMAT = 1


class XNFCache:
    """A client-side composite-object cache."""

    def __init__(self, result: COResult, translated=None,
                 catalog=None, transactions=None,
                 write_through: bool = False):
        self.workspace = Workspace(result)
        self.schema = result.schema
        self._translated = translated
        self._catalog = catalog
        self._transactions = transactions
        #: write-through mode: every local mutation is put back to the
        #: base tables immediately (one atomic statement each) instead
        #: of batching in the update log until ``write_back``.
        self.write_through = write_through
        self.component_updatability = {}
        self.relationship_updatability = {}
        if translated is not None and translated.xnf_box is not None:
            self.component_updatability, self.relationship_updatability = \
                analyze_xnf_box(translated.xnf_box)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def evaluate(cls, executable, catalog=None, transactions=None,
                 write_through: bool = False) -> "XNFCache":
        """Run an :class:`~repro.xnf.result.XNFExecutable` and cache it."""
        result = executable.run()
        return cls(result, translated=executable.translated,
                   catalog=catalog or executable.catalog,
                   transactions=transactions, write_through=write_through)

    # ------------------------------------------------------------------
    # Navigation API
    # ------------------------------------------------------------------
    def independent_cursor(self, component: str) -> IndependentCursor:
        return IndependentCursor(self.workspace, component)

    def dependent_cursor(self, relationship: str,
                         parent: Optional[CachedObject] = None
                         ) -> DependentCursor:
        return DependentCursor(self.workspace, relationship, parent)

    def path_cursor(self, path: str,
                    start: Optional[list[CachedObject]] = None
                    ) -> PathCursor:
        return PathCursor(self.workspace, path, start)

    def extent(self, component: str) -> list[CachedObject]:
        return self.workspace.extent(component)

    def find(self, component: str, **equalities) -> list[CachedObject]:
        return self.workspace.find(component, **equalities)

    def object_count(self) -> int:
        return self.workspace.object_count()

    # ------------------------------------------------------------------
    # Update API (CO update operators, Sect. 2)
    # ------------------------------------------------------------------
    def insert(self, component: str, **values) -> CachedObject:
        return self.workspace.insert_object(component, values)

    def delete(self, obj: CachedObject) -> None:
        self.workspace.delete_object(obj)

    def connect(self, relationship: str, parent: CachedObject,
                *children: CachedObject) -> None:
        self.workspace.connect(relationship, parent, *children)

    def disconnect(self, relationship: str, parent: CachedObject,
                   *children: CachedObject) -> None:
        self.workspace.disconnect(relationship, parent, *children)

    @property
    def dirty(self) -> bool:
        return self.workspace.dirty

    def pending_changes(self) -> list[LogEntry]:
        return list(self.workspace.log)

    def write_back(self, catalog=None, transactions=None) -> int:
        """Transfer local changes to the server, all-or-nothing."""
        return self._writer(catalog, transactions).apply(self.workspace)

    def _writer(self, catalog=None, transactions=None) -> CacheWriteBack:
        catalog = catalog or self._catalog
        transactions = transactions or self._transactions
        if catalog is None:
            raise CacheError("no catalog to write back to")
        if transactions is None:
            from repro.storage.transactions import TransactionManager
            transactions = TransactionManager(catalog)
        return CacheWriteBack(catalog, transactions,
                              self.component_updatability,
                              self.relationship_updatability)

    # ------------------------------------------------------------------
    # Write-through (updatable-view CRUD through the gateway)
    # ------------------------------------------------------------------
    def mutation_mark(self) -> int:
        """Log position before a mutation; pass to
        :meth:`flush_through`."""
        return len(self.workspace.log)

    def flush_through(self, mark: int) -> None:
        """Write-through mode: immediately put back the log entries
        recorded since ``mark`` (no-op otherwise).

        Rejection reverts the workspace to its pre-mutation state and
        raises :class:`~repro.errors.ViewUpdateError` — the object and
        the database never diverge.
        """
        if not self.write_through:
            return
        entries = self.workspace.log[mark:]
        if not entries:
            return
        del self.workspace.log[mark:]
        from repro.viewupdate.objects import apply_write_through
        apply_write_through(self, entries)

    # ------------------------------------------------------------------
    # Export (the multi-lingual API surface, Sect. 5.2)
    # ------------------------------------------------------------------
    def to_documents(self, roots=None, max_depth: int = 12) -> list[dict]:
        """Each root CO as a nested dict tree (JSON-ready)."""
        from repro.cache.export import to_documents
        return to_documents(self.workspace, roots=roots,
                            max_depth=max_depth)

    def schema_dot(self) -> str:
        """Graphviz DOT of the CO schema graph (Fig. 1, left)."""
        from repro.cache.export import schema_graph_dot
        return schema_graph_dot(self.schema)

    def instance_dot(self, label_columns=None) -> str:
        """Graphviz DOT of the instance graphs (Fig. 1, right)."""
        from repro.cache.export import instance_graph_dot
        return instance_graph_dot(self.workspace,
                                  label_columns=label_columns)

    # ------------------------------------------------------------------
    # Persistence (Sect. 3: protect the cache from client failure)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            pickle.dump(self._snapshot(), handle)

    @classmethod
    def load(cls, path: str, catalog=None, transactions=None,
             translated=None) -> "XNFCache":
        """Reload a saved cache.

        Pass the view's ``TranslatedXNF`` (e.g. from
        ``Database.xnf_executable``) to restore updatability metadata so
        the reloaded cache can still write back.

        Raises :class:`~repro.errors.CacheError` (never a bare
        unpickling crash) when the file is not a cache snapshot, is
        truncated/corrupt, or was written by an incompatible version.
        """
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as exc:
            raise CacheError(
                f"cannot load cache snapshot {path!r}: file is not a "
                f"readable snapshot ({exc})"
            ) from exc
        snapshot = _validate_snapshot(snapshot, path)
        result = _result_from_snapshot(snapshot)
        cache = cls(result, translated=translated, catalog=catalog,
                    transactions=transactions)
        for entry in snapshot["log"]:
            cache.workspace.log.append(
                LogEntry(entry["operation"], entry["target"],
                         _revive_payload(entry["payload"],
                                         cache.workspace))
            )
        return cache

    def _snapshot(self) -> dict:
        workspace = self.workspace
        components = {}
        for name, objects in workspace.objects.items():
            components[name] = {
                "columns": workspace.components_columns[name],
                "rows": [tuple(o.values) for o in objects
                         if not o.deleted],
                "oids": [o.oid for o in objects if not o.deleted],
            }
        relationships = {}
        for name in workspace.relationship_names():
            attribute_names = workspace.relationship_attributes.get(
                name, ())
            connections = []
            emitted_parallel: dict[tuple, int] = {}
            for parent, child_tuple in workspace.connections_of(name):
                record = (parent.oid,) + tuple(c.oid
                                               for c in child_tuple)
                if attribute_names:
                    all_values = workspace.connection_attribute_list(
                        name, parent, *child_tuple)
                    index = emitted_parallel.get(record, 0)
                    emitted_parallel[record] = index + 1
                    values = (all_values[index]
                              if index < len(all_values) else {})
                    record += tuple(values.get(a)
                                    for a in attribute_names)
                connections.append(record)
            relationships[name] = {
                "parent": workspace.relationship_parent[name],
                "children": workspace.relationship_children[name],
                "role": workspace.relationship_role[name],
                "attribute_names": tuple(attribute_names),
                "connections": connections,
            }
        log = [
            {"operation": e.operation, "target": e.target,
             "payload": _freeze_payload(e.payload)}
            for e in workspace.log
        ]
        return {
            "format": SNAPSHOT_FORMAT,
            "schema": {
                "components": self.schema.components,
                "roots": self.schema.roots,
                "edges": [(e.name, e.role, e.parent, e.children)
                          for e in self.schema.edges],
            },
            "components": components,
            "relationships": relationships,
            "log": log,
        }


#: Keys every loadable snapshot must carry (beyond the format tag).
_SNAPSHOT_KEYS = ("schema", "components", "relationships", "log")


def _validate_snapshot(snapshot: object, path: str) -> dict:
    """Shape-check a deserialized snapshot before reviving it."""
    if not isinstance(snapshot, dict):
        raise CacheError(
            f"cache snapshot {path!r} is not a snapshot mapping "
            f"(found {type(snapshot).__name__})"
        )
    found = snapshot.get("format")
    if found != SNAPSHOT_FORMAT:
        raise CacheError(
            f"cache snapshot {path!r} has unsupported format {found!r}; "
            f"this build reads format {SNAPSHOT_FORMAT}. Re-evaluate the "
            f"view and save a fresh snapshot."
        )
    missing = [key for key in _SNAPSHOT_KEYS if key not in snapshot]
    if missing:
        raise CacheError(
            f"cache snapshot {path!r} is incomplete: missing "
            f"{', '.join(missing)}"
        )
    schema = snapshot["schema"]
    if not isinstance(schema, dict) or not {"components", "roots",
                                            "edges"} <= set(schema):
        raise CacheError(
            f"cache snapshot {path!r} has a malformed schema section"
        )
    return snapshot


def _freeze_payload(payload: dict) -> dict:
    frozen = {}
    for key, value in payload.items():
        if isinstance(value, CachedObject):
            frozen[key] = {"$object$": (value.component, value.oid)}
        elif isinstance(value, tuple) and value and \
                all(isinstance(v, CachedObject) for v in value):
            frozen[key] = {"$objects$": [(v.component, v.oid)
                                         for v in value]}
        else:
            frozen[key] = value
    return frozen


def _revive_payload(payload: dict, workspace: Workspace) -> dict:
    revived = {}
    for key, value in payload.items():
        if isinstance(value, dict) and "$object$" in value:
            revived[key] = workspace.by_oid[tuple(value["$object$"])]
        elif isinstance(value, dict) and "$objects$" in value:
            revived[key] = tuple(workspace.by_oid[tuple(ref)]
                                 for ref in value["$objects$"])
        else:
            revived[key] = value
    return revived


def _result_from_snapshot(snapshot: dict) -> COResult:
    schema = SchemaGraph(
        components=list(snapshot["schema"]["components"]),
        edges=[SchemaEdge(*e) for e in snapshot["schema"]["edges"]],
        roots=list(snapshot["schema"]["roots"]),
    )
    components = {}
    for number, (name, data) in enumerate(snapshot["components"].items()):
        stream = ComponentStream(name=name, number=number,
                                 columns=list(data["columns"]))
        stream.rows = [tuple(r) for r in data["rows"]]
        stream.oids = list(data["oids"])
        components[name] = stream
    relationships = {}
    for number, (name, data) in enumerate(
            snapshot["relationships"].items()):
        relationships[name] = ConnectionStream(
            name=name, number=1000 + number,
            role=data["role"], parent=data["parent"],
            children=tuple(data["children"]),
            connections=[tuple(c) for c in data["connections"]],
            attribute_names=tuple(data.get("attribute_names", ())),
        )
    return COResult(schema=schema, components=components,
                    relationships=relationships)
