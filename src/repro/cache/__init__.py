"""CO cache: workspace, cursors, cache manager, object binding."""

from repro.cache.cursor import (Cursor, DependentCursor, IndependentCursor,
                                PathCursor)
from repro.cache.export import (instance_graph_dot, schema_graph_dot,
                                to_documents)
from repro.cache.manager import XNFCache
from repro.cache.matview import (MaterializedView,
                                 MaterializedViewRegistry, co_canonical,
                                 co_results_equal)
from repro.cache.objects import BoundObject, Extent, bind_classes
from repro.cache.workspace import CachedObject, LogEntry, Workspace

__all__ = [
    "Cursor", "DependentCursor", "IndependentCursor", "PathCursor",
    "instance_graph_dot", "schema_graph_dot", "to_documents",
    "XNFCache",
    "MaterializedView", "MaterializedViewRegistry",
    "co_canonical", "co_results_equal",
    "BoundObject", "Extent", "bind_classes",
    "CachedObject", "LogEntry", "Workspace",
]
