"""Column provenance and translatability classification.

The *get* direction of a view is its QGM box.  A write against the view
is translatable when every written output column traces — through the
box tree — to exactly one stored base column, and the view's shape
guarantees each base row surfaces at most once:

* **single-source** views (restriction/projection chains over one base
  table, nested views included) translate fully: INSERT, UPDATE and
  DELETE all have an unambiguous put-back;
* **key-preserved joins** translate partially: all join sides but one
  (the *anchor*) must be key-bound — their unique key equated, through
  the join predicates, to expressions over the anchor — so anchor rows
  appear at most once and UPDATE/DELETE against anchor-traced columns
  are sound;
* everything else (aggregation, DISTINCT, set operations, outer joins,
  subquery quantifiers, computed columns, non-anchor columns) is
  rejected with a :class:`~repro.errors.ViewUpdateError` naming the
  offending box/column and the reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ViewUpdateError
from repro.qgm.model import (BaseBox, HeadColumn, QRef, Quantifier, RidRef,
                             SelectBox, quantifiers_in, replace_qrefs,
                             trace_column)
from repro.sql import ast

#: Head column appended to a join view's box exposing the anchor rid.
ANCHOR_RID = "$ARID$"


@dataclass
class KeyBinding:
    """How one key-bound join side is reached from the anchor.

    ``pairs`` are (partner_column, anchor_expression) equalities — the
    anchor expression is a base-level AST over the anchor table's
    columns, so the dynamic check can re-find the partner row from a
    stored anchor row alone.
    """

    quantifier: Quantifier
    pairs: list[tuple[str, ast.Expression]] = field(default_factory=list)


@dataclass
class ViewWritePlan:
    """The put-back translation recipe for one view."""

    name: str
    box: SelectBox
    #: single-source only: base table name, view column -> base-level
    #: AST (a ColumnRef for writable columns), and the view's
    #: selection predicates rewritten over base columns.
    single_source: bool = False
    table: Optional[str] = None
    base_ast: dict[str, ast.Expression] = field(default_factory=dict)
    predicates: list[ast.Expression] = field(default_factory=list)
    #: join path only: the writable side plus the key-bound partners.
    anchor: Optional[Quantifier] = None
    key_bindings: list[KeyBinding] = field(default_factory=list)
    #: view column (upper) -> (source quantifier qid, base column) for
    #: join views; None marks a computed column.
    column_sources: dict[str, Optional[tuple[int, str]]] = \
        field(default_factory=dict)

    # -- write-side lookups -------------------------------------------
    def writable_base_column(self, column: str) -> str:
        """The unique base column a written view column maps to."""
        upper = column.upper()
        if self.single_source:
            expr = self.base_ast.get(upper)
            if expr is None:
                raise ViewUpdateError(
                    "view has no such column", box=self.box.label,
                    column=upper)
            if not isinstance(expr, ast.ColumnRef):
                raise ViewUpdateError(
                    "cannot write a computed column", box=self.box.label,
                    column=upper,
                    reason="it does not trace to a unique stored column")
            return expr.column
        source = self.column_sources.get(upper, "missing")
        if source == "missing":
            raise ViewUpdateError(
                "view has no such column", box=self.box.label, column=upper)
        if source is None:
            raise ViewUpdateError(
                "cannot write a computed column", box=self.box.label,
                column=upper,
                reason="it does not trace to a unique stored column")
        qid, base_column = source
        if qid != self.anchor.qid:
            raise ViewUpdateError(
                "cannot write through a key-bound join side",
                box=self.box.label, column=upper,
                reason=f"it traces to table "
                       f"{self.anchor_partner_label(qid)}, which the join "
                       f"only looks up; only columns of the anchor table "
                       f"{self.anchor.box.table.name} are writable")
        return base_column

    def anchor_partner_label(self, qid: int) -> str:
        for binding in self.key_bindings:
            if binding.quantifier.qid == qid:
                return binding.quantifier.box.table.name
        return f"q{qid}"


def _qref_is(expr, quantifier) -> bool:
    return isinstance(expr, QRef) and expr.quantifier is quantifier


def _reject_kind(box, name: str) -> ViewUpdateError:
    reasons = {
        "groupby": "aggregation collapses base rows; no row-level "
                   "put-back exists",
        "setop": "set operations lose row provenance",
        "outerjoin": "outer joins produce NULL-padded rows with no "
                     "base image",
        "xnf": "target an XNF view's component as "
               "<view>.<component> instead",
    }
    reason = reasons.get(box.kind, f"a {box.kind} derivation is not "
                                   f"translatable")
    return ViewUpdateError(f"view {name!r} is not updatable",
                           box=box.label, reason=reason)


def _single_source_of(box: SelectBox, name: str):
    """Recursively flatten a restriction/projection chain.

    Returns ``(table, base_ast, predicates)`` where ``base_ast`` maps
    every head column (upper) to an AST over the base table's columns
    (plain :class:`ast.ColumnRef` for stored columns) and
    ``predicates`` are the accumulated selection predicates, also over
    base columns.  Raises :class:`ViewUpdateError` when the chain is
    not single-source.
    """
    if not isinstance(box, SelectBox):
        raise _reject_kind(box, name)
    if box.distinct:
        raise ViewUpdateError(
            f"view {name!r} is not updatable", box=box.label,
            reason="DISTINCT merges duplicate rows; the put-back of one "
                   "view row is ambiguous")
    for q in box.body_quantifiers:
        if q.qtype != Quantifier.F:
            raise ViewUpdateError(
                f"view {name!r} is not updatable", box=box.label,
                reason=f"derivation contains a {q.qtype}-quantifier "
                       f"(subquery) over {q.box.label!r}")
    foreach = box.foreach_quantifiers()
    if len(foreach) != 1:
        raise ViewUpdateError(
            f"view {name!r} is not updatable", box=box.label,
            reason="derivation does not range over exactly one table")
    quantifier = foreach[0]
    inner = quantifier.box
    if isinstance(inner, BaseBox):
        table = inner.table
        inner_ast = {c.name.upper(): ast.ColumnRef(None, c.name.upper())
                     for c in table.columns}
        predicates: list[ast.Expression] = []
    else:
        table, inner_ast, predicates = _single_source_of(inner, name)

    def to_base(expr: ast.Expression) -> ast.Expression:
        def mapping(leaf):
            if isinstance(leaf, RidRef):
                raise ViewUpdateError(
                    f"view {name!r} is not updatable", box=box.label,
                    reason="derivation exposes row identity, which has "
                           "no base-level rewrite")
            source = inner_ast.get(leaf.column.upper())
            if source is None:
                raise ViewUpdateError(
                    f"view {name!r} is not updatable", box=box.label,
                    column=leaf.column.upper(),
                    reason="referenced column vanished in the nested "
                           "derivation")
            return source
        return replace_qrefs(expr, mapping)

    base_ast: dict[str, ast.Expression] = {}
    for column in box.head:
        if column.name.startswith("$"):
            continue
        base_ast[column.name.upper()] = to_base(column.expression)
    predicates = list(predicates)
    predicates.extend(to_base(p) for p in box.predicates)
    return table, base_ast, predicates


def _unique_keys(table, catalog) -> list[set[str]]:
    keys: list[set[str]] = []
    if table.primary_key:
        keys.append({c.upper() for c in table.primary_key})
    if catalog is not None:
        for index in catalog.indexes_on(table.name):
            if getattr(index, "unique", False):
                keys.append({c.upper() for c in index.column_names})
    return keys


def _analyze_join(box: SelectBox, name: str, catalog) -> ViewWritePlan:
    """Classify a one-level join box: key-preserved or rejected."""
    foreach = box.foreach_quantifiers()
    for q in box.body_quantifiers:
        if q.qtype != Quantifier.F:
            raise ViewUpdateError(
                f"view {name!r} is not updatable", box=box.label,
                reason=f"derivation contains a {q.qtype}-quantifier "
                       f"(subquery) over {q.box.label!r}")
        if not isinstance(q.box, BaseBox):
            raise ViewUpdateError(
                f"view {name!r} is not updatable", box=box.label,
                reason=f"join side {q.box.label!r} is itself derived; "
                       f"only joins of base tables are key-preservable "
                       f"here")

    # Which columns of each side are equated to expressions over the
    # *other* sides?  (candidate key bindings)
    bound: dict[int, list[tuple[str, ast.Expression]]] = \
        {q.qid: [] for q in foreach}
    for predicate in box.join_predicates():
        if not (isinstance(predicate, ast.BinaryOp)
                and predicate.op == "="):
            continue
        for mine, other in ((predicate.left, predicate.right),
                            (predicate.right, predicate.left)):
            if isinstance(mine, QRef) \
                    and mine.quantifier.qid in bound \
                    and mine.quantifier not in quantifiers_in(other):
                bound[mine.quantifier.qid].append(
                    (mine.column.upper(), other))

    key_bound: dict[int, list[tuple[str, ast.Expression]]] = {}
    for q in foreach:
        columns = {c for c, _ in bound[q.qid]}
        for key in _unique_keys(q.box.table, catalog):
            if key <= columns:
                key_bound[q.qid] = [
                    (c, e) for c, e in bound[q.qid] if c in key]
                break

    anchors = [q for q in foreach if q.qid not in key_bound]
    if len(anchors) > 1:
        raise ViewUpdateError(
            f"view {name!r} is not updatable", box=box.label,
            reason=f"join is not key-preserving: sides "
                   f"{[q.box.table.name for q in anchors]} are all "
                   f"unbound (no unique key of theirs is equated through "
                   f"the join predicates)")
    anchor = anchors[0] if anchors else foreach[0]

    bindings: list[KeyBinding] = []
    for q in foreach:
        if q is anchor:
            continue
        pairs: list[tuple[str, ast.Expression]] = []

        def to_anchor_ast(leaf):
            if not isinstance(leaf, QRef):
                raise ViewUpdateError(
                    f"view {name!r} is not updatable", box=box.label,
                    reason="join predicate references row identity")
            return ast.ColumnRef(None, leaf.column.upper())

        for column, expr in key_bound[q.qid]:
            if quantifiers_in(expr) != {anchor}:
                raise ViewUpdateError(
                    f"view {name!r} is not updatable", box=box.label,
                    reason=f"join side {q.box.table.name} is bound "
                           f"through another joined table, not the "
                           f"anchor {anchor.box.table.name}; chained "
                           f"key bindings are not supported")
            pairs.append((column, replace_qrefs(expr, to_anchor_ast)))
        bindings.append(KeyBinding(quantifier=q, pairs=pairs))

    sources: dict[str, Optional[tuple[int, str]]] = {}
    for column in box.head:
        if column.name.startswith("$"):
            continue
        traced = trace_column(box, column.name)
        if traced is not None and traced[0] in foreach:
            sources[column.name.upper()] = (traced[0].qid, traced[1])
        else:
            sources[column.name.upper()] = None

    if not box.has_head_column(ANCHOR_RID):
        box.head.append(HeadColumn(ANCHOR_RID, RidRef(anchor)))
    return ViewWritePlan(name=name, box=box, single_source=False,
                         anchor=anchor, key_bindings=bindings,
                         column_sources=sources)


def analyze_view_box(box, name: str, catalog=None) -> ViewWritePlan:
    """Classify ``box`` (the view's derivation) for put-back.

    Returns a :class:`ViewWritePlan`; raises
    :class:`~repro.errors.ViewUpdateError` naming the box and the reason
    when no sound translation exists.
    """
    if not isinstance(box, SelectBox):
        raise _reject_kind(box, name)
    if box.distinct:
        raise ViewUpdateError(
            f"view {name!r} is not updatable", box=box.label,
            reason="DISTINCT merges duplicate rows; the put-back of one "
                   "view row is ambiguous")
    foreach = box.foreach_quantifiers()
    if len(foreach) <= 1:
        table, base_ast, predicates = _single_source_of(box, name)
        return ViewWritePlan(name=name, box=box, single_source=True,
                             table=table.name, base_ast=base_ast,
                             predicates=predicates)
    return _analyze_join(box, name, catalog)
