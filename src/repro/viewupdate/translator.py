"""Rewrite view DML into base-table form (the *put* translation).

Single-source views translate at the AST level: view column references
(in WHERE and in SET value expressions) are substituted with their
base-level definitions, the view's selection predicates are conjoined
into the WHERE, and the result is an ordinary base-table statement the
existing DML machinery qualifies through the shared plan cache — the
view path costs one dictionary-driven AST rewrite over the hand-written
statement.

Key-preserved joins qualify through the *view* instead: the view's box
(with the anchor rid appended to its head by the provenance analysis)
is wrapped in a qualification box producing ``(anchor_rid, value...)``
rows, compiled through the normal pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ViewUpdateError
from repro.qgm.builder import Scope, validate_subquery_positions
from repro.qgm.model import (HeadColumn, OutputStream, QGMGraph, QRef,
                             Quantifier, SelectBox, TopBox)
from repro.sql import ast
from repro.viewupdate.provenance import ANCHOR_RID, ViewWritePlan


def reject_subqueries(expr: Optional[ast.Expression],
                      plan: ViewWritePlan) -> None:
    """View DML predicates must be subquery-free.

    A subquery's inner scope could capture the view's (renamed) columns;
    rewriting them soundly requires scope analysis this translation does
    not attempt — reject instead of guessing.
    """
    if expr is None:
        return
    for node in (expr, *ast.walk_expression(expr)):
        if isinstance(node, (ast.Exists, ast.InSubquery,
                             ast.ScalarSubquery)):
            raise ViewUpdateError(
                "subqueries are not supported in view DML",
                box=plan.box.label,
                reason="the subquery's scope could capture renamed view "
                       "columns")


def rewrite_to_base(expr: ast.Expression,
                    plan: ViewWritePlan) -> ast.Expression:
    """Substitute view column references with their base definitions."""
    def mapping(ref: ast.ColumnRef) -> ast.Expression:
        if ref.table is not None \
                and ref.table.upper() not in (plan.name.upper(),
                                              plan.box.label.upper()):
            raise ViewUpdateError(
                f"unknown qualifier {ref.table!r} in view DML",
                box=plan.box.label, column=ref.column.upper())
        base = plan.base_ast.get(ref.column.upper())
        if base is None:
            raise ViewUpdateError(
                "view has no such column", box=plan.box.label,
                column=ref.column.upper())
        return base
    return ast.replace_column_refs(expr, mapping)


def translate_where(plan: ViewWritePlan,
                    where: Optional[ast.Expression]
                    ) -> Optional[ast.Expression]:
    """User WHERE (over view columns) -> base WHERE AND view predicates."""
    parts: list[ast.Expression] = []
    if where is not None:
        reject_subqueries(where, plan)
        parts.append(rewrite_to_base(where, plan))
    parts.extend(plan.predicates)
    return ast.conjoin(parts)


def translate_assignments(plan: ViewWritePlan,
                          assignments: tuple[ast.Assignment, ...]
                          ) -> list[tuple[str, str, ast.Expression]]:
    """[(view_column, base_column, base_value_expression)] triples.

    Raises when a written column is computed, duplicated, or (for join
    views) traces to a key-bound side.
    """
    seen: set[str] = set()
    translated: list[tuple[str, str, ast.Expression]] = []
    for assignment in assignments:
        view_column = assignment.column.upper()
        if view_column in seen:
            raise ViewUpdateError(
                "column assigned twice", box=plan.box.label,
                column=view_column)
        seen.add(view_column)
        base_column = plan.writable_base_column(view_column)
        reject_subqueries(assignment.value, plan)
        if plan.single_source:
            value = rewrite_to_base(assignment.value, plan)
        else:
            value = assignment.value
        translated.append((view_column, base_column, value))
    return translated


# ----------------------------------------------------------------------
# Join-path qualification: SELECT anchor_rid, <values> FROM <view box>
# ----------------------------------------------------------------------
def compile_join_qualification(pipeline, plan: ViewWritePlan,
                               where: Optional[ast.Expression],
                               value_expressions: list[ast.Expression]):
    """Plan ``SELECT anchor_rid, <exprs> FROM view WHERE pred``.

    The view's box already exposes the anchor rid as ``$ARID$`` (the
    provenance analysis appended it); this wraps it in a qualification
    box exactly like the base-table DML path wraps a BaseBox.
    """
    builder = pipeline.builder()
    box = SelectBox(label=f"viewdml_{plan.name}")
    quantifier = box.add_quantifier(
        Quantifier(plan.box, Quantifier.F, name=plan.name))
    scope = Scope()
    scope.bind(plan.name.replace(".", "_"), quantifier)
    head = [HeadColumn("$RID$", QRef(quantifier, ANCHOR_RID))]
    for position, expression in enumerate(value_expressions):
        reject_subqueries(expression, plan)
        resolved = builder._resolve(expression, scope, box)
        head.append(HeadColumn(f"V{position}", resolved))
    box.head = head
    if where is not None:
        reject_subqueries(where, plan)
        validate_subquery_positions(where)
        predicate = builder._resolve(where, scope, box)
        box.predicates.extend(
            p for p in ast.conjuncts(predicate)
            if p != ast.Literal(True))
    top = TopBox()
    top.outputs.append(OutputStream(name="VIEWDML", box=box))
    graph = QGMGraph(top=top, statement_kind="select")
    return pipeline.compile_graph(graph).plan
