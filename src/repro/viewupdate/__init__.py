"""Updatable composite-object views: lens-style put-back (ISSUE 10).

The read direction of this repo — XNF translation, materialized views,
the object gateway — moves data *out* of base tables.  This package is
the backward direction: DML statements (and gateway object mutations)
targeting a *view* are compiled into base-table DML by tracing each
written column through the view's QGM to a unique base column, in the
spirit of relational lenses ("Re-looking at the View Update Problem",
"Incremental Relational Lenses"): a *put* translation whose
well-definedness is checked both statically (shape classification) and
dynamically (get∘put identity on the touched rows, inside the same
transaction).

Modules:

* :mod:`repro.viewupdate.provenance` — classify a view's derivation box
  as translatable or not; trace view columns to base columns.
* :mod:`repro.viewupdate.translator` — rewrite view DML ASTs into
  base-table form (single-source views) or a view-qualification plan
  (key-preserved joins).
* :mod:`repro.viewupdate.executor` — the engine-side manager: apply the
  translated mutations atomically, emit ordinary ``TableDelta``s, and
  run the dynamic round-trip check.
* :mod:`repro.viewupdate.objects` — the gateway's write-through object
  CRUD (``co.update`` / ``co.insert_child`` / ``co.delete``).
"""

from repro.viewupdate.executor import ViewUpdateManager
from repro.viewupdate.provenance import ViewWritePlan, analyze_view_box

__all__ = ["ViewUpdateManager", "ViewWritePlan", "analyze_view_box"]
