"""Write-through put-back for gateway objects.

The deferred path batches local mutations in the workspace log until
``commit()``.  In *write-through* mode every object-API call
(``obj.update(...)``, ``extent.insert(...)``, ``obj.insert_child(...)``,
``obj.delete()``, plain attribute assignment) is put back to the base
tables immediately, as one atomic statement: the freshly logged entries
are sliced off the workspace log and applied through the view's
updatability analysis, with the same dynamic get∘put identity check the
SQL view-DML path runs.  On rejection the workspace is reverted to its
pre-call state and a :class:`~repro.errors.ViewUpdateError` names the
component, column and reason — the cached object graph and the database
never diverge.
"""

from __future__ import annotations

from repro.errors import (CacheError, StorageError, TypeCheckError,
                          UpdateError, ViewUpdateError)


def revert_entries(workspace, entries) -> None:
    """Undo the workspace effects of freshly logged ``entries``.

    Only sound for entries sliced off the log tail immediately after
    the mutation (write-through discipline): nothing else has observed
    the provisional state yet.
    """
    for entry in reversed(entries):
        payload = entry.payload
        if entry.operation == "update":
            obj = workspace.by_oid[(entry.target, payload["oid"])]
            obj.values[obj._position(payload["column"])] = payload["old"]
        elif entry.operation == "insert":
            obj = workspace.by_oid.pop((entry.target, payload["oid"]),
                                       None)
            if obj is not None:
                bucket = workspace.objects.get(entry.target, [])
                if obj in bucket:
                    bucket.remove(obj)
        elif entry.operation == "delete":
            obj = workspace.by_oid.get((entry.target, payload["oid"]))
            if obj is not None:
                obj.deleted = False
        elif entry.operation == "connect":
            parent, children = payload["parent"], payload["children"]
            bucket = workspace._children[entry.target].get(
                id(parent), [])
            if children in bucket:
                bucket.remove(children)
            for child in children:
                parents = workspace._parents[entry.target].get(
                    id(child), [])
                if parent in parents:
                    parents.remove(parent)
        elif entry.operation == "disconnect":
            parent, children = payload["parent"], payload["children"]
            workspace._children[entry.target].setdefault(
                id(parent), []).append(children)
            for child in children:
                workspace._parents[entry.target].setdefault(
                    id(child), []).append(parent)


def _final_writes(cache, entries) -> dict:
    """Fold a write batch into the final intended value per object
    column: later updates override insert values, connect/disconnect
    entries set the child's foreign-key columns, deletes drop the
    object from verification entirely."""
    written: dict = {}  # (component, oid) -> {BASE_COL: (view_col, v)}

    def note(component, oid, view_column, base_column, value):
        written.setdefault((component, oid), {})[base_column] = \
            (view_column, value)

    for entry in entries:
        payload = entry.payload
        if entry.operation in ("update", "insert"):
            info = cache.component_updatability.get(entry.target)
            if info is None or not info.updatable:
                continue  # the write-back itself already rejected
            if entry.operation == "update":
                pairs = {payload["column"]: payload["new"]}
            else:
                pairs = payload["values"]
            for view_column, value in pairs.items():
                base = info.column_map.get(view_column.upper())
                if base is not None:
                    note(entry.target, payload["oid"],
                         view_column.upper(), base, value)
        elif entry.operation == "delete":
            written.pop((entry.target, payload["oid"]), None)
        elif entry.operation in ("connect", "disconnect"):
            rel = cache.relationship_updatability.get(entry.target)
            if rel is None or rel.kind != "foreign_key":
                continue
            parent = payload["parent"]
            gone = entry.operation == "disconnect"
            for child in payload["children"]:
                for child_column, parent_column in rel.fk_pairs:
                    value = None if gone else parent.get(parent_column)
                    note(child.component, child.oid,
                         child_column.upper(), child_column.upper(),
                         value)
    return written


def _round_trip_check(cache, entries):
    """The object-path get∘put identity check, run inside the
    write-back transaction (a violation rolls everything back)."""
    def check(writer) -> None:
        catalog = writer.catalog
        for (component, oid), columns in \
                _final_writes(cache, entries).items():
            info = cache.component_updatability.get(component)
            if info is None or not info.updatable:
                continue
            table = catalog.table(info.table)
            rid = writer._new_rids.get((component, oid))
            if rid is None and isinstance(oid, int):
                rid = writer._current_rid(table.name, oid)
            if rid is None:
                continue
            row = table.fetch(rid)
            for base, (view_column, value) in columns.items():
                position = table.column_position(base)
                expected = table.columns[position].validate(value)
                if row[position] != expected:
                    raise ViewUpdateError(
                        "write does not round-trip", box=component,
                        column=view_column,
                        reason="re-reading the object yields a "
                               "different value than was written; "
                               "get∘put is not the identity, write "
                               "aborted")
    return check


def _sync_fk_columns(cache, entries) -> None:
    """Reflect connect/disconnect-driven foreign-key writes into the
    cached child objects, so a write-through cache shows exactly what
    the base tables now hold."""
    for entry in entries:
        if entry.operation not in ("connect", "disconnect"):
            continue
        rel = cache.relationship_updatability.get(entry.target)
        if rel is None or rel.kind != "foreign_key":
            continue
        parent = entry.payload["parent"]
        gone = entry.operation == "disconnect"
        for child in entry.payload["children"]:
            info = cache.component_updatability.get(child.component)
            if info is None or not info.updatable:
                continue
            reverse = {base: view
                       for view, base in info.column_map.items()}
            for child_column, parent_column in rel.fk_pairs:
                view_column = reverse.get(child_column.upper())
                if view_column is None:
                    continue
                value = None if gone else parent.get(parent_column)
                child.values[child._position(view_column)] = value


def apply_write_through(cache, entries) -> None:
    """Put ``entries`` back immediately; revert the workspace on any
    failure, then fix provisional oids to real storage rids."""
    writer = cache._writer()
    try:
        writer.apply_now(entries,
                         verify=_round_trip_check(cache, entries))
    except ViewUpdateError:
        revert_entries(cache.workspace, entries)
        raise
    except (UpdateError, CacheError, StorageError,
            TypeCheckError) as exc:
        revert_entries(cache.workspace, entries)
        raise ViewUpdateError(
            "write-through rejected", box=entries[0].target,
            reason=str(exc)) from exc
    except Exception:
        revert_entries(cache.workspace, entries)
        raise
    workspace = cache.workspace
    writer.remap_relocated(workspace)
    _sync_fk_columns(cache, entries)
    for entry in entries:
        if entry.operation != "insert":
            continue
        rid = writer._new_rids.get((entry.target,
                                    entry.payload["oid"]))
        if rid is None:
            continue
        obj = workspace.by_oid.pop((entry.target,
                                    entry.payload["oid"]), None)
        if obj is None:
            continue
        obj.oid = rid
        obj.is_new = False
        workspace.by_oid[(entry.target, rid)] = obj
