"""Engine-side execution of translated view DML.

The manager resolves a DML statement's view target, classifies the view
(cached per catalog schema version), translates the statement, applies
the base-table mutations, and — before anything is acknowledged — runs
the *dynamic well-definedness check*: every touched view row is
re-evaluated against the view's derivation and must read back exactly
the written image (get∘put = identity on the touched slice).  A
violation raises :class:`~repro.errors.ViewUpdateError`, which unwinds
through the session's ``run_atomic`` and rolls the whole statement
back — rejected writes leave the transaction unchanged.

Mutations emit ordinary per-table :class:`TableDelta`s through the
catalog's delta protocol, so materialized views, statistics and the WAL
observe a view write exactly as they would the equivalent hand-written
base DML.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import CatalogError, SemanticError, ViewUpdateError
from repro.executor.expressions import ExpressionCompiler
from repro.optimizer.plan import ExecutionContext
from repro.sql import ast
from repro.storage.catalog import TableDelta
from repro.viewupdate.provenance import ViewWritePlan, analyze_view_box
from repro.viewupdate.translator import (compile_join_qualification,
                                         translate_assignments,
                                         translate_where)


class _BaseRow:
    """A stand-in quantifier so base-level ASTs (ColumnRef over one
    table's columns) compile through the shared ExpressionCompiler."""

    qid = 0


def compile_base_expression(expression: ast.Expression, table):
    """Compile an AST over ``table``'s columns into ``fn(row) -> value``."""
    def to_qref(ref: ast.ColumnRef):
        from repro.qgm.model import QRef
        return QRef(_BaseRow, ref.column.upper())
    layout = {(0, c.name.upper()): i for i, c in enumerate(table.columns)}
    compiled = ExpressionCompiler(layout).compile(
        ast.replace_column_refs(expression, to_qref))
    ctx = ExecutionContext()
    return lambda row: compiled(row, ctx)


class _CachedPlan:
    """A classified view plus its compiled dynamic-check artifacts."""

    def __init__(self, plan: ViewWritePlan, catalog):
        self.plan = plan
        self.catalog = catalog
        #: view column -> base Column, for coercing written values the
        #: way storage does (CHAR padding etc.) before the round-trip
        #: comparison.
        self.normalizers = {}
        if plan.single_source:
            table = catalog.table(plan.table)
            self.checks = [(compile_base_expression(p, table), str(p))
                           for p in plan.predicates]
            self.getters = {
                column: compile_base_expression(expr, table)
                for column, expr in plan.base_ast.items()
            }
            by_name = {c.name.upper(): c for c in table.columns}
            for column, expr in plan.base_ast.items():
                if isinstance(expr, ast.ColumnRef):
                    self.normalizers[column] = by_name[expr.column.upper()]
        else:
            anchor_table = plan.anchor.box.table
            self.checks = [
                (compile_base_expression(_deqref(p), anchor_table), str(p))
                for p in plan.box.local_predicates_of(plan.anchor)
            ]
            self.getters = {}
            #: per key-bound side: (table, its local-predicate checks,
            #: [(partner_column_position, anchor_value_fn)])
            self.partners = []
            for binding in plan.key_bindings:
                side_table = binding.quantifier.box.table
                side_checks = [
                    compile_base_expression(_deqref(p), side_table)
                    for p in plan.box.local_predicates_of(
                        binding.quantifier)
                ]
                pairs = [
                    (side_table.column_position(column),
                     compile_base_expression(expr, anchor_table))
                    for column, expr in binding.pairs
                ]
                self.partners.append((side_table, side_checks, pairs))
            by_name = {c.name.upper(): c for c in anchor_table.columns}
            for column, source in plan.column_sources.items():
                if source is not None and source[0] == plan.anchor.qid:
                    self.normalizers[column] = by_name[source[1]]

    def expected(self, column: str, value):
        """The written value as storage normalizes it (CHAR padding
        etc.) — what get must read back for the write to round-trip."""
        normalizer = self.normalizers.get(column.upper())
        if normalizer is None:
            return value
        return normalizer.validate(value)


def _deqref(expression: ast.Expression) -> ast.Expression:
    """QGM predicate (QRef leaves over one quantifier) -> base AST."""
    from repro.qgm.model import replace_qrefs
    return replace_qrefs(
        expression, lambda leaf: ast.ColumnRef(None, leaf.column.upper()))


class ViewUpdateManager:
    """Accepts DML against views; compiles, applies, verifies."""

    #: Bounded caches: classified plans and per-statement translations.
    PLAN_CAPACITY = 64
    STATEMENT_CAPACITY = 256

    def __init__(self, engine):
        self.engine = engine
        self.catalog = engine.catalog
        self._plans: OrderedDict = OrderedDict()
        self._statements: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    # Target resolution + classification (schema-version cached)
    # ------------------------------------------------------------------
    def handles(self, target: str) -> bool:
        """Is ``target`` a view (or XNF component path) this manager
        owns?  Base tables — which shadow nothing, the namespace is
        shared — stay with the plain DML executor."""
        return "." in target or self.catalog.has_view(target)

    def _analyze(self, target: str) -> _CachedPlan:
        key = (target.upper(), self.catalog.schema_version)
        cached = self._plans.get(key)
        if cached is not None:
            self._plans.move_to_end(key)
            return cached
        if "." not in target:
            view = self.catalog.view(target)
            if view.materialized:
                raise ViewUpdateError(
                    f"view {target!r} is not updatable", box=view.name,
                    reason="materialized views are maintained from base "
                           "deltas; write to the base tables (or the "
                           "defining view) instead")
            if view.is_xnf:
                raise ViewUpdateError(
                    f"view {target!r} is not updatable", box=view.name,
                    reason="target one component of the XNF view as "
                           f"{target}.<component> instead")
        box = self._resolve_target_box(target)
        plan = analyze_view_box(box, target, self.catalog)
        cached = _CachedPlan(plan, self.catalog)
        self._plans[key] = cached
        while len(self._plans) > self.PLAN_CAPACITY:
            self._plans.popitem(last=False)
        return cached

    def _resolve_target_box(self, target: str):
        """The view derivation the put-back inverts.

        For ``view.component`` paths the lens target is the component's
        *own* derivation (its defining query), not the DISTINCT
        reachability-restricted box the read side composes: membership
        in the composite is a property of the assembly, while writes
        address the component's extent.
        """
        if "." in target:
            view_name, component = target.split(".", 1)
            if self.catalog.has_view(view_name):
                view = self.catalog.view(view_name)
                if view.materialized:
                    raise ViewUpdateError(
                        f"view {target!r} is not updatable", box=view_name,
                        reason="materialized views are maintained from "
                               "base deltas; write to the base tables "
                               "instead")
                if view.is_xnf:
                    return self._component_raw_box(view, component)
        builder = self.engine.pipeline.builder()
        return builder._resolve_table(target)

    def _component_raw_box(self, view, component: str):
        from repro.xnf.translate import XNFTranslator
        compiler = self.engine.pipeline.compiler
        graph = compiler.build_xnf(view.definition, view_name=view.name)
        translated = XNFTranslator(
            self.catalog, self.engine.xnf_options,
            compiler=compiler).translate(graph)
        info = translated.components.get(component.upper())
        if info is None:
            raise CatalogError(
                f"XNF view {view.name!r} has no component {component!r}")
        if translated.recursive:
            raise ViewUpdateError(
                f"view {view.name!r} is not updatable", box=component,
                reason="components of recursive XNF views have no "
                       "row-level put-back")
        return info.raw_box
    # ------------------------------------------------------------------
    # Statement translation cache (ASTs are frozen, hence hashable)
    # ------------------------------------------------------------------
    def _translated(self, statement, build):
        key = (statement, self.catalog.schema_version)
        try:
            cached = self._statements.get(key)
        except TypeError:  # unhashable literal somewhere in the AST
            return build()
        if cached is not None:
            self._statements.move_to_end(key)
            return cached
        cached = build()
        self._statements[key] = cached
        while len(self._statements) > self.STATEMENT_CAPACITY:
            self._statements.popitem(last=False)
        return cached

    # ------------------------------------------------------------------
    # UPDATE
    # ------------------------------------------------------------------
    def update(self, statement: ast.UpdateStatement, params=None) -> int:
        cached = self._analyze(statement.table)
        plan = cached.plan
        triples = self._translated(
            statement,
            lambda: (translate_assignments(plan, statement.assignments),
                     translate_where(plan, statement.where)
                     if plan.single_source else statement.where))
        assignments, where = triples
        if plan.single_source:
            return self._update_single(cached, assignments, where, params)
        return self._update_join(cached, assignments, where, params)

    def _update_single(self, cached: _CachedPlan, assignments,
                       where, params) -> int:
        plan = cached.plan
        table = self.catalog.table(plan.table)
        value_expressions = [value for _, _, value in assignments]
        rows = self.engine.dml.qualify(table, where, value_expressions,
                                       params)
        positions = [table.column_position(base)
                     for _, base, _ in assignments]
        return self._apply_update(cached, table, rows, positions,
                                  [v for v, _, _ in assignments])

    def _update_join(self, cached: _CachedPlan, assignments,
                     where, params) -> int:
        plan = cached.plan
        table = plan.anchor.box.table
        value_expressions = [value for _, _, value in assignments]
        qualification = compile_join_qualification(
            self.engine.pipeline, plan, where, value_expressions)
        ctx = qualification.new_context(params)
        _stream, node = qualification.single_output()
        rows = qualification.run_node(node, ctx)
        deduped: dict[int, tuple] = {}
        for row in rows:
            rid, values = row[0], tuple(row[1:])
            if deduped.setdefault(rid, values) != values:
                raise ViewUpdateError(
                    "ambiguous put-back", box=plan.box.label,
                    reason="one base row backs several view rows whose "
                           "updates disagree")
        positions = [table.column_position(base)
                     for _, base, _ in assignments]
        return self._apply_update(
            cached, table,
            [(rid,) + values for rid, values in deduped.items()],
            positions, [v for v, _, _ in assignments])

    def _apply_update(self, cached: _CachedPlan, table, rows,
                      positions, view_columns) -> int:
        delta = TableDelta(table.name) if self.catalog.wants_deltas \
            else None
        pk_positions = {table.column_position(c)
                        for c in table.primary_key}
        updated = 0
        for row_values in rows:
            rid = row_values[0]
            new_values = row_values[1:]
            old_row = table.fetch(rid)
            new_row = list(old_row)
            for position, value in zip(positions, new_values):
                new_row[position] = value
            if any(p in pk_positions and old_row[p] != new_row[p]
                   for p in positions):
                self.catalog.check_no_referencing_children(table.name,
                                                           old_row)
            self.catalog.check_foreign_keys(table.name, tuple(new_row))
            stored_rid, stored = table.update_row(rid, new_row)
            self._verify_row(cached, stored,
                             dict(zip(view_columns, new_values)))
            if delta is not None and stored != old_row:
                delta.deleted.append((rid, old_row))
                delta.inserted.append((stored_rid, stored))
            updated += 1
        if delta is not None:
            self.catalog.emit_table_delta(delta)
        return updated

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def delete(self, statement: ast.DeleteStatement, params=None) -> int:
        cached = self._analyze(statement.table)
        plan = cached.plan
        if plan.single_source:
            where = self._translated(
                statement,
                lambda: translate_where(plan, statement.where))
            table = self.catalog.table(plan.table)
            rows = self.engine.dml.qualify(table, where, [], params)
        else:
            table = plan.anchor.box.table
            qualification = compile_join_qualification(
                self.engine.pipeline, plan, statement.where, [])
            ctx = qualification.new_context(params)
            _stream, node = qualification.single_output()
            rows = [(rid,) for rid in
                    dict.fromkeys(r[0] for r in
                                  qualification.run_node(node, ctx))]
        delta = TableDelta(table.name) if self.catalog.wants_deltas \
            else None
        deleted = 0
        for row_values in rows:
            rid = row_values[0]
            old_row = table.fetch(rid)
            self.catalog.check_no_referencing_children(table.name,
                                                       old_row)
            table.delete(rid)
            if delta is not None:
                delta.deleted.append((rid, old_row))
            deleted += 1
        if delta is not None:
            self.catalog.emit_table_delta(delta)
        return deleted

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def insert(self, statement: ast.InsertStatement, params=None) -> int:
        cached = self._analyze(statement.table)
        plan = cached.plan
        if not plan.single_source:
            raise ViewUpdateError(
                "INSERT through a join view is ambiguous",
                box=plan.box.label,
                reason="a new view row does not determine rows for the "
                       "key-bound sides")
        if statement.query is not None:
            raise SemanticError(
                "INSERT ... SELECT into a view is not supported; "
                "insert plain VALUES rows")
        table = self.catalog.table(plan.table)
        view_columns = [c.upper() for c in statement.columns] \
            if statement.columns else \
            [c.name.upper() for c in plan.box.head
             if not c.name.startswith("$")]
        positions = [table.column_position(plan.writable_base_column(c))
                     for c in view_columns]
        compiler = ExpressionCompiler({})
        value_ctx = ExecutionContext()
        value_ctx.bind_parameters(params)
        delta = TableDelta(table.name) if self.catalog.wants_deltas \
            else None
        inserted = 0
        for value_row in statement.rows:
            values = tuple(compiler.compile(expression)((), value_ctx)
                           for expression in value_row)
            if len(values) != len(positions):
                raise SemanticError(
                    f"INSERT provides {len(values)} values for "
                    f"{len(positions)} columns")
            full_row = [None] * len(table.columns)
            for position, value in zip(positions, values):
                full_row[position] = value
            self.catalog.check_foreign_keys(table.name, tuple(full_row))
            rid = table.insert(full_row)
            stored = table.fetch(rid)
            self._verify_row(cached, stored,
                             dict(zip(view_columns, values)))
            if delta is not None:
                delta.inserted.append((rid, stored))
            inserted += 1
        if delta is not None:
            self.catalog.emit_table_delta(delta)
        return inserted

    # ------------------------------------------------------------------
    # The dynamic well-definedness check (get∘put = identity)
    # ------------------------------------------------------------------
    def _verify_row(self, cached: _CachedPlan, stored_row,
                    written: dict) -> None:
        """Re-evaluate one touched view row against the derivation.

        ``stored_row`` is the base row as stored; ``written`` maps view
        columns to the values the statement assigned.  The row must (a)
        still satisfy the view's selection predicates — and, for joins,
        still find exactly one partner per key-bound side — and (b)
        read back exactly the written values.  Any failure aborts the
        statement (and, through run_atomic, undoes its mutations).
        """
        plan = cached.plan
        for check, text in cached.checks:
            if check(stored_row) is not True:
                raise ViewUpdateError(
                    "write escapes the view", box=plan.box.label,
                    reason=f"the stored row no longer satisfies the "
                           f"view predicate ({text}); get∘put is not "
                           f"the identity, statement aborted")
        if plan.single_source:
            for column, value in written.items():
                getter = cached.getters.get(column.upper())
                if getter is not None \
                        and getter(stored_row) != cached.expected(column,
                                                                  value):
                    raise ViewUpdateError(
                        "write does not round-trip", box=plan.box.label,
                        column=column.upper(),
                        reason="re-reading the view yields a different "
                               "value than was written")
            return
        for side_table, side_checks, pairs in cached.partners:
            matches = 0
            wanted = [(position, value_of(stored_row))
                      for position, value_of in pairs]
            for _rid, row in side_table.scan():
                if all(row[position] == value
                       for position, value in wanted) \
                        and all(c(row) is True for c in side_checks):
                    matches += 1
                    if matches > 1:
                        break
            if matches != 1:
                raise ViewUpdateError(
                    "write escapes the view", box=plan.box.label,
                    reason=f"the updated row finds {matches} partners "
                           f"in key-bound side {side_table.name} "
                           f"(exactly one required); get∘put is not "
                           f"the identity, statement aborted")
        anchor_table = plan.anchor.box.table
        for column, value in written.items():
            source = plan.column_sources.get(column.upper())
            if source is not None and source[0] == plan.anchor.qid:
                position = anchor_table.column_position(source[1])
                if stored_row[position] != cached.expected(column, value):
                    raise ViewUpdateError(
                        "write does not round-trip",
                        box=plan.box.label, column=column.upper(),
                        reason="re-reading the view yields a different "
                               "value than was written")
