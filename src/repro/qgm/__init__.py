"""Query Graph Model: the internal query representation (Sect. 3.2)."""

from repro.qgm.builder import QGMBuilder, Scope
from repro.qgm.dump import dump_graph
from repro.qgm.model import (AggregateSpec, BaseBox, Box, GroupByBox,
                             HeadColumn, OuterJoinBox, OutputStream, QGMGraph,
                             QRef, Quantifier, RidRef, SelectBox, SetOpBox,
                             TopBox, XNFBox, XNFComponent, XNFRelationship,
                             quantifiers_in, replace_qrefs,
                             walk_qgm_expression)
from repro.qgm.ops import (OperationCount, box_signature, count_operations,
                           distinct_operations, replicated_operations)

__all__ = [
    "QGMBuilder", "Scope", "dump_graph",
    "AggregateSpec", "BaseBox", "Box", "GroupByBox", "HeadColumn",
    "OuterJoinBox", "OutputStream", "QGMGraph", "QRef", "Quantifier",
    "RidRef", "SelectBox", "SetOpBox", "TopBox", "XNFBox", "XNFComponent",
    "XNFRelationship", "quantifiers_in", "replace_qrefs",
    "walk_qgm_expression",
    "OperationCount", "box_signature", "count_operations",
    "distinct_operations", "replicated_operations",
]
