"""Deep-copying QGM subgraphs.

The ViewMerge rewrite rule gives each consumer of a multiply-referenced
view its *own* copy of the view's derivation so SelectMerge and
predicate pushdown can specialize it per consumer — trading the shared
evaluation of a common subexpression for per-consumer simplification,
which is the right trade for SQL views (the XNF translator's shared
connection boxes are deliberately *not* cloned; they carry identity
columns and are shared by design).

Cloning preserves internal sharing: a box referenced twice inside the
cloned subgraph is cloned once.  Base-table boxes are shared, not
cloned — they carry no rewritable state and the planner treats each
``BaseBox`` as a plain scan.  References to quantifiers *outside* the
cloned subgraph (correlation) are left untouched.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.qgm.model import (BaseBox, Box, GroupByBox, HeadColumn,
                             OuterJoinBox, Quantifier, SelectBox, SetOpBox,
                             replace_qrefs)


class _Cloner:
    def __init__(self) -> None:
        self.boxes: dict[int, Box] = {}
        self.quantifiers: dict[int, Quantifier] = {}

    # ------------------------------------------------------------------
    def clone_box(self, box: Box) -> Box:
        if isinstance(box, BaseBox):
            return box  # shared: nothing to specialize on a base table
        cloned = self.boxes.get(box.box_id)
        if cloned is not None:
            return cloned
        if isinstance(box, SelectBox):
            cloned = self._clone_select(box)
        elif isinstance(box, GroupByBox):
            cloned = self._clone_groupby(box)
        elif isinstance(box, SetOpBox):
            cloned = self._clone_setop(box)
        elif isinstance(box, OuterJoinBox):
            cloned = self._clone_outer_join(box)
        else:
            raise RewriteError(f"cannot clone box kind {box.kind!r}")
        return cloned

    def clone_quantifier(self, quantifier: Quantifier) -> Quantifier:
        cloned = self.quantifiers.get(quantifier.qid)
        if cloned is not None:
            return cloned
        cloned = Quantifier(self.clone_box(quantifier.box),
                            quantifier.qtype, name=quantifier.name)
        cloned.null_poison = quantifier.null_poison
        self.quantifiers[quantifier.qid] = cloned
        return cloned

    def remap(self, expression):
        def mapping(leaf):
            replacement = self.quantifiers.get(leaf.quantifier.qid)
            if replacement is None:
                return leaf  # outside the cloned subgraph: keep as-is
            return type(leaf)(replacement, leaf.column) \
                if hasattr(leaf, "column") else type(leaf)(replacement)
        return replace_qrefs(expression, mapping)

    def _clone_head(self, box: Box, cloned: Box) -> None:
        cloned.head = [
            HeadColumn(c.name, None if c.expression is None
                       else self.remap(c.expression))
            for c in box.head
        ]

    # ------------------------------------------------------------------
    def _clone_select(self, box: SelectBox) -> SelectBox:
        cloned = SelectBox(label=box.label)
        self.boxes[box.box_id] = cloned
        cloned.from_view = getattr(box, "from_view", None)
        for quantifier in box.body_quantifiers:
            cloned.add_quantifier(self.clone_quantifier(quantifier))
        self._clone_head(box, cloned)
        cloned.predicates = [self.remap(p) for p in box.predicates]
        cloned.distinct = box.distinct
        cloned.order_by = [(self.remap(e), d) for e, d in box.order_by]
        cloned.limit = box.limit
        cloned.offset = box.offset
        return cloned

    def _clone_groupby(self, box: GroupByBox) -> GroupByBox:
        from repro.qgm.model import AggregateSpec
        cloned = GroupByBox(label=box.label)
        self.boxes[box.box_id] = cloned
        if box.input is not None:
            cloned.input = self.clone_quantifier(box.input)
        self._clone_head(box, cloned)
        cloned.group_keys = [self.remap(k) for k in box.group_keys]
        cloned.aggregates = {
            name: AggregateSpec(
                spec.function,
                None if spec.argument is None else self.remap(spec.argument),
                spec.distinct,
            )
            for name, spec in box.aggregates.items()
        }
        return cloned

    def _clone_setop(self, box: SetOpBox) -> SetOpBox:
        cloned = SetOpBox(box.operator, box.all_rows, label=box.label)
        self.boxes[box.box_id] = cloned
        cloned.inputs = [self.clone_quantifier(q) for q in box.inputs]
        self._clone_head(box, cloned)
        return cloned

    def _clone_outer_join(self, box: OuterJoinBox) -> OuterJoinBox:
        left = self.clone_quantifier(box.left)
        right = self.clone_quantifier(box.right)
        condition = None if box.condition is None \
            else self.remap(box.condition)
        cloned = OuterJoinBox(left, right, condition, label=box.label)
        self.boxes[box.box_id] = cloned
        self._clone_head(box, cloned)
        return cloned


def clone_subgraph(box: Box) -> Box:
    """A private deep copy of ``box`` and everything below it.

    Base-table boxes are shared; every derived box and quantifier is
    fresh, with expressions remapped onto the cloned quantifiers.
    """
    return _Cloner().clone_box(box)
