"""Operation counting over QGM graphs — the instrument behind Table 1.

The paper compares "the amount of processing needed in the XNF approach
to the amount of work given by single component derivation" by counting
NF QGM operations ("23 separate NF QGM operations (mostly join)" vs.
"6 join operations and 1 selection").

Conventions (documented in DESIGN.md §4): in a final rewritten NF QGM,

* every select box contributes ``max(0, q - 1)`` **joins**, where ``q``
  is its number of F/E/A quantifiers (n quantifiers need n-1 joins);
* a box contributes one **selection** when it applies local predicates
  (predicates over at most one quantifier) or is a base-table restriction.

Shared boxes (common subexpressions) are counted once per graph; when
counting across several independent graphs, :func:`operation_signatures`
provides structural signatures so replicated work can be identified the
way the paper's "Replicated Query Components" column does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qgm.model import (BaseBox, Box, GroupByBox, OuterJoinBox,
                             QGMGraph, Quantifier, SelectBox, SetOpBox,
                             quantifiers_in)


@dataclass
class OperationCount:
    """Selections and joins of one graph (or one component's derivation)."""

    selections: int = 0
    joins: int = 0
    #: signature -> number of occurrences (shared boxes count once)
    signatures: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.selections + self.joins

    def merge(self, other: "OperationCount") -> "OperationCount":
        return OperationCount(
            selections=self.selections + other.selections,
            joins=self.joins + other.joins,
            signatures=self.signatures + other.signatures,
        )


def _base_tables_below(box: Box, seen: set[int] | None = None) -> list[str]:
    """Sorted base table names reachable below a box (for signatures)."""
    if seen is None:
        seen = set()
    if box.box_id in seen:
        return []
    seen.add(box.box_id)
    if isinstance(box, BaseBox):
        return [box.table.name]
    names: list[str] = []
    for child in box.child_boxes():
        names.extend(_base_tables_below(child, seen))
    return names


def _predicate_signature(box: SelectBox) -> str:
    """Order-insensitive rendering of the box's predicates.

    QRef leaves print as quantifier-name.column; since the workload
    queries name quantifiers after the tables/views they range over, two
    structurally identical derivations produce identical signatures.
    """
    rendered = sorted(str(p) for p in box.predicates)
    return " & ".join(rendered)


def box_signature(box: Box) -> str:
    """A structural signature identifying "the same operation" across
    independently compiled graphs."""
    tables = ",".join(sorted(_base_tables_below(box)))
    if isinstance(box, SelectBox):
        kinds = "".join(sorted(q.qtype for q in box.body_quantifiers))
        return f"select[{kinds}]({tables}){{{_predicate_signature(box)}}}"
    if isinstance(box, GroupByBox):
        keys = ",".join(str(k) for k in box.group_keys)
        return f"groupby({tables})[{keys}]"
    if isinstance(box, SetOpBox):
        return f"{box.operator.lower()}({tables})"
    if isinstance(box, OuterJoinBox):
        return f"outerjoin({tables}){{{box.condition}}}"
    return f"{box.kind}({tables})"


def count_box(box: Box) -> tuple[int, int]:
    """(selections, joins) contributed by a single box."""
    if isinstance(box, SelectBox):
        joining = [q for q in box.body_quantifiers
                   if q.qtype in (Quantifier.F, Quantifier.E, Quantifier.A)]
        joins = max(0, len(joining) - 1)
        has_local = any(
            len(quantifiers_in(p)) <= 1 for p in box.predicates
        )
        return (1 if has_local else 0), joins
    if isinstance(box, OuterJoinBox):
        return 0, 1
    return 0, 0


def count_operations(graph_or_box: QGMGraph | Box) -> OperationCount:
    """Count operations over all boxes reachable from a graph or box."""
    if isinstance(graph_or_box, QGMGraph):
        boxes = graph_or_box.all_boxes()
    else:
        boxes = _boxes_below(graph_or_box)
    result = OperationCount()
    for box in boxes:
        selections, joins = count_box(box)
        result.selections += selections
        result.joins += joins
        if selections or joins:
            result.signatures.append(box_signature(box))
    return result


def _boxes_below(box: Box) -> list[Box]:
    seen: dict[int, Box] = {}

    def visit(current: Box) -> None:
        if current.box_id in seen:
            return
        seen[current.box_id] = current
        for child in current.child_boxes():
            visit(child)

    visit(box)
    return list(seen.values())


def replicated_operations(counts: list[OperationCount]) -> list[int]:
    """Per-graph count of operations already produced by an earlier graph.

    Mirrors the paper's "Replicated Query Components" column: processing
    the single-component queries in order, an operation whose signature
    was already computed for a previous component is redundant work that
    a common-subexpression framework would share.
    """
    seen: set[str] = set()
    replicated: list[int] = []
    for count in counts:
        duplicated = sum(1 for s in count.signatures if s in seen)
        replicated.append(duplicated)
        seen.update(count.signatures)
    return replicated


def distinct_operations(counts: list[OperationCount]) -> int:
    """Number of distinct operation signatures across all graphs."""
    signatures: set[str] = set()
    for count in counts:
        signatures.update(count.signatures)
    return len(signatures)
