"""The Query Graph Model (QGM).

QGM is Starburst's internal query representation (Sect. 3.2): "queries
are represented as a series of high level operators ... on either base
tables or derived tables.  An operator consists of a head and a body: the
head describes the output table and the body shows how this table has to
be derived from other tables the body refers to."

We model that directly:

* :class:`Box` subclasses are the operators (base table, select,
  group-by, set operation, the XNF operator, and TOP).
* A box's **head** is a list of :class:`HeadColumn` (name + expression
  over the body).
* A box's **body** contains :class:`Quantifier` objects ranging over
  other boxes, plus predicates.  Quantifier types follow Starburst:
  ``F`` (ForEach — contributes rows), ``E`` (existential — semi-join
  semantics), ``A`` (anti — NOT EXISTS semantics), ``S`` (scalar
  subquery).  All E quantifiers of a box are *jointly* existential: a
  candidate row qualifies when one assignment to all E quantifiers
  satisfies every predicate mentioning them.

Expressions inside QGM reuse the AST node classes from
:mod:`repro.sql.ast` with two additional leaf kinds defined here:
:class:`QRef` (a resolved reference to a quantifier's head column) and
:class:`RidRef` (the row identifier of a base-table quantifier, used to
give composite-object tuples stable identities).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import RewriteError, SemanticError
from repro.sql import ast
from repro.storage.table import Table

_box_counter = itertools.count(1)
_quantifier_counter = itertools.count(1)


# ----------------------------------------------------------------------
# QGM expression leaves
# ----------------------------------------------------------------------
class QRef(ast.Expression):
    """A resolved column reference: quantifier + head column name."""

    __slots__ = ("quantifier", "column")

    def __init__(self, quantifier: "Quantifier", column: str):
        self.quantifier = quantifier
        self.column = column

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, QRef)
                and other.quantifier is self.quantifier
                and other.column == self.column)

    def __hash__(self) -> int:
        return hash((id(self.quantifier), self.column))

    def __str__(self) -> str:
        return f"{self.quantifier.name}.{self.column}"

    def __repr__(self) -> str:
        return f"QRef({self.quantifier.name}.{self.column})"


class RidRef(ast.Expression):
    """The storage RID of the current row of a base-table quantifier.

    Only valid when the quantifier ranges over a :class:`BaseBox`; used
    for composite-object tuple identity (Sect. 5: "each tuple has a
    (system generated) identifier").
    """

    __slots__ = ("quantifier",)

    def __init__(self, quantifier: "Quantifier"):
        self.quantifier = quantifier

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RidRef) and other.quantifier is self.quantifier

    def __hash__(self) -> int:
        return hash(("rid", id(self.quantifier)))

    def __str__(self) -> str:
        return f"RID({self.quantifier.name})"


def walk_qgm_expression(expr: ast.Expression) -> Iterator[ast.Expression]:
    """Depth-first walk that understands QRef/RidRef leaves."""
    if isinstance(expr, (QRef, RidRef)):
        yield expr
        return
    yield from ast.walk_expression(expr)


def quantifiers_in(expr: ast.Expression) -> set["Quantifier"]:
    """All quantifiers referenced by an expression."""
    found: set[Quantifier] = set()
    for node in walk_qgm_expression(expr):
        if isinstance(node, QRef):
            found.add(node.quantifier)
        elif isinstance(node, RidRef):
            found.add(node.quantifier)
    return found


def box_expressions(box: "Box") -> Iterator[ast.Expression]:
    """Every expression a box owns: head, predicates, keys, conditions.

    The traversal the planner and rewrite rules use to find stray
    references (correlation, substitution targets) without knowing each
    box kind's slots.
    """
    for column in box.head:
        if column.expression is not None:
            yield column.expression
    if isinstance(box, SelectBox):
        yield from box.predicates
        for expression, _desc in box.order_by:
            yield expression
    elif isinstance(box, GroupByBox):
        yield from box.group_keys
        for spec in box.aggregates.values():
            if spec.argument is not None:
                yield spec.argument
    elif isinstance(box, OuterJoinBox):
        if box.condition is not None:
            yield box.condition
    elif isinstance(box, XNFBox):
        for relationship in box.relationships.values():
            if relationship.predicate is not None:
                yield relationship.predicate
            for _name, expression in relationship.attributes:
                yield expression


def rewrite_box_expressions(box: "Box", transform) -> None:
    """Apply ``transform(expression) -> expression`` to every
    expression slot of ``box``, in place.

    The write-side counterpart of :func:`box_expressions`: rewrite
    rules and the planner use it to substitute or parameterize
    references without each re-enumerating the box kinds (and missing
    one — OuterJoinBox conditions, say).
    """
    for column in box.head:
        if column.expression is not None:
            column.expression = transform(column.expression)
    if isinstance(box, SelectBox):
        box.predicates = [transform(p) for p in box.predicates]
        box.order_by = [(transform(e), d) for e, d in box.order_by]
    elif isinstance(box, GroupByBox):
        box.group_keys = [transform(k) for k in box.group_keys]
        for spec in box.aggregates.values():
            if spec.argument is not None:
                spec.argument = transform(spec.argument)
    elif isinstance(box, OuterJoinBox):
        if box.condition is not None:
            box.condition = transform(box.condition)
    elif isinstance(box, XNFBox):
        for relationship in box.relationships.values():
            if relationship.predicate is not None:
                relationship.predicate = transform(relationship.predicate)
            relationship.attributes = tuple(
                (name, transform(expression))
                for name, expression in relationship.attributes
            )


def subgraph_outer_leaves(box: "Box") -> list[ast.Expression]:
    """Ordered, de-duplicated QRef/RidRef leaves below ``box`` whose
    quantifier is bound outside the subgraph — the correlation leaves
    of a subquery.  One traversal shared by builder validation,
    decorrelation, and the planner's nested-execution fallback, so
    correlation detection cannot drift between them."""
    owned: set[Quantifier] = set()
    boxes: list[Box] = []
    seen: set[int] = set()

    def visit(current: Box) -> None:
        if current.box_id in seen:
            return
        seen.add(current.box_id)
        boxes.append(current)
        for quantifier in current.quantifiers():
            owned.add(quantifier)
            visit(quantifier.box)

    visit(box)
    leaves: list[ast.Expression] = []
    keyed: set = set()
    for current in boxes:
        for expression in box_expressions(current):
            for node in walk_qgm_expression(expression):
                if not isinstance(node, (QRef, RidRef)):
                    continue
                if node.quantifier in owned:
                    continue
                key = (node.quantifier.qid,
                       getattr(node, "column", "$RID$"))
                if key in keyed:
                    continue
                keyed.add(key)
                leaves.append(node)
    return leaves


def subgraph_outer_refs(box: "Box") -> set["Quantifier"]:
    """Quantifiers referenced below ``box`` but quantified elsewhere —
    the correlation set of a subquery subgraph."""
    return {leaf.quantifier for leaf in subgraph_outer_leaves(box)}


def replace_qrefs(expr: ast.Expression, mapping) -> ast.Expression:
    """Rebuild ``expr`` with each QRef/RidRef passed through ``mapping``.

    ``mapping(leaf)`` returns a replacement expression or the leaf itself.
    Non-leaf AST nodes are reconstructed structurally.
    """
    if isinstance(expr, (QRef, RidRef)):
        return mapping(expr)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, replace_qrefs(expr.left, mapping),
                            replace_qrefs(expr.right, mapping))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, replace_qrefs(expr.operand, mapping))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(replace_qrefs(a, mapping) for a in expr.args),
            expr.distinct,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(replace_qrefs(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(replace_qrefs(expr.operand, mapping),
                           replace_qrefs(expr.low, mapping),
                           replace_qrefs(expr.high, mapping), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(replace_qrefs(expr.operand, mapping),
                        replace_qrefs(expr.pattern, mapping), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(replace_qrefs(expr.operand, mapping),
                          tuple(replace_qrefs(i, mapping) for i in expr.items),
                          expr.negated)
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            tuple((replace_qrefs(c, mapping), replace_qrefs(r, mapping))
                  for c, r in expr.whens),
            None if expr.default is None
            else replace_qrefs(expr.default, mapping),
        )
    return expr


def trace_column(box: "Box", column: str):
    """Provenance walk: follow a head column's QRef chain down the box
    tree to the stored base column it denotes.

    Returns ``(quantifier, base_column)`` where ``quantifier`` is the
    *immediate* body quantifier of ``box`` whose subtree stores the
    column, or ``None`` when the column is computed (any non-QRef
    expression on the way down) — the view-update layer's criterion for
    "traces to a unique base column".
    """
    upper = column.upper()
    if not box.has_head_column(upper):
        return None
    expression = box.head_column(upper).expression
    if not isinstance(expression, QRef):
        return None
    quantifier = expression.quantifier
    inner = quantifier.box
    if isinstance(inner, BaseBox):
        return quantifier, expression.column.upper()
    traced = trace_column(inner, expression.column)
    if traced is None:
        return None
    return quantifier, traced[1]


# ----------------------------------------------------------------------
# Heads, quantifiers, boxes
# ----------------------------------------------------------------------
@dataclass
class HeadColumn:
    """One output column of a box: a name and its defining expression.

    For :class:`BaseBox` the expression is None — values come straight
    from storage.
    """

    name: str
    expression: Optional[ast.Expression] = None


class Quantifier:
    """A body element ranging over another box."""

    F = "F"
    E = "E"
    A = "A"
    S = "S"

    def __init__(self, box: "Box", qtype: str = "F",
                 name: Optional[str] = None):
        if qtype not in (self.F, self.E, self.A, self.S):
            raise RewriteError(f"unknown quantifier type {qtype!r}")
        self.qid = next(_quantifier_counter)
        self.box = box
        self.qtype = qtype
        self.name = name or f"q{self.qid}"
        #: NOT IN semantics: an UNKNOWN match poisons the anti-join
        #: (row rejected), unlike NOT EXISTS where UNKNOWN is a non-match.
        self.null_poison = False
        #: For correlated scalar (S) quantifiers the planner could not
        #: decorrelate: ``((slot_name, outer_expression), ...)`` pairs.
        #: At run time the outer expressions are evaluated against the
        #: current row and bound to the named parameter slots before the
        #: subquery plan executes (see ExecutionContext.correlated_scalar).
        self.correlation: tuple = ()

    def ref(self, column: str) -> QRef:
        """Build a QRef to one of this quantifier's box head columns."""
        if not self.box.has_head_column(column):
            raise SemanticError(
                f"box {self.box.label!r} has no output column {column!r}"
            )
        return QRef(self, column)

    def __repr__(self) -> str:
        return f"<Q{self.qid} {self.qtype} {self.name} over {self.box.label}>"


class Box:
    """Base class for QGM operators."""

    kind = "box"

    def __init__(self, label: str = ""):
        self.box_id = next(_box_counter)
        self.label = label or f"box{self.box_id}"
        self.head: list[HeadColumn] = []

    # -- head helpers ---------------------------------------------------
    def head_names(self) -> list[str]:
        return [c.name for c in self.head]

    def has_head_column(self, name: str) -> bool:
        upper = name.upper()
        return any(c.name.upper() == upper for c in self.head)

    def head_column(self, name: str) -> HeadColumn:
        upper = name.upper()
        for column in self.head:
            if column.name.upper() == upper:
                return column
        raise SemanticError(f"box {self.label!r} has no column {name!r}")

    def head_position(self, name: str) -> int:
        upper = name.upper()
        for i, column in enumerate(self.head):
            if column.name.upper() == upper:
                return i
        raise SemanticError(f"box {self.label!r} has no column {name!r}")

    # -- graph traversal --------------------------------------------------
    def child_boxes(self) -> list["Box"]:
        """Boxes this box's body ranges over (dedup, in first-use order)."""
        seen: list[Box] = []
        for quantifier in self.quantifiers():
            if quantifier.box not in seen:
                seen.append(quantifier.box)
        return seen

    def quantifiers(self) -> list[Quantifier]:
        return []

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label}>"


class BaseBox(Box):
    """A stored base table."""

    kind = "base"

    def __init__(self, table: Table):
        super().__init__(label=table.name)
        self.table = table
        self.head = [HeadColumn(c.name) for c in table.columns]


class SelectBox(Box):
    """Select-project-join: the workhorse operator.

    ``predicates`` are conjuncts.  ``distinct`` enforces set semantics on
    the head.  ``order_by``/``limit``/``offset`` are presentation
    properties honoured when this box feeds TOP.
    """

    kind = "select"

    def __init__(self, label: str = ""):
        super().__init__(label)
        self.body_quantifiers: list[Quantifier] = []
        self.predicates: list[ast.Expression] = []
        self.distinct = False
        self.order_by: list[tuple[ast.Expression, bool]] = []  # (expr, desc)
        self.limit: Optional[int] = None
        self.offset: Optional[int] = None
        #: Name of the SQL view this box was inlined from (set by the
        #: QGM builder); the ViewMerge rule clones shared view boxes so
        #: each consumer can merge and specialize its own copy.
        self.from_view: Optional[str] = None

    def quantifiers(self) -> list[Quantifier]:
        return list(self.body_quantifiers)

    def add_quantifier(self, quantifier: Quantifier) -> Quantifier:
        self.body_quantifiers.append(quantifier)
        return quantifier

    def remove_quantifier(self, quantifier: Quantifier) -> None:
        self.body_quantifiers.remove(quantifier)

    def foreach_quantifiers(self) -> list[Quantifier]:
        return [q for q in self.body_quantifiers if q.qtype == Quantifier.F]

    def existential_quantifiers(self) -> list[Quantifier]:
        return [q for q in self.body_quantifiers if q.qtype == Quantifier.E]

    def local_predicates_of(self, quantifier: Quantifier) -> list[ast.Expression]:
        """Predicates mentioning only ``quantifier``."""
        return [p for p in self.predicates
                if quantifiers_in(p) == {quantifier}]

    def join_predicates(self) -> list[ast.Expression]:
        """Predicates mentioning two or more quantifiers."""
        return [p for p in self.predicates if len(quantifiers_in(p)) > 1]


@dataclass
class AggregateSpec:
    """One aggregate in a GROUP BY head: function, argument, DISTINCT."""

    function: str  # COUNT/SUM/AVG/MIN/MAX
    argument: Optional[ast.Expression]  # None means COUNT(*)
    distinct: bool = False


class GroupByBox(Box):
    """Grouping and aggregation over a single input quantifier."""

    kind = "groupby"

    def __init__(self, label: str = ""):
        super().__init__(label)
        self.input: Optional[Quantifier] = None
        self.group_keys: list[ast.Expression] = []
        #: Parallel to head: for aggregate head columns, the spec; for
        #: group-key head columns, None (their expression is in head).
        self.aggregates: dict[str, AggregateSpec] = {}

    def quantifiers(self) -> list[Quantifier]:
        return [self.input] if self.input is not None else []


class SetOpBox(Box):
    """UNION / INTERSECT / EXCEPT over two inputs."""

    kind = "setop"

    def __init__(self, operator: str, all_rows: bool, label: str = ""):
        super().__init__(label)
        if operator not in ("UNION", "INTERSECT", "EXCEPT"):
            raise RewriteError(f"unknown set operator {operator!r}")
        self.operator = operator
        self.all_rows = all_rows
        self.inputs: list[Quantifier] = []

    def quantifiers(self) -> list[Quantifier]:
        return list(self.inputs)


class OuterJoinBox(Box):
    """LEFT OUTER JOIN of exactly two inputs.

    Kept as its own box kind because outer joins do not commute with the
    select-merge and pushdown rules; the rewrite engine leaves these
    boxes alone and the planner compiles them directly.
    """

    kind = "outerjoin"

    def __init__(self, left: Quantifier, right: Quantifier,
                 condition: Optional[ast.Expression], label: str = ""):
        super().__init__(label or "LOJ")
        self.left = left
        self.right = right
        self.condition = condition

    def quantifiers(self) -> list[Quantifier]:
        return [self.left, self.right]


@dataclass
class XNFRelationship:
    """A relationship inside the XNF operator (Sect. 4.1 phase 1).

    ``predicate`` references the quantifiers in ``parent_quantifier``,
    ``child_quantifiers`` and ``using_quantifiers``, which range over the
    component boxes / USING base boxes.
    """

    name: str
    role: str
    parent: str
    children: tuple[str, ...]
    parent_quantifier: Quantifier = None
    child_quantifiers: tuple[Quantifier, ...] = ()
    using_quantifiers: tuple[Quantifier, ...] = ()
    predicate: Optional[ast.Expression] = None
    #: Resolved relationship attributes: (name, expression) pairs.
    attributes: tuple[tuple[str, ast.Expression], ...] = ()


@dataclass
class XNFComponent:
    """A component table inside the XNF operator."""

    name: str
    box: Box
    is_root: bool = False
    #: 'R' flag of Fig. 4: must this component be restricted to reachable
    #: tuples?  Defaults to True for all non-root components (Sect. 4.1
    #: phase 2: "we assumed that reachability for all non-root components
    #: is defined as default").
    reachability_required: bool = True


class XNFBox(Box):
    """The XNF operator: n input tables, m output tables (Sect. 4.1).

    The body holds the component derivations and relationship
    definitions; the head is the *set* of output tables (one per TAKEn
    component/relationship), which is why this box cannot survive into NF
    QGM and is removed by XNF semantic rewrite.
    """

    kind = "xnf"

    def __init__(self, label: str = "XNF"):
        super().__init__(label)
        self.components: dict[str, XNFComponent] = {}
        self.relationships: dict[str, XNFRelationship] = {}
        self.take_all = True
        self.take_items: list[ast.TakeItem] = []

    def quantifiers(self) -> list[Quantifier]:
        result: list[Quantifier] = []
        for relationship in self.relationships.values():
            result.append(relationship.parent_quantifier)
            result.extend(relationship.child_quantifiers)
            result.extend(relationship.using_quantifiers)
        return [q for q in result if q is not None]

    def component_order(self) -> list[str]:
        return list(self.components)

    def incoming_relationships(self, component: str) -> list[XNFRelationship]:
        """Relationships that have ``component`` among their children."""
        return [r for r in self.relationships.values()
                if component in r.children]

    def outgoing_relationships(self, component: str) -> list[XNFRelationship]:
        return [r for r in self.relationships.values()
                if r.parent == component]

    def root_components(self) -> list[str]:
        return [name for name, c in self.components.items() if c.is_root]


@dataclass
class OutputStream:
    """One result stream of the TOP operator.

    SQL queries have exactly one stream; XNF queries have one per TAKEn
    component and relationship.  ``component_number`` is the tag carried
    by every tuple of the heterogeneous result (Sect. 5).
    """

    name: str
    box: Box
    stream_kind: str = "table"  # 'table' | 'component' | 'relationship'
    component_number: int = 0
    #: For relationship streams: (parent stream name, child stream names,
    #: role) — the cache uses these to swizzle connections.
    parent: Optional[str] = None
    children: tuple[str, ...] = ()
    role: Optional[str] = None
    #: Head column names holding partner identities, for relationship
    #: streams: first the parent identity column, then one per child.
    identity_columns: tuple[str, ...] = ()
    #: For relationship streams: names of attribute columns following
    #: the identity columns.
    attribute_names: tuple[str, ...] = ()
    #: For component streams: position of the identity ($oid) column.
    identity_position: Optional[int] = None
    #: Set when this component stream also carries its parent's identity
    #: (relationship output optimization, Sect. 4.2 footnote).
    embedded_parent: Optional[tuple[str, str, int]] = None  # (rel, parent, pos)


class TopBox(Box):
    """The TOP operator: "the interface between the query processor and
    the application program.  Each QGM graph has a single top operator."
    """

    kind = "top"

    def __init__(self):
        super().__init__(label="TOP")
        self.outputs: list[OutputStream] = []

    def quantifiers(self) -> list[Quantifier]:
        return []

    def child_boxes(self) -> list[Box]:
        seen: list[Box] = []
        for output in self.outputs:
            if output.box not in seen:
                seen.append(output.box)
        return seen

    def single_output(self) -> OutputStream:
        if len(self.outputs) != 1:
            raise RewriteError(
                f"expected one output stream, found {len(self.outputs)}"
            )
        return self.outputs[0]


@dataclass
class QGMGraph:
    """A whole query graph: the TOP box plus bookkeeping."""

    top: TopBox
    statement_kind: str = "select"  # 'select' | 'xnf'

    def all_boxes(self) -> list[Box]:
        """Every box reachable from TOP, depth-first, each box once."""
        seen: dict[int, Box] = {}

        def visit(box: Box) -> None:
            if box.box_id in seen:
                return
            seen[box.box_id] = box
            for child in box.child_boxes():
                visit(child)
            if isinstance(box, XNFBox):
                for component in box.components.values():
                    visit(component.box)

        visit(self.top)
        return list(seen.values())

    def boxes_of_kind(self, kind: str) -> list[Box]:
        return [b for b in self.all_boxes() if b.kind == kind]

    def reference_counts(self) -> dict[int, int]:
        """How many quantifiers/outputs reference each box.

        Boxes referenced more than once are the common subexpressions the
        paper's multi-query optimization shares (Sect. 4.2, Fig. 5/6).
        """
        counts: dict[int, int] = {}
        for box in self.all_boxes():
            if isinstance(box, TopBox):
                for output in box.outputs:
                    counts[output.box.box_id] = counts.get(
                        output.box.box_id, 0) + 1
            for quantifier in box.quantifiers():
                counts[quantifier.box.box_id] = counts.get(
                    quantifier.box.box_id, 0) + 1
        return counts

    def xnf_box(self) -> Optional[XNFBox]:
        for box in self.all_boxes():
            if isinstance(box, XNFBox):
                return box
        return None
