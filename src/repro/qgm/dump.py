"""Human-readable QGM graph dumps.

Reproduces (in text form) the graphical notation of Figs. 3-5: each box
printed with its kind, label, head columns, quantifiers, and predicates.
Used by ``Database.explain`` and heavily in tests to assert graph shapes.
"""

from __future__ import annotations

import hashlib

from repro.qgm.model import (BaseBox, Box, GroupByBox, OuterJoinBox,
                             QGMGraph, QRef, Quantifier, RidRef, SelectBox,
                             SetOpBox, TopBox, XNFBox)
from repro.sql import ast


def dump_graph(graph: QGMGraph) -> str:
    """Render the whole graph, TOP first, children in discovery order."""
    lines: list[str] = []
    seen: set[int] = set()

    def visit(box: Box, depth: int) -> None:
        indent = "  " * depth
        if box.box_id in seen:
            lines.append(f"{indent}[ref -> {describe(box)}]")
            return
        seen.add(box.box_id)
        lines.append(f"{indent}{describe(box)}")
        for detail in box_details(box):
            lines.append(f"{indent}  | {detail}")
        if isinstance(box, XNFBox):
            for component in box.components.values():
                lines.append(f"{indent}  component {component.name}"
                             f"{' (root)' if component.is_root else ''}"
                             f"{' R' if component.reachability_required else ''}:")
                visit(component.box, depth + 2)
            return
        for child in box.child_boxes():
            visit(child, depth + 1)

    visit(graph.top, 0)
    return "\n".join(lines)


def describe(box: Box) -> str:
    name = type(box).__name__
    return f"{name}#{box.box_id} '{box.label}'"


def box_details(box: Box) -> list[str]:
    details: list[str] = []
    if box.head:
        columns = ", ".join(
            c.name if c.expression is None else f"{c.name}={c.expression}"
            for c in box.head
        )
        details.append(f"head: {columns}")
    if isinstance(box, BaseBox):
        details.append(f"table: {box.table.name} ({len(box.table)} rows)")
    elif isinstance(box, SelectBox):
        for quantifier in box.body_quantifiers:
            details.append(
                f"quantifier {quantifier.qtype} {quantifier.name} "
                f"over {quantifier.box.label}"
            )
        for predicate in box.predicates:
            details.append(f"predicate: {predicate}")
        if box.distinct:
            details.append("distinct: enforce")
        if box.order_by:
            keys = ", ".join(
                f"{expr}{' DESC' if desc else ''}"
                for expr, desc in box.order_by
            )
            details.append(f"order by: {keys}")
        if box.limit is not None:
            details.append(f"limit: {box.limit}")
        if box.offset is not None:
            details.append(f"offset: {box.offset}")
    elif isinstance(box, GroupByBox):
        keys = ", ".join(str(k) for k in box.group_keys)
        details.append(f"group keys: [{keys}]")
        for name, spec in box.aggregates.items():
            argument = "*" if spec.argument is None else str(spec.argument)
            distinct = "DISTINCT " if spec.distinct else ""
            details.append(f"aggregate {name} = "
                           f"{spec.function}({distinct}{argument})")
    elif isinstance(box, SetOpBox):
        details.append(f"operator: {box.operator}"
                       f"{' ALL' if box.all_rows else ''}")
    elif isinstance(box, OuterJoinBox):
        details.append(f"condition: {box.condition}")
    elif isinstance(box, XNFBox):
        for relationship in box.relationships.values():
            details.append(
                f"relationship {relationship.name} "
                f"({relationship.parent} -{relationship.role}-> "
                f"{', '.join(relationship.children)}): "
                f"{relationship.predicate}"
            )
        if box.take_all:
            details.append("take: *")
        else:
            names = ", ".join(i.name for i in box.take_items)
            details.append(f"take: {names}")
    elif isinstance(box, TopBox):
        for output in box.outputs:
            details.append(
                f"output {output.name} [{output.stream_kind}"
                f"#{output.component_number}] <- {output.box.label}"
            )
    return details


# ----------------------------------------------------------------------
# Canonical form
# ----------------------------------------------------------------------
class _Canonicalizer:
    """Renders a graph with run-independent box/quantifier numbering.

    Two independently compiled graphs with the same structure (after
    rewrite) render identically: box and quantifier ids are assigned in
    deterministic traversal order and expressions are printed through
    those canonical ids instead of volatile names.  This is what lets
    the plan cache key on the *post-rewrite* form — a view reference and
    its hand-inlined equivalent converge to one entry.
    """

    def __init__(self) -> None:
        self.box_ids: dict[int, int] = {}
        self.quantifier_ids: dict[int, int] = {}
        self.lines: list[str] = []

    # -- id assignment --------------------------------------------------
    def box_id(self, box: Box) -> int:
        assigned = self.box_ids.get(box.box_id)
        if assigned is None:
            assigned = len(self.box_ids)
            self.box_ids[box.box_id] = assigned
        return assigned

    def quantifier_id(self, quantifier: Quantifier) -> int:
        assigned = self.quantifier_ids.get(quantifier.qid)
        if assigned is None:
            assigned = len(self.quantifier_ids)
            self.quantifier_ids[quantifier.qid] = assigned
        return assigned

    # -- expressions ----------------------------------------------------
    def expr(self, expression: ast.Expression) -> str:
        if isinstance(expression, QRef):
            return f"q{self.quantifier_id(expression.quantifier)}" \
                   f".{expression.column.upper()}"
        if isinstance(expression, RidRef):
            return f"RID(q{self.quantifier_id(expression.quantifier)})"
        if isinstance(expression, ast.Literal):
            return repr(expression.value)
        if isinstance(expression, ast.Parameter):
            return str(expression)
        if isinstance(expression, ast.BinaryOp):
            return (f"({self.expr(expression.left)} {expression.op} "
                    f"{self.expr(expression.right)})")
        if isinstance(expression, ast.UnaryOp):
            return f"({expression.op} {self.expr(expression.operand)})"
        if isinstance(expression, ast.FunctionCall):
            args = ", ".join(self.expr(a) for a in expression.args)
            distinct = "DISTINCT " if expression.distinct else ""
            return f"{expression.name.upper()}({distinct}{args})"
        if isinstance(expression, ast.IsNull):
            negated = " NOT" if expression.negated else ""
            return f"({self.expr(expression.operand)} IS{negated} NULL)"
        if isinstance(expression, ast.Between):
            negated = "NOT " if expression.negated else ""
            return (f"({self.expr(expression.operand)} {negated}BETWEEN "
                    f"{self.expr(expression.low)} AND "
                    f"{self.expr(expression.high)})")
        if isinstance(expression, ast.Like):
            negated = "NOT " if expression.negated else ""
            return (f"({self.expr(expression.operand)} {negated}LIKE "
                    f"{self.expr(expression.pattern)})")
        if isinstance(expression, ast.InList):
            negated = "NOT " if expression.negated else ""
            items = ", ".join(self.expr(i) for i in expression.items)
            return f"({self.expr(expression.operand)} {negated}IN " \
                   f"({items}))"
        if isinstance(expression, ast.CaseWhen):
            whens = " ".join(
                f"WHEN {self.expr(c)} THEN {self.expr(r)}"
                for c, r in expression.whens
            )
            default = "" if expression.default is None \
                else f" ELSE {self.expr(expression.default)}"
            return f"(CASE {whens}{default} END)"
        return str(expression)

    # -- boxes ----------------------------------------------------------
    def render(self, graph: QGMGraph) -> str:
        top = graph.top
        self.box_id(top)
        for output in top.outputs:
            self.lines.append(
                f"output {output.name.upper()} [{output.stream_kind}] "
                f"-> b{self.box_id(output.box)}"
            )
        pending = [output.box for output in top.outputs]
        seen: set[int] = set()
        while pending:
            box = pending.pop(0)
            if box.box_id in seen:
                continue
            seen.add(box.box_id)
            self._render_box(box)
            pending.extend(q.box for q in box.quantifiers())
        return "\n".join(self.lines)

    def _render_box(self, box: Box) -> None:
        out = self.lines
        if isinstance(box, BaseBox):
            out.append(f"b{self.box_id(box)} base {box.table.name}")
            return
        # Assign quantifier ids in body order before rendering anything.
        quantifier_ids = [
            (q, self.quantifier_id(q)) for q in box.quantifiers()
        ]
        header = f"b{self.box_id(box)} {box.kind}"
        if isinstance(box, SelectBox) and box.distinct:
            header += " distinct"
        if isinstance(box, SetOpBox):
            header += f" {box.operator}{' ALL' if box.all_rows else ''}"
        out.append(header)
        for quantifier, qid in quantifier_ids:
            poison = " poison" if quantifier.null_poison else ""
            out.append(f"  q{qid} {quantifier.qtype}{poison} "
                       f"-> b{self.box_id(quantifier.box)}")
        if box.head:
            columns = ", ".join(
                c.name.upper() if c.expression is None
                else f"{c.name.upper()}={self.expr(c.expression)}"
                for c in box.head
            )
            out.append(f"  head: {columns}")
        if isinstance(box, SelectBox):
            for predicate in sorted(self.expr(p) for p in box.predicates):
                out.append(f"  pred: {predicate}")
            if box.order_by:
                keys = ", ".join(
                    f"{self.expr(e)}{' DESC' if d else ''}"
                    for e, d in box.order_by
                )
                out.append(f"  order: {keys}")
            if box.limit is not None:
                out.append(f"  limit: {box.limit}")
            if box.offset is not None:
                out.append(f"  offset: {box.offset}")
        elif isinstance(box, GroupByBox):
            keys = ", ".join(self.expr(k) for k in box.group_keys)
            out.append(f"  keys: [{keys}]")
            for name, spec in box.aggregates.items():
                argument = "*" if spec.argument is None \
                    else self.expr(spec.argument)
                distinct = "DISTINCT " if spec.distinct else ""
                out.append(f"  agg {name.upper()} = "
                           f"{spec.function}({distinct}{argument})")
        elif isinstance(box, OuterJoinBox):
            condition = "" if box.condition is None \
                else self.expr(box.condition)
            out.append(f"  on: {condition}")


def canonical_dump(graph: QGMGraph) -> str:
    """Structure-only rendering with deterministic numbering.

    Stable across processes and independent of global box/quantifier
    counters, so it doubles as golden-test output and as the payload of
    :func:`canonical_fingerprint`.
    """
    return _Canonicalizer().render(graph)


def canonical_fingerprint(graph: QGMGraph) -> str:
    """A short digest of the canonical form, for plan-cache keys."""
    digest = hashlib.sha256(canonical_dump(graph).encode()).hexdigest()
    return digest[:16]
