"""Human-readable QGM graph dumps.

Reproduces (in text form) the graphical notation of Figs. 3-5: each box
printed with its kind, label, head columns, quantifiers, and predicates.
Used by ``Database.explain`` and heavily in tests to assert graph shapes.
"""

from __future__ import annotations

from repro.qgm.model import (BaseBox, Box, GroupByBox, OuterJoinBox,
                             QGMGraph, SelectBox, SetOpBox, TopBox, XNFBox)


def dump_graph(graph: QGMGraph) -> str:
    """Render the whole graph, TOP first, children in discovery order."""
    lines: list[str] = []
    seen: set[int] = set()

    def visit(box: Box, depth: int) -> None:
        indent = "  " * depth
        if box.box_id in seen:
            lines.append(f"{indent}[ref -> {describe(box)}]")
            return
        seen.add(box.box_id)
        lines.append(f"{indent}{describe(box)}")
        for detail in box_details(box):
            lines.append(f"{indent}  | {detail}")
        if isinstance(box, XNFBox):
            for component in box.components.values():
                lines.append(f"{indent}  component {component.name}"
                             f"{' (root)' if component.is_root else ''}"
                             f"{' R' if component.reachability_required else ''}:")
                visit(component.box, depth + 2)
            return
        for child in box.child_boxes():
            visit(child, depth + 1)

    visit(graph.top, 0)
    return "\n".join(lines)


def describe(box: Box) -> str:
    name = type(box).__name__
    return f"{name}#{box.box_id} '{box.label}'"


def box_details(box: Box) -> list[str]:
    details: list[str] = []
    if box.head:
        columns = ", ".join(
            c.name if c.expression is None else f"{c.name}={c.expression}"
            for c in box.head
        )
        details.append(f"head: {columns}")
    if isinstance(box, BaseBox):
        details.append(f"table: {box.table.name} ({len(box.table)} rows)")
    elif isinstance(box, SelectBox):
        for quantifier in box.body_quantifiers:
            details.append(
                f"quantifier {quantifier.qtype} {quantifier.name} "
                f"over {quantifier.box.label}"
            )
        for predicate in box.predicates:
            details.append(f"predicate: {predicate}")
        if box.distinct:
            details.append("distinct: enforce")
        if box.order_by:
            keys = ", ".join(
                f"{expr}{' DESC' if desc else ''}"
                for expr, desc in box.order_by
            )
            details.append(f"order by: {keys}")
        if box.limit is not None:
            details.append(f"limit: {box.limit}")
        if box.offset is not None:
            details.append(f"offset: {box.offset}")
    elif isinstance(box, GroupByBox):
        keys = ", ".join(str(k) for k in box.group_keys)
        details.append(f"group keys: [{keys}]")
        for name, spec in box.aggregates.items():
            argument = "*" if spec.argument is None else str(spec.argument)
            distinct = "DISTINCT " if spec.distinct else ""
            details.append(f"aggregate {name} = "
                           f"{spec.function}({distinct}{argument})")
    elif isinstance(box, SetOpBox):
        details.append(f"operator: {box.operator}"
                       f"{' ALL' if box.all_rows else ''}")
    elif isinstance(box, OuterJoinBox):
        details.append(f"condition: {box.condition}")
    elif isinstance(box, XNFBox):
        for relationship in box.relationships.values():
            details.append(
                f"relationship {relationship.name} "
                f"({relationship.parent} -{relationship.role}-> "
                f"{', '.join(relationship.children)}): "
                f"{relationship.predicate}"
            )
        if box.take_all:
            details.append("take: *")
        else:
            names = ", ".join(i.name for i in box.take_items)
            details.append(f"take: {names}")
    elif isinstance(box, TopBox):
        for output in box.outputs:
            details.append(
                f"output {output.name} [{output.stream_kind}"
                f"#{output.component_number}] <- {output.box.label}"
            )
    return details
