"""AST -> QGM construction: the semantic-checking stage.

For SQL this is CORONA's parser/semantics stage producing NF QGM.  For
XNF it implements the semantic routines of Sect. 4.1:

* phase 0 — QGM initialization (install the XNF operator and TOP),
* phase 1 — derivation of XNF component tables and relationships,
* phase 2 — component restrictions and reachability flags,
* phase 3 — projection (the TAKE clause).

Name resolution uses lexical scopes: each query block's FROM bindings
form a scope; subqueries chain to the enclosing scope, which is how
correlation is expressed.  EXISTS/IN subqueries are decorrelated into
E/A quantifiers of the enclosing box at build time, giving exactly the
shape Fig. 3a shows (an existential quantifier over the subquery box).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SemanticError
from repro.qgm.model import (AggregateSpec, BaseBox, Box, GroupByBox,
                             HeadColumn, OuterJoinBox, OutputStream, QGMGraph,
                             QRef, Quantifier, RidRef, SelectBox, SetOpBox,
                             TopBox, XNFBox, XNFComponent, XNFRelationship,
                             quantifiers_in, replace_qrefs,
                             subgraph_outer_refs)
from repro.sql import ast
from repro.storage.catalog import Catalog, ViewDefinition

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass
class Binding:
    """One FROM-clause binding: a quantifier plus an optional rename map.

    ``column_map`` translates the binding's source column names to head
    column names of the quantifier's box; it is only needed when a box
    merges several sources whose column names collided (outer joins,
    flattened nested joins).
    """

    quantifier: Quantifier
    column_map: Optional[dict[str, str]] = None  # upper(source) -> head name

    def head_name(self, column: str) -> Optional[str]:
        if self.column_map is not None:
            return self.column_map.get(column.upper())
        if self.quantifier.box.has_head_column(column):
            return self.quantifier.box.head_column(column).name
        return None

    def visible_columns(self) -> list[str]:
        if self.column_map is not None:
            return list(self.column_map.values())
        return [c.name for c in self.quantifier.box.head]


class Scope:
    """A lexical scope: FROM-clause bindings, chained to an outer scope."""

    def __init__(self, outer: Optional["Scope"] = None):
        self.outer = outer
        self.bindings: dict[str, Binding] = {}

    def bind(self, name: str, quantifier: Quantifier,
             column_map: Optional[dict[str, str]] = None) -> None:
        key = name.upper()
        if key in self.bindings:
            raise SemanticError(f"duplicate table binding {name!r}")
        self.bindings[key] = Binding(quantifier, column_map)

    def lookup(self, name: str) -> Optional[Binding]:
        scope: Optional[Scope] = self
        while scope is not None:
            binding = scope.bindings.get(name.upper())
            if binding is not None:
                return binding
            scope = scope.outer
        return None

    def resolve_qualified(self, table: str, column: str) -> QRef:
        binding = self.lookup(table)
        if binding is None:
            raise SemanticError(f"unknown table or alias {table!r}")
        head_name = binding.head_name(column)
        if head_name is None:
            raise SemanticError(f"table {table!r} has no column {column!r}")
        return QRef(binding.quantifier, head_name)

    def resolve_unqualified(self, column: str) -> QRef:
        scope: Optional[Scope] = self
        while scope is not None:
            matches = [
                b for b in scope.bindings.values()
                if b.head_name(column) is not None
            ]
            distinct = {(id(b.quantifier), b.head_name(column))
                        for b in matches}
            if len(distinct) > 1:
                raise SemanticError(f"ambiguous column reference {column!r}")
            if matches:
                binding = matches[0]
                return QRef(binding.quantifier, binding.head_name(column))
            scope = scope.outer
        raise SemanticError(f"unknown column {column!r}")

    def local_bindings(self) -> list[Binding]:
        return list(self.bindings.values())


class Exporter:
    """Rewrites expressions over a box's body into references through a
    quantifier that ranges over the box, adding head columns as needed.

    This is how derived tables expose exactly the columns their consumers
    use — and the mechanism behind common-subexpression sharing: several
    consumers export through the *same* box.
    """

    def __init__(self, box: Box, quantifier: Quantifier):
        if quantifier.box is not box:
            raise SemanticError("exporter quantifier must range over the box")
        self.box = box
        self.quantifier = quantifier

    def export(self, expression: ast.Expression) -> ast.Expression:
        def mapping(leaf):
            name = self._ensure_head(leaf)
            return QRef(self.quantifier, name)
        return replace_qrefs(expression, mapping)

    def _ensure_head(self, leaf: ast.Expression) -> str:
        for column in self.box.head:
            if column.expression == leaf:
                return column.name
        base = leaf.column if isinstance(leaf, QRef) else "RID"
        name = unique_head_name(self.box, base)
        self.box.head.append(HeadColumn(name, leaf))
        return name


def unique_head_name(box: Box, base: str) -> str:
    existing = {c.name.upper() for c in box.head}
    if base.upper() not in existing:
        return base
    suffix = 2
    while f"{base}_{suffix}".upper() in existing:
        suffix += 1
    return f"{base}_{suffix}"


def substitute_subtrees(expression: ast.Expression,
                        pairs: list[tuple[ast.Expression, ast.Expression]]
                        ) -> ast.Expression:
    """Replace whole subtrees equal to a pattern (used for GROUP BY)."""
    for pattern, replacement in pairs:
        if expression == pattern:
            return replacement
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(expression.op,
                            substitute_subtrees(expression.left, pairs),
                            substitute_subtrees(expression.right, pairs))
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(expression.op,
                           substitute_subtrees(expression.operand, pairs))
    if isinstance(expression, ast.FunctionCall):
        return ast.FunctionCall(
            expression.name,
            tuple(substitute_subtrees(a, pairs) for a in expression.args),
            expression.distinct,
        )
    if isinstance(expression, ast.IsNull):
        return ast.IsNull(substitute_subtrees(expression.operand, pairs),
                          expression.negated)
    if isinstance(expression, ast.Between):
        return ast.Between(substitute_subtrees(expression.operand, pairs),
                           substitute_subtrees(expression.low, pairs),
                           substitute_subtrees(expression.high, pairs),
                           expression.negated)
    if isinstance(expression, ast.Like):
        return ast.Like(substitute_subtrees(expression.operand, pairs),
                        substitute_subtrees(expression.pattern, pairs),
                        expression.negated)
    if isinstance(expression, ast.InList):
        return ast.InList(
            substitute_subtrees(expression.operand, pairs),
            tuple(substitute_subtrees(i, pairs) for i in expression.items),
            expression.negated,
        )
    if isinstance(expression, ast.CaseWhen):
        return ast.CaseWhen(
            tuple((substitute_subtrees(c, pairs),
                   substitute_subtrees(r, pairs))
                  for c, r in expression.whens),
            None if expression.default is None
            else substitute_subtrees(expression.default, pairs),
        )
    return expression


def subgraph_quantifiers(box: Box) -> set[Quantifier]:
    """All quantifiers owned by boxes reachable from ``box``."""
    owned: set[Quantifier] = set()
    seen: set[int] = set()

    def visit(current: Box) -> None:
        if current.box_id in seen:
            return
        seen.add(current.box_id)
        for quantifier in current.quantifiers():
            owned.add(quantifier)
            visit(quantifier.box)

    visit(box)
    return owned


def contains_subquery(expression: ast.Expression) -> bool:
    return any(
        isinstance(node, (ast.Exists, ast.InSubquery, ast.ScalarSubquery))
        for node in ast.walk_expression(expression)
    )


def validate_subquery_positions(expression: ast.Expression,
                                conjunctive: bool = True) -> None:
    """EXISTS/IN subqueries compile to body quantifiers, which conjoin
    with the rest of the WHERE clause; inside OR/NOT that translation is
    unsound, so we reject it (write the query as a UNION instead, which
    is also what the paper's reachability rewrite produces for
    multi-parent components)."""
    if isinstance(expression, (ast.Exists, ast.InSubquery)):
        if not conjunctive:
            raise SemanticError(
                "EXISTS/IN subqueries are only supported in top-level "
                "AND positions; rewrite the disjunction as a UNION"
            )
        return
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND" \
            and conjunctive:
        validate_subquery_positions(expression.left, True)
        validate_subquery_positions(expression.right, True)
        return
    # Below any non-AND node every quantified subquery is misplaced.
    for node in ast.walk_expression(expression):
        if node is not expression and \
                isinstance(node, (ast.Exists, ast.InSubquery)):
            raise SemanticError(
                "EXISTS/IN subqueries are only supported in top-level "
                "AND positions; rewrite the disjunction as a UNION"
            )


class QGMBuilder:
    """Builds QGM graphs from parsed statements against a catalog.

    ``xnf_component_resolver(view_name, component_name)`` is an optional
    hook (installed by the Database facade) returning a QGM box for a
    component of a previously defined XNF view — this is what makes the
    model "closed under its language operations" (Sect. 2).
    """

    def __init__(self, catalog: Catalog,
                 xnf_component_resolver: Optional[
                     Callable[[str, str], Box]] = None):
        self.catalog = catalog
        self.xnf_component_resolver = xnf_component_resolver
        self._base_boxes: dict[str, BaseBox] = {}
        self._view_boxes: dict[str, Box] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def build_select(self, statement: ast.SelectStatement) -> QGMGraph:
        box = self._build_select(statement, None)
        top = TopBox()
        top.outputs.append(OutputStream(name="RESULT", box=box))
        return QGMGraph(top=top, statement_kind="select")

    def build_xnf(self, query: ast.XNFQuery,
                  view_name: str = "XNF") -> QGMGraph:
        xnf_box = self._build_xnf_box(query, view_name)
        top = TopBox()
        # Placeholder stream: XNF semantic rewrite replaces it with one
        # stream per TAKEn component/relationship.
        top.outputs.append(OutputStream(name=view_name, box=xnf_box,
                                        stream_kind="xnf"))
        return QGMGraph(top=top, statement_kind="xnf")

    # ------------------------------------------------------------------
    # SELECT statements
    # ------------------------------------------------------------------
    def _build_select(self, statement: ast.SelectStatement,
                      outer_scope: Optional[Scope]) -> Box:
        box = self._build_query_block(statement, outer_scope)
        if statement.set_operation is not None:
            box = self._build_set_operation(box, statement.set_operation,
                                            outer_scope)
        if statement.order_by or statement.limit is not None \
                or statement.offset is not None:
            box = self._apply_presentation(box, statement)
        return box

    def _build_set_operation(self, left_box: Box,
                             operation: ast.SetOperation,
                             outer_scope: Optional[Scope]) -> Box:
        right_box = self._build_select(operation.right, outer_scope)
        if len(left_box.head) != len(right_box.head):
            raise SemanticError(
                f"{operation.operator} operands have different column counts "
                f"({len(left_box.head)} vs {len(right_box.head)})"
            )
        setop = SetOpBox(operation.operator, operation.all,
                         label=operation.operator.lower())
        setop.inputs.append(Quantifier(left_box, Quantifier.F))
        setop.inputs.append(Quantifier(right_box, Quantifier.F))
        setop.head = [HeadColumn(c.name) for c in left_box.head]
        return setop

    def _apply_presentation(self, box: Box,
                            statement: ast.SelectStatement) -> Box:
        """Attach ORDER BY / LIMIT / OFFSET, wrapping if necessary."""
        if not isinstance(box, SelectBox) or box.order_by or \
                box.limit is not None:
            box = self._wrap_in_select(box)
        order: list[tuple[ast.Expression, bool]] = []
        for item in statement.order_by:
            order.append((
                self._resolve_order_expression(item.expression, box,
                                               statement),
                item.descending,
            ))
        box.order_by = order
        box.limit = statement.limit
        box.offset = statement.offset
        return box

    def _resolve_order_expression(self, expression: ast.Expression,
                                  box: SelectBox,
                                  statement: ast.SelectStatement
                                  ) -> ast.Expression:
        """ORDER BY resolves by position, output name, or block columns."""
        if isinstance(expression, ast.Literal) and \
                isinstance(expression.value, int):
            position = expression.value
            if not 1 <= position <= len(box.head):
                raise SemanticError(
                    f"ORDER BY position {position} out of range"
                )
            return self._head_reference(box, position - 1)
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            for i, column in enumerate(box.head):
                if column.name.upper() == expression.column.upper():
                    return self._head_reference(box, i)
        if ast.contains_aggregate(expression):
            raise SemanticError(
                "ORDER BY on an aggregate requires an output alias "
                "or column position"
            )
        scope = getattr(box, "binding_scope", None)
        if scope is None:
            scope = Scope()
            for quantifier in box.body_quantifiers:
                scope.bind(quantifier.name, quantifier)
        try:
            return self._resolve(expression, scope, box)
        except SemanticError:
            # Grouped/wrapped blocks lose their FROM bindings; a
            # qualified reference can still order by an output column
            # of the same name (e.g. ORDER BY p.pname after GROUP BY
            # p.pname).
            if isinstance(expression, ast.ColumnRef):
                for i, column in enumerate(box.head):
                    if column.name.upper() == expression.column.upper():
                        return self._head_reference(box, i)
            raise

    @staticmethod
    def _head_reference(box: SelectBox, position: int) -> ast.Expression:
        column = box.head[position]
        if column.expression is not None:
            return column.expression
        return QRef(box.body_quantifiers[0], column.name)

    def _wrap_in_select(self, box: Box) -> SelectBox:
        wrapper = SelectBox(label=f"wrap_{box.label}")
        quantifier = wrapper.add_quantifier(Quantifier(box, Quantifier.F,
                                                       name=box.label))
        wrapper.head = [
            HeadColumn(c.name, QRef(quantifier, c.name)) for c in box.head
        ]
        return wrapper

    def _build_query_block(self, statement: ast.SelectStatement,
                           outer_scope: Optional[Scope]) -> Box:
        box = SelectBox()
        scope = Scope(outer_scope)
        for item in statement.from_items:
            self._add_from_item(item, box, scope)
        if statement.where is not None:
            where = ast.normalize_negations(statement.where)
            validate_subquery_positions(where)
            predicate = self._resolve(where, scope, box)
            box.predicates.extend(self._split_conjuncts(predicate))
        needs_grouping = bool(statement.group_by) or any(
            not isinstance(i.expression, ast.Star)
            and ast.contains_aggregate(i.expression)
            for i in statement.select_items
        ) or (statement.having is not None)
        if needs_grouping:
            return self._build_grouped(statement, box, scope)
        self._build_plain_head(statement, box, scope)
        box.distinct = statement.distinct
        box.binding_scope = scope  # kept for ORDER BY resolution
        return box

    def _add_from_item(self, item: ast.FromItem, box: SelectBox,
                       scope: Scope) -> None:
        if isinstance(item, ast.Join):
            self._add_join(item, box, scope)
            return
        child, bindings = self._from_item_as_box(item, scope)
        name = bindings[0][0] if bindings else child.label
        quantifier = box.add_quantifier(
            Quantifier(child, Quantifier.F, name=name)
        )
        for binding_name, column_map in bindings:
            scope.bind(binding_name, quantifier, column_map)

    def _add_join(self, join: ast.Join, box: SelectBox,
                  scope: Scope) -> None:
        if join.kind in ("INNER", "CROSS"):
            self._add_from_item(join.left, box, scope)
            self._add_from_item(join.right, box, scope)
            if join.condition is not None:
                predicate = self._resolve(join.condition, scope, box)
                box.predicates.extend(self._split_conjuncts(predicate))
            return
        if join.kind == "LEFT":
            outer_box, bindings = self._build_outer_join(join, scope)
            quantifier = box.add_quantifier(
                Quantifier(outer_box, Quantifier.F, name=outer_box.label)
            )
            for binding_name, column_map in bindings:
                scope.bind(binding_name, quantifier, column_map)
            return
        raise SemanticError(f"unsupported join kind {join.kind!r}")

    def _build_outer_join(
            self, join: ast.Join, scope: Scope
    ) -> tuple[OuterJoinBox, list[tuple[str, dict[str, str]]]]:
        """Build a LEFT JOIN subtree as a dedicated box.

        Returns the box plus per-side binding entries whose column maps
        translate source column names to the box's (collision-renamed)
        head names.
        """
        left_box, left_bindings = self._from_item_as_box(join.left, scope)
        right_box, right_bindings = self._from_item_as_box(join.right, scope)
        left_q = Quantifier(left_box, Quantifier.F, name="loj_left")
        right_q = Quantifier(right_box, Quantifier.F, name="loj_right")

        condition_scope = Scope(scope.outer)
        for name, column_map in left_bindings:
            condition_scope.bind(name, left_q, column_map)
        for name, column_map in right_bindings:
            condition_scope.bind(name, right_q, column_map)
        scratch = SelectBox("loj_scratch")
        condition = None
        if join.condition is not None:
            condition = self._resolve(join.condition, condition_scope,
                                      scratch)
            if scratch.body_quantifiers:
                raise SemanticError(
                    "subqueries are not supported in LEFT JOIN conditions"
                )

        outer_box = OuterJoinBox(left_q, right_q, condition)
        out_bindings: list[tuple[str, dict[str, str]]] = []
        used: set[str] = set()
        for source_q, side_bindings in ((left_q, left_bindings),
                                        (right_q, right_bindings)):
            for binding_name, column_map in side_bindings:
                new_map: dict[str, str] = {}
                source_columns = (list(column_map.items())
                                  if column_map is not None else
                                  [(c.name.upper(), c.name)
                                   for c in source_q.box.head])
                for source_name, head_in_child in source_columns:
                    out_name = head_in_child
                    if out_name.upper() in used:
                        out_name = f"{binding_name}_{out_name}"
                    used.add(out_name.upper())
                    outer_box.head.append(
                        HeadColumn(out_name, QRef(source_q, head_in_child))
                    )
                    new_map[source_name] = out_name
                out_bindings.append((binding_name, new_map))
        return outer_box, out_bindings

    def _from_item_as_box(
            self, item: ast.FromItem, scope: Scope
    ) -> tuple[Box, list[tuple[str, Optional[dict[str, str]]]]]:
        """A FROM item as a standalone box plus its binding entries."""
        if isinstance(item, ast.TableRef):
            box = self._resolve_table(item.name)
            if item.alias is None and "." in item.name:
                binding_name = item.name.split(".")[-1]
            else:
                binding_name = item.binding
            return box, [(binding_name, None)]
        if isinstance(item, ast.SubqueryRef):
            return (self._build_select(item.query, scope.outer),
                    [(item.alias, None)])
        if isinstance(item, ast.Join):
            if item.kind == "LEFT":
                box, bindings = self._build_outer_join(item, scope)
                return box, list(bindings)
            nested = SelectBox(label="join")
            nested_scope = Scope(scope.outer)
            self._add_join(item, nested, nested_scope)
            bindings_out: list[tuple[str, Optional[dict[str, str]]]] = []
            used: set[str] = set()
            for binding_name, binding in nested_scope.bindings.items():
                new_map: dict[str, str] = {}
                for source_name in (binding.column_map or
                                    {c.name.upper(): c.name
                                     for c in binding.quantifier.box.head}):
                    head_in_child = binding.head_name(source_name)
                    out_name = head_in_child
                    if out_name.upper() in used:
                        out_name = f"{binding_name}_{out_name}"
                    used.add(out_name.upper())
                    nested.head.append(
                        HeadColumn(out_name,
                                   QRef(binding.quantifier, head_in_child))
                    )
                    new_map[source_name.upper()] = out_name
                bindings_out.append((binding_name, new_map))
            return nested, bindings_out
        raise SemanticError(f"unsupported FROM item {item!r}")

    def _resolve_table(self, name: str) -> Box:
        """A FROM-clause name: base table, SQL view, or XNF component."""
        if "." in name:
            view_name, component = name.split(".", 1)
            if self.xnf_component_resolver is None:
                raise SemanticError(
                    f"cannot resolve XNF component reference {name!r}"
                )
            return self.xnf_component_resolver(view_name, component)
        key = name.upper()
        if self.catalog.has_table(name):
            box = self._base_boxes.get(key)
            if box is None:
                box = BaseBox(self.catalog.table(name))
                self._base_boxes[key] = box
            return box
        if self.catalog.has_view(name):
            view = self.catalog.view(name)
            if view.is_xnf:
                raise SemanticError(
                    f"XNF view {name!r} cannot appear directly in FROM; "
                    f"reference one of its components as {name}.component"
                )
            box = self._view_boxes.get(key)
            if box is None:
                box = self._build_view(view)
                self._view_boxes[key] = box
            return box
        raise SemanticError(f"unknown table or view {name!r}")

    def _build_view(self, view: ViewDefinition) -> Box:
        box = self._build_select(view.definition, None)
        if view.column_names:
            if len(view.column_names) != len(box.head):
                raise SemanticError(
                    f"view {view.name!r} declares {len(view.column_names)} "
                    f"columns but its query produces {len(box.head)}"
                )
            for column, new_name in zip(box.head, view.column_names):
                column.name = new_name
        box.label = view.name
        if isinstance(box, SelectBox):
            # Mark for the ViewMerge rule: shared references to a SQL
            # view may be cloned apart so each consumer specializes.
            box.from_view = view.name
        return box

    # ------------------------------------------------------------------
    # Heads
    # ------------------------------------------------------------------
    def _build_plain_head(self, statement: ast.SelectStatement,
                          box: SelectBox, scope: Scope) -> None:
        head: list[HeadColumn] = []
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                for name, resolved in self._expand_star(item.expression,
                                                        scope):
                    head.append(HeadColumn(unique_head_name_in(head, name),
                                           resolved))
                continue
            name = item.alias or self._default_name(item.expression,
                                                    len(head))
            resolved = self._resolve(item.expression, scope, box)
            head.append(HeadColumn(unique_head_name_in(head, name), resolved))
        if not head:
            raise SemanticError("empty select list")
        box.head = head

    def _expand_star(self, star: ast.Star,
                     scope: Scope) -> list[tuple[str, ast.Expression]]:
        if star.table is not None:
            binding = scope.bindings.get(star.table.upper())
            if binding is None:
                raise SemanticError(f"unknown table in {star.table}.*")
            selected = {star.table.upper(): binding}
        else:
            selected = scope.bindings
        pairs: list[tuple[str, ast.Expression]] = []
        for binding in selected.values():
            for head_name in binding.visible_columns():
                if head_name.startswith("$"):
                    continue  # hidden system columns never expand via *
                pairs.append((head_name,
                              QRef(binding.quantifier, head_name)))
        return pairs

    @staticmethod
    def _default_name(expression: ast.Expression, position: int) -> str:
        if isinstance(expression, ast.ColumnRef):
            return expression.column
        if isinstance(expression, ast.FunctionCall):
            return expression.name
        return f"C{position + 1}"

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------
    def _build_grouped(self, statement: ast.SelectStatement,
                       lower: SelectBox, scope: Scope) -> Box:
        """Build the SelectBox -> GroupByBox -> SelectBox sandwich."""
        if statement.having is not None and \
                contains_subquery(statement.having):
            raise SemanticError("subqueries in HAVING are not supported")
        groupby = GroupByBox(label="gby")
        input_q = Quantifier(lower, Quantifier.F, name="gin")
        groupby.input = input_q
        exporter = Exporter(lower, input_q)
        lower.head = []

        key_columns: list[tuple[ast.Expression, str]] = []
        for position, key_ast in enumerate(statement.group_by):
            resolved = self._resolve(key_ast, scope, lower)
            exported = exporter.export(resolved)
            name = (key_ast.column if isinstance(key_ast, ast.ColumnRef)
                    else f"GK{position + 1}")
            name = unique_head_name(groupby, name)
            groupby.head.append(HeadColumn(name, exported))
            groupby.group_keys.append(exported)
            key_columns.append((resolved, name))

        aggregate_asts: list[ast.FunctionCall] = []
        sources: list[ast.Expression] = [
            i.expression for i in statement.select_items
            if not isinstance(i.expression, ast.Star)
        ]
        if statement.having is not None:
            sources.append(statement.having)
        for source in sources:
            for node in ast.walk_expression(source):
                if isinstance(node, ast.FunctionCall) \
                        and node.name.upper() in AGGREGATE_NAMES \
                        and node not in aggregate_asts:
                    aggregate_asts.append(node)

        aggregate_columns: list[tuple[ast.FunctionCall, str]] = []
        for position, call in enumerate(aggregate_asts):
            name = unique_head_name(groupby,
                                    f"{call.name.upper()}{position + 1}")
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                spec = AggregateSpec(call.name.upper(), None, call.distinct)
            else:
                resolved = self._resolve(call.args[0], scope, lower)
                spec = AggregateSpec(call.name.upper(),
                                     exporter.export(resolved), call.distinct)
            groupby.head.append(HeadColumn(name, None))
            groupby.aggregates[name] = spec
            aggregate_columns.append((call, name))

        upper = SelectBox(label="having")
        group_q = upper.add_quantifier(Quantifier(groupby, Quantifier.F,
                                                  name="g"))

        def to_upper(expression: ast.Expression) -> ast.Expression:
            return self._resolve_grouped(expression, scope, lower,
                                         key_columns, aggregate_columns,
                                         group_q)

        head: list[HeadColumn] = []
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                if statement.group_by:
                    for _resolved, name in key_columns:
                        head.append(HeadColumn(
                            unique_head_name_in(head, name),
                            QRef(group_q, name),
                        ))
                    continue
                raise SemanticError(
                    "SELECT * with aggregation requires GROUP BY"
                )
            name = item.alias or self._default_name(item.expression, len(head))
            head.append(HeadColumn(unique_head_name_in(head, name),
                                   to_upper(item.expression)))
        upper.head = head
        if statement.having is not None:
            upper.predicates.extend(
                self._split_conjuncts(to_upper(statement.having))
            )
        upper.distinct = statement.distinct
        return upper

    def _resolve_grouped(self, expression: ast.Expression, scope: Scope,
                         lower: SelectBox,
                         key_columns: list[tuple[ast.Expression, str]],
                         aggregate_columns: list[tuple[ast.FunctionCall, str]],
                         group_q: Quantifier) -> ast.Expression:
        """Resolve an upper-block expression: aggregates and group keys
        become references to the group-by box's head."""
        pairs: list[tuple[ast.Expression, ast.Expression]] = [
            (call, QRef(group_q, name)) for call, name in aggregate_columns
        ]
        substituted = substitute_subtrees(expression, pairs)
        resolved = self._resolve(substituted, scope, lower)
        key_pairs: list[tuple[ast.Expression, ast.Expression]] = [
            (resolved_key, QRef(group_q, name))
            for resolved_key, name in key_columns
        ]
        final = substitute_subtrees(resolved, key_pairs)
        for quantifier in quantifiers_in(final):
            if quantifier in lower.body_quantifiers:
                raise SemanticError(
                    "column must appear in GROUP BY or inside an aggregate"
                )
        return final

    # ------------------------------------------------------------------
    # Expression resolution
    # ------------------------------------------------------------------
    def _resolve(self, expression: ast.Expression, scope: Scope,
                 box: SelectBox) -> ast.Expression:
        if isinstance(expression, (QRef, RidRef)):
            return expression
        if isinstance(expression, (ast.Literal, ast.Parameter)):
            return expression
        if isinstance(expression, ast.ColumnRef):
            if expression.table is not None:
                return scope.resolve_qualified(expression.table,
                                               expression.column)
            return scope.resolve_unqualified(expression.column)
        if isinstance(expression, ast.Star):
            raise SemanticError("'*' is only allowed in select lists "
                                "and COUNT(*)")
        if isinstance(expression, ast.BinaryOp):
            return ast.BinaryOp(expression.op,
                                self._resolve(expression.left, scope, box),
                                self._resolve(expression.right, scope, box))
        if isinstance(expression, ast.UnaryOp):
            return ast.UnaryOp(expression.op,
                               self._resolve(expression.operand, scope, box))
        if isinstance(expression, ast.FunctionCall):
            if expression.name.upper() in AGGREGATE_NAMES:
                raise SemanticError(
                    f"aggregate {expression.name} not allowed here"
                )
            return ast.FunctionCall(
                expression.name.upper(),
                tuple(self._resolve(a, scope, box) for a in expression.args),
                expression.distinct,
            )
        if isinstance(expression, ast.IsNull):
            return ast.IsNull(self._resolve(expression.operand, scope, box),
                              expression.negated)
        if isinstance(expression, ast.Between):
            return ast.Between(self._resolve(expression.operand, scope, box),
                               self._resolve(expression.low, scope, box),
                               self._resolve(expression.high, scope, box),
                               expression.negated)
        if isinstance(expression, ast.Like):
            return ast.Like(self._resolve(expression.operand, scope, box),
                            self._resolve(expression.pattern, scope, box),
                            expression.negated)
        if isinstance(expression, ast.InList):
            return ast.InList(
                self._resolve(expression.operand, scope, box),
                tuple(self._resolve(i, scope, box) for i in expression.items),
                expression.negated,
            )
        if isinstance(expression, ast.CaseWhen):
            return ast.CaseWhen(
                tuple((self._resolve(c, scope, box),
                       self._resolve(r, scope, box))
                      for c, r in expression.whens),
                None if expression.default is None
                else self._resolve(expression.default, scope, box),
            )
        if isinstance(expression, ast.Exists):
            return self._resolve_exists(expression, scope, box)
        if isinstance(expression, ast.InSubquery):
            return self._resolve_in_subquery(expression, scope, box)
        if isinstance(expression, ast.ScalarSubquery):
            return self._resolve_scalar_subquery(expression, scope, box)
        raise SemanticError(f"cannot resolve expression {expression!r}")

    def _resolve_exists(self, expression: ast.Exists, scope: Scope,
                        box: SelectBox) -> ast.Expression:
        """EXISTS -> E quantifier (NOT EXISTS -> A), decorrelated.

        Returns Literal(True): the quantifier itself carries the
        semantics; correlated predicates move into the enclosing box.
        This matches Fig. 3a, where the subquery box hangs off the outer
        box through an existential quantifier.
        """
        qtype = Quantifier.A if expression.negated else Quantifier.E
        self._attach_subquery(expression.subquery, scope, box, qtype)
        return ast.Literal(True)

    def _resolve_in_subquery(self, expression: ast.InSubquery, scope: Scope,
                             box: SelectBox) -> ast.Expression:
        operand = self._resolve(expression.operand, scope, box)
        qtype = Quantifier.A if expression.negated else Quantifier.E
        quantifier = self._attach_subquery(expression.subquery, scope, box,
                                           qtype)
        if len(quantifier.box.head) != 1:
            raise SemanticError("IN subquery must produce exactly one column")
        match = ast.BinaryOp("=", operand,
                             QRef(quantifier, quantifier.box.head[0].name))
        box.predicates.append(match)
        if expression.negated:
            quantifier.null_poison = True
        return ast.Literal(True)

    def _attach_subquery(self, subquery: ast.SelectStatement, scope: Scope,
                         box: SelectBox, qtype: str) -> Quantifier:
        inner = self._build_select(subquery, scope)
        if not isinstance(inner, SelectBox):
            inner = self._wrap_in_select(inner)
        quantifier = box.add_quantifier(Quantifier(inner, qtype, name="sq"))
        self._decorrelate(inner, quantifier, box)
        return quantifier

    def _decorrelate(self, inner: SelectBox, quantifier: Quantifier,
                     outer: SelectBox) -> None:
        """Pull predicates referencing outer quantifiers up into ``outer``.

        Inner-side references inside pulled predicates are exported
        through the inner box's head.
        """
        inner_quantifiers = set(inner.body_quantifiers)
        exporter = Exporter(inner, quantifier)
        remaining: list[ast.Expression] = []
        for predicate in inner.predicates:
            referenced = quantifiers_in(predicate)
            if referenced and not referenced <= inner_quantifiers:
                def mapping(leaf, _inner=inner_quantifiers, _exp=exporter):
                    target = (leaf.quantifier
                              if isinstance(leaf, (QRef, RidRef)) else None)
                    if target is not None and target in _inner:
                        return _exp.export(leaf)
                    return leaf
                outer.predicates.append(replace_qrefs(predicate, mapping))
            else:
                remaining.append(predicate)
        inner.predicates = remaining

    def _resolve_scalar_subquery(self, expression: ast.ScalarSubquery,
                                 scope: Scope,
                                 box: SelectBox) -> ast.Expression:
        inner = self._build_select(expression.subquery, scope)
        if len(inner.head) != 1:
            raise SemanticError(
                "scalar subquery must produce exactly one column"
            )
        # Correlation is allowed against the immediately enclosing query
        # block only: the ScalarAggToJoin rule decorrelates the common
        # aggregate shape into a group-by join, and anything it cannot
        # handle falls back to per-binding nested re-execution in the
        # planner — both assume the outer references resolve in the
        # block that owns the S quantifier.
        outer_refs = subgraph_outer_refs(inner)
        local = {binding.quantifier for binding in scope.local_bindings()}
        if any(ref not in local for ref in outer_refs):
            raise SemanticError(
                "correlated scalar subqueries may only reference the "
                "immediately enclosing query block"
            )
        quantifier = box.add_quantifier(Quantifier(inner, Quantifier.S,
                                                   name="ssq"))
        return QRef(quantifier, inner.head[0].name)

    @staticmethod
    def _split_conjuncts(predicate: ast.Expression) -> list[ast.Expression]:
        parts = ast.conjuncts(predicate)
        # Literal TRUE conjuncts appear where subqueries were detached.
        return [p for p in parts if p != ast.Literal(True)]

    # ------------------------------------------------------------------
    # XNF (Sect. 4.1)
    # ------------------------------------------------------------------
    def _build_xnf_box(self, query: ast.XNFQuery, view_name: str) -> XNFBox:
        # Phase 0: QGM initialization.
        xnf = XNFBox(label=view_name)
        names_seen: set[str] = set()
        for definition in query.definitions:
            if definition.name.upper() in names_seen:
                raise SemanticError(
                    f"duplicate XNF definition {definition.name!r}"
                )
            names_seen.add(definition.name.upper())

        # Phase 1a: derivation of XNF component tables.
        for component in query.components:
            box = self._build_select(component.query, None)
            if not isinstance(box, SelectBox):
                # Set-operation (or other non-select) derivations get a
                # select wrapper so identity installation and
                # relationship quantifiers have a uniform shape.
                box = self._wrap_in_select(box)
            box.label = component.name
            xnf.components[component.name.upper()] = XNFComponent(
                name=component.name.upper(), box=box
            )

        # Phase 1b: derivation of XNF relationships.
        for relationship in query.relationships:
            xnf.relationships[relationship.name.upper()] = \
                self._build_relationship(relationship, xnf)

        # Phase 2: reachability flags — roots are components no
        # relationship points at; everything else must be reachable.
        targeted = {
            child for rel in xnf.relationships.values()
            for child in rel.children
        }
        any_root = False
        for name, component in xnf.components.items():
            component.is_root = name not in targeted
            component.reachability_required = not component.is_root
            any_root = any_root or component.is_root
        if not any_root and xnf.components:
            # Pure cycle (recursive CO): the first-defined component
            # anchors the fixpoint (documented convention).
            first = next(iter(xnf.components.values()))
            first.is_root = True
            first.reachability_required = False

        # Phase 3: projection (TAKE).
        xnf.take_all = query.take_all
        if not query.take_all:
            for item in query.take_items:
                key = item.name.upper()
                if key not in xnf.components and key not in xnf.relationships:
                    raise SemanticError(
                        f"TAKE references unknown element {item.name!r}"
                    )
                xnf.take_items.append(item)
        return xnf

    def _build_relationship(self, definition: ast.XNFRelationshipDef,
                            xnf: XNFBox) -> XNFRelationship:
        parent_key = definition.parent.upper()
        if parent_key not in xnf.components:
            raise SemanticError(
                f"relationship {definition.name!r}: unknown parent "
                f"component {definition.parent!r}"
            )
        child_keys: list[str] = []
        for child in definition.children:
            key = child.upper()
            if key not in xnf.components:
                raise SemanticError(
                    f"relationship {definition.name!r}: unknown child "
                    f"component {child!r}"
                )
            child_keys.append(key)

        parent_q = Quantifier(xnf.components[parent_key].box, Quantifier.F,
                              name=definition.parent)
        child_qs = tuple(
            Quantifier(xnf.components[key].box, Quantifier.F, name=child)
            for key, child in zip(child_keys, definition.children)
        )
        using_qs = []
        scope = Scope()
        # The VIA role names the *parent* partner (Sect. 2: "we have
        # given role names to the parent partners").  For self-loop
        # relationships (recursive COs) the role is the only way to
        # address the parent side, the component name addressing the
        # child side.
        child_names = {c.upper() for c in definition.children}
        if definition.parent.upper() not in child_names:
            scope.bind(definition.parent, parent_q)
        if definition.role.upper() not in child_names \
                and definition.role.upper() != definition.parent.upper():
            scope.bind(definition.role, parent_q)
        for quantifier, child in zip(child_qs, definition.children):
            scope.bind(child, quantifier)
        for table_ref in definition.using:
            using_box = self._resolve_table(table_ref.name)
            quantifier = Quantifier(using_box, Quantifier.F,
                                    name=table_ref.binding)
            using_qs.append(quantifier)
            scope.bind(table_ref.binding, quantifier)

        predicate = None
        if definition.where is not None:
            scratch = SelectBox("rel_scratch")
            predicate = self._resolve(definition.where, scope, scratch)
            if scratch.body_quantifiers:
                raise SemanticError(
                    "subqueries are not supported in RELATE predicates"
                )
        attributes: list[tuple[str, ast.Expression]] = []
        used_names: set[str] = set()
        for position, item in enumerate(definition.attributes):
            scratch = SelectBox("rel_attr_scratch")
            resolved = self._resolve(item.expression, scope, scratch)
            if scratch.body_quantifiers:
                raise SemanticError(
                    "subqueries are not supported in relationship "
                    "attributes"
                )
            name = (item.alias or self._default_name(
                item.expression, position)).upper()
            if name in used_names:
                raise SemanticError(
                    f"duplicate relationship attribute {name!r}"
                )
            used_names.add(name)
            attributes.append((name, resolved))
        return XNFRelationship(
            name=definition.name.upper(),
            role=definition.role.upper(),
            parent=parent_key,
            children=tuple(child_keys),
            parent_quantifier=parent_q,
            child_quantifiers=child_qs,
            using_quantifiers=tuple(using_qs),
            predicate=predicate,
            attributes=tuple(attributes),
        )


def unique_head_name_in(head: list[HeadColumn], base: str) -> str:
    existing = {c.name.upper() for c in head}
    if base.upper() not in existing:
        return base
    suffix = 2
    while f"{base}_{suffix}".upper() in existing:
        suffix += 1
    return f"{base}_{suffix}"
