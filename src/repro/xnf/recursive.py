"""Fixpoint evaluation of recursive composite objects.

Sect. 2: "An XNF query may also specify a recursive CO being identified
by a cycle in the query's schema graph.  This cycle basically defines a
'derivation rule' that iterates along the cycle's relationships to
collect the tuples until a fixed point is reached and no more tuples
qualify."

The translator materializes every component's raw derivation and every
relationship's *unrestricted* connection table (parent-raw x child-raw)
once; this module then runs a semi-naive reachability iteration over the
materialized connections, seeded with the root components' tuples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.optimizer.plan import ExecutionContext
from repro.xnf.result import ComponentStream, ConnectionStream, COResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xnf.result import XNFExecutable


def evaluate_recursive(executable: "XNFExecutable",
                       ctx: Optional[ExecutionContext] = None) -> COResult:
    translated = executable.translated
    if ctx is None:
        ctx = executable.plan.new_context()

    # 1. Materialize raw component streams and unrestricted connections.
    raw_components: dict[str, ComponentStream] = {}
    raw_connections: dict[str, ConnectionStream] = {}
    for stream, node in executable.plan.outputs:
        rows = executable.plan.run_node(node, ctx)
        if stream.stream_kind == "component":
            identity = stream.identity_position
            value_positions = [i for i in range(len(node.columns))
                               if i != identity]
            component = ComponentStream(
                name=stream.name.upper(), number=stream.component_number,
                columns=[node.columns[i] for i in value_positions],
            )
            seen: set = set()
            for row in rows:
                oid = row[identity]
                if oid in seen:
                    continue
                seen.add(oid)
                component.oids.append(oid)
                component.rows.append(
                    tuple(row[i] for i in value_positions)
                )
            raw_components[component.name] = component
        else:
            raw_connections[stream.name.upper()] = ConnectionStream(
                name=stream.name.upper(), number=stream.component_number,
                role=stream.role or "", parent=stream.parent or "",
                children=stream.children,
                connections=[tuple(r) for r in rows],
                attribute_names=stream.attribute_names,
            )

    # 2. Semi-naive fixpoint over reachable identities.
    reachable: dict[str, set] = {name: set()
                                 for name in raw_components}
    frontier: dict[str, set] = {name: set() for name in raw_components}
    iterations = 0
    for root in translated.root_names:
        oids = set(raw_components[root].oids)
        reachable[root] = set(oids)
        frontier[root] = set(oids)

    kept_connections: dict[str, set] = {name: set()
                                        for name in raw_connections}
    changed = True
    while changed:
        iterations += 1
        changed = False
        next_frontier: dict[str, set] = {name: set()
                                         for name in raw_components}
        for name, stream in raw_connections.items():
            info = translated.relationships[name]
            parent = info.parent
            if not frontier[parent]:
                continue
            active_parents = frontier[parent]
            for connection in stream.connections:
                parent_oid = connection[0]
                if parent_oid not in active_parents:
                    continue
                kept_connections[name].add(connection)
                for child, child_oid in zip(info.children, connection[1:]):
                    if child_oid not in reachable[child]:
                        reachable[child].add(child_oid)
                        next_frontier[child].add(child_oid)
                        changed = True
        frontier = next_frontier

    # A second pass keeps connections whose parent became reachable in a
    # *later* wave than when the connection table was first visited.
    for name, stream in raw_connections.items():
        info = translated.relationships[name]
        parent_reachable = reachable[info.parent]
        for connection in stream.connections:
            if connection[0] in parent_reachable:
                kept_connections[name].add(connection)

    # 3. Filter streams down to reachable tuples.
    result = COResult(schema=translated.schema, components={},
                      relationships={})
    shipped = 0
    for name, component in raw_components.items():
        info = translated.components[name]
        allowed = reachable[name]
        filtered = ComponentStream(name=name, number=component.number,
                                   columns=component.columns)
        for oid, row in zip(component.oids, component.rows):
            if oid in allowed:
                filtered.oids.append(oid)
                filtered.rows.append(row)
        if info.taken:
            result.components[name] = filtered
            shipped += len(filtered)
    for name, stream in raw_connections.items():
        info = translated.relationships[name]
        kept = [c for c in stream.connections
                if c in kept_connections[name]]
        filtered = ConnectionStream(
            name=name, number=stream.number, role=stream.role,
            parent=stream.parent, children=stream.children,
            connections=kept, attribute_names=stream.attribute_names,
        )
        if info.taken:
            result.relationships[name] = filtered
            shipped += len(filtered)
    result.shipped_tuples = shipped
    result.counters = dict(ctx.counters)
    result.counters["fixpoint_iterations"] = iterations
    return result
