"""XNF: composite-object views (the paper's primary contribution)."""

from repro.xnf.naive import NaiveXNFEvaluator
from repro.xnf.result import (ComponentStream, ConnectionStream, COResult,
                              TaggedTuple, XNFExecutable)
from repro.xnf.schema_graph import SchemaEdge, SchemaGraph
from repro.xnf.translate import (OID, POID, ComponentPlanInfo,
                                 RelationshipPlanInfo, TranslatedXNF,
                                 XNFOptions, XNFTranslator)

__all__ = [
    "NaiveXNFEvaluator",
    "ComponentStream", "ConnectionStream", "COResult", "TaggedTuple",
    "XNFExecutable",
    "SchemaEdge", "SchemaGraph",
    "OID", "POID", "ComponentPlanInfo", "RelationshipPlanInfo",
    "TranslatedXNF", "XNFOptions", "XNFTranslator",
]
