"""Reference evaluator for XNF semantics.

Evaluates an XNF query the way the semantics are *defined* (Sect. 2),
with no rewriting or sharing: every component table is fully derived,
every relationship's connections are found by enumerating partner
combinations against the relationship predicate, and reachability is a
breadth-first closure from the root components.

This is deliberately the slow, obviously-correct implementation.  The
test suite checks the optimized pipeline
(:mod:`repro.xnf.translate` + :mod:`repro.xnf.result`) against it, and
its per-combination predicate evaluation also illustrates the cost the
set-oriented translation avoids.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import XNFError
from repro.executor.expressions import ExpressionCompiler, Layout
from repro.optimizer.optimizer import Planner, PlannerOptions
from repro.qgm.model import (Box, OutputStream, QGMGraph, TopBox, XNFBox,
                             XNFRelationship)
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager
from repro.xnf.result import ComponentStream, ConnectionStream, COResult
from repro.xnf.schema_graph import SchemaGraph
from repro.xnf.translate import OID, XNFTranslator


class NaiveXNFEvaluator:
    """Direct implementation of the CO derivation rules."""

    def __init__(self, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None):
        self.catalog = catalog
        self.stats = stats or StatisticsManager(catalog)
        self._translator = XNFTranslator(catalog)  # identity installer

    # ------------------------------------------------------------------
    def evaluate(self, graph: QGMGraph) -> COResult:
        xnf = graph.xnf_box()
        if xnf is None:
            raise XNFError("graph has no XNF operator box")
        schema = SchemaGraph.from_xnf_box(xnf)
        for name in schema.components:
            self._translator._install_identity(xnf.components[name].box)

        component_rows: dict[str, list[tuple]] = {}
        component_oids: dict[str, list] = {}
        component_columns: dict[str, list[str]] = {}
        component_value_positions: dict[str, list[int]] = {}
        for name, component in xnf.components.items():
            columns, rows = self._run_box(component.box)
            oid_position = columns.index(OID)
            value_positions = [i for i, c in enumerate(columns)
                               if not c.startswith("$")]
            seen: set = set()
            oids: list = []
            values: list[tuple] = []
            for row in rows:
                oid = row[oid_position]
                if oid in seen:
                    continue
                seen.add(oid)
                oids.append(oid)
                values.append(row)
            component_rows[name] = values
            component_oids[name] = oids
            component_columns[name] = [columns[i] for i in value_positions]
            component_value_positions[name] = value_positions

        connections: dict[str, list[tuple]] = {}
        for name, relationship in xnf.relationships.items():
            connections[name] = self._enumerate_connections(
                relationship, xnf, component_rows
            )

        reachable = self._closure(schema, component_oids, connections, xnf)

        return self._package(xnf, schema, component_rows, component_oids,
                             component_columns, component_value_positions,
                             connections, reachable)

    # ------------------------------------------------------------------
    def _run_box(self, box: Box) -> tuple[list[str], list[tuple]]:
        top = TopBox()
        top.outputs.append(OutputStream(name="NAIVE", box=box))
        graph = QGMGraph(top=top)
        planner = Planner(self.catalog, self.stats, PlannerOptions())
        plan = planner.plan(graph)
        ctx = plan.new_context()
        _stream, node = plan.single_output()
        return list(node.columns), list(node.execute(ctx))

    def _enumerate_connections(self, relationship: XNFRelationship,
                               xnf: XNFBox,
                               component_rows: dict[str, list[tuple]]
                               ) -> list[tuple]:
        """All (parent_oid, child_oids...) combinations satisfying the
        relationship predicate — checked pair by pair, the fragmented
        style Sect. 1 warns about."""
        parent_rows = component_rows[relationship.parent]
        child_row_lists = [component_rows[c] for c in relationship.children]
        using_row_lists = []
        for quantifier in relationship.using_quantifiers:
            _columns, rows = self._run_box(quantifier.box)
            using_row_lists.append(rows)

        layout: Layout = {}
        offset = 0
        participants = [relationship.parent_quantifier,
                        *relationship.child_quantifiers,
                        *relationship.using_quantifiers]
        widths: list[int] = []
        for quantifier in participants:
            head = quantifier.box.head
            for index, column in enumerate(head):
                layout[(quantifier.qid, column.name.upper())] = \
                    offset + index
            widths.append(len(head))
            offset += len(head)

        predicate_fn = None
        if relationship.predicate is not None:
            predicate_fn = ExpressionCompiler(layout).compile(
                relationship.predicate
            )
        attribute_fns = [
            ExpressionCompiler(layout).compile(expression)
            for _name, expression in relationship.attributes
        ]

        oid_positions = []
        for quantifier in [relationship.parent_quantifier,
                           *relationship.child_quantifiers]:
            oid_positions.append(
                layout[(quantifier.qid, OID)]
            )

        found: list[tuple] = []
        seen: set = set()
        row_lists = [parent_rows, *child_row_lists, *using_row_lists]
        for combination in itertools.product(*row_lists):
            joined = tuple(itertools.chain.from_iterable(combination))
            if predicate_fn is not None and \
                    predicate_fn(joined, None) is not True:
                continue
            connection = tuple(joined[p] for p in oid_positions)
            if attribute_fns:
                connection = connection + tuple(
                    fn(joined, None) for fn in attribute_fns
                )
            if connection not in seen:
                seen.add(connection)
                found.append(connection)
        return found

    @staticmethod
    def _closure(schema: SchemaGraph, component_oids: dict[str, list],
                 connections: dict[str, list[tuple]],
                 xnf: XNFBox) -> dict[str, set]:
        reachable: dict[str, set] = {name: set() for name in
                                     component_oids}
        for name, component in xnf.components.items():
            if component.is_root or not component.reachability_required:
                reachable[name] = set(component_oids[name])
        changed = True
        while changed:
            changed = False
            for edge in schema.edges:
                parent_reachable = reachable[edge.parent]
                for connection in connections[edge.name]:
                    if connection[0] not in parent_reachable:
                        continue
                    for child, child_oid in zip(edge.children,
                                                connection[1:]):
                        if child_oid not in reachable[child]:
                            reachable[child].add(child_oid)
                            changed = True
        return reachable

    def _package(self, xnf: XNFBox, schema: SchemaGraph,
                 component_rows, component_oids, component_columns,
                 component_value_positions, connections,
                 reachable) -> COResult:
        taken_components, taken_relationships, take_columns = \
            self._translator._taken(xnf)
        result = COResult(schema=schema, components={}, relationships={})
        number = 0
        for name in xnf.components:
            number_here = number
            number += 1
            if name not in taken_components:
                continue
            all_columns = component_columns[name]
            wanted = take_columns.get(name)
            positions = component_value_positions[name]
            keep = [positions[i] for i, c in enumerate(all_columns)
                    if wanted is None or c.upper() in wanted]
            stream = ComponentStream(
                name=name, number=number_here,
                columns=[c for c in all_columns
                         if wanted is None or c.upper() in wanted],
            )
            allowed = reachable[name]
            for oid, row in zip(component_oids[name],
                                component_rows[name]):
                if oid in allowed:
                    stream.oids.append(oid)
                    stream.rows.append(tuple(row[i] for i in keep))
            result.components[name] = stream
        for name, relationship in xnf.relationships.items():
            number_here = number
            number += 1
            if name not in taken_relationships:
                continue
            parent_reachable = reachable[relationship.parent]
            kept = [c for c in connections[name]
                    if c[0] in parent_reachable]
            result.relationships[name] = ConnectionStream(
                name=name, number=number_here, role=relationship.role,
                parent=relationship.parent,
                children=relationship.children,
                connections=kept,
                attribute_names=tuple(n for n, _e in
                                      relationship.attributes),
            )
        result.shipped_tuples = result.total_tuples()
        return result
