"""XNF semantic rewrite: lowering the XNF operator to NF QGM (Sect. 4.2).

The two major steps the paper names:

1. **Removal of the XNF operator box** — the multi-output TOP takes one
   stream per TAKEn component/relationship, each fed by plain NF boxes.
2. **Consideration of XNF predicates (reachability)** — every non-root
   component is restricted to tuples reachable from a root:

   * each relationship R gets one shared **connection box** joining the
     parent's *final* (already reachability-restricted) derivation with
     the children's *raw* derivations under R's predicate;
   * a child's final derivation projects its columns out of the
     connection box(es) and deduplicates by tuple identity — with
     several incoming relationships the projections are UNIONed, which
     is how "reachable via empproperty OR projproperty" is expressed
     without disjunctive existentials;
   * connection boxes are *shared* between the child derivation and the
     relationship's output stream: this is exactly the common
     subexpression exploitation of Fig. 5b / Table 1.

Tuple identity: every component derivation gets a hidden ``$OID$`` head
column — the base-table RID when the derivation is a simple restriction
of one table, otherwise a value tuple (Sect. 5: "each tuple has a
(system generated) identifier").

Output optimization (Sect. 4.2 footnote): when a binary relationship's
parent side is provably unique on the join columns and the child has no
other incoming relationship, the child stream carries its parent's
identity in a hidden ``$POID$`` column and the separate connection
stream is elided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import XNFError
from repro.qgm.model import (BaseBox, Box, HeadColumn, OutputStream,
                             QGMGraph, QRef, Quantifier, RidRef, SelectBox,
                             SetOpBox, TopBox, XNFBox, XNFRelationship,
                             replace_qrefs)
from repro.rewrite.nf_rules import columns_unique_in, equated_columns
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.xnf.schema_graph import SchemaGraph

OID = "$OID$"
POID = "$POID$"


@dataclass
class XNFOptions:
    """Translation toggles the benchmarks ablate."""

    #: Elide connection streams captured by child tuples (Sect. 4.2 fn).
    output_optimization: bool = True
    #: Run the NF rule engine over the translated graph (box merges etc.).
    apply_nf_rewrite: bool = True


@dataclass
class ComponentPlanInfo:
    """Translation artifacts for one component."""

    name: str
    number: int
    raw_box: Box
    final_box: Box
    is_root: bool
    taken: bool
    columns: list[str] = field(default_factory=list)


@dataclass
class RelationshipPlanInfo:
    """Translation artifacts for one relationship."""

    name: str
    number: int
    role: str
    parent: str
    children: tuple[str, ...]
    connection_box: Box
    elided: bool
    taken: bool


@dataclass
class TranslatedXNF:
    """The result of XNF semantic rewrite: a multi-output NF graph."""

    graph: QGMGraph
    schema: SchemaGraph
    components: dict[str, ComponentPlanInfo]
    relationships: dict[str, RelationshipPlanInfo]
    recursive: bool = False
    #: For recursive COs: per-relationship *unrestricted* connection
    #: boxes (parent raw x child raw) driving the fixpoint.
    recursive_connection_boxes: dict[str, Box] = field(default_factory=dict)
    root_names: list[str] = field(default_factory=list)
    #: The original XNF operator box (kept for updatability analysis).
    xnf_box: Optional[XNFBox] = None


class XNFTranslator:
    """Implements XNF semantic rewrite over a built XNF QGM graph.

    ``compiler`` (a :class:`~repro.compiler.pipeline.CompilationPipeline`,
    installed by the Database facade) supplies the post-translation NF
    rewrite so XNF compilation shares the one rule catalog and fixpoint
    budget; without one, the shared :func:`rewrite_fixpoint` runs with
    defaults.
    """

    def __init__(self, catalog: Catalog,
                 options: Optional[XNFOptions] = None,
                 compiler=None):
        self.catalog = catalog
        self.options = options or XNFOptions()
        self.compiler = compiler

    def _nf_rewrite(self, graph: QGMGraph) -> None:
        """The shared NF cleanup pass over a translated graph."""
        from repro.compiler.pipeline import rewrite_fixpoint
        if self.compiler is not None:
            self.compiler.rewrite_graph(graph)
        else:
            rewrite_fixpoint(graph, self.catalog)

    # ------------------------------------------------------------------
    def translate(self, graph: QGMGraph) -> TranslatedXNF:
        xnf = graph.xnf_box()
        if xnf is None:
            raise XNFError("graph has no XNF operator box")
        schema = SchemaGraph.from_xnf_box(xnf)
        unreachable = schema.unreachable_components()
        if unreachable:
            raise XNFError(
                f"components not reachable from any root: "
                f"{sorted(unreachable)}"
            )
        for name in schema.components:
            self._install_identity(xnf.components[name].box)
        order = schema.topological_order()
        if order is None:
            return self._translate_recursive(xnf, schema)
        return self._translate_dag(xnf, schema, order)

    # ------------------------------------------------------------------
    # Identity columns
    # ------------------------------------------------------------------
    def _install_identity(self, box: Box) -> None:
        if box.has_head_column(OID):
            return
        if isinstance(box, SelectBox):
            foreach = box.foreach_quantifiers()
            simple = (len(foreach) == 1
                      and isinstance(foreach[0].box, BaseBox)
                      and not box.distinct)
            if simple:
                box.head.append(HeadColumn(OID, RidRef(foreach[0])))
                return
            values = ast.FunctionCall(
                "$IDTUPLE$",
                tuple(c.expression for c in box.head
                      if c.expression is not None),
            )
            box.head.append(HeadColumn(OID, values))
            return
        raise XNFError(
            f"component derivation {box.label!r} must be wrapped in a "
            f"select box before identity installation"
        )

    # ------------------------------------------------------------------
    # DAG translation (the paper's main path)
    # ------------------------------------------------------------------
    def _translate_dag(self, xnf: XNFBox, schema: SchemaGraph,
                       order: list[str]) -> TranslatedXNF:
        taken_components, taken_relationships, take_columns = \
            self._taken(xnf)
        finals: dict[str, Box] = {}
        connections: dict[str, SelectBox] = {}
        elided: dict[str, bool] = {}
        child_single_rel: dict[str, str] = {}

        for name in order:
            component = xnf.components[name]
            incoming = schema.incoming(name)
            if component.is_root or not component.reachability_required \
                    or not incoming:
                finals[name] = component.box
                continue
            branch_boxes: list[SelectBox] = []
            for edge in incoming:
                relationship = xnf.relationships[edge.name]
                connection = connections.get(edge.name)
                if connection is None:
                    connection = self._build_connection_box(
                        relationship, xnf, finals
                    )
                    connections[edge.name] = connection
                branch_boxes.append(
                    self._child_projection(connection, relationship,
                                           name, xnf)
                )
            if len(branch_boxes) == 1:
                branch = branch_boxes[0]
                branch.distinct = True
                finals[name] = branch
                if len(incoming) == 1:
                    child_single_rel[name] = incoming[0].name
            else:
                union = SetOpBox("UNION", all_rows=False,
                                 label=f"{name.lower()}_reach")
                for branch in branch_boxes:
                    union.inputs.append(Quantifier(branch, Quantifier.F))
                union.head = [HeadColumn(c.name)
                              for c in branch_boxes[0].head]
                finals[name] = union

        # Connection boxes for relationships whose children needed no
        # reachability (e.g. relationships between roots) still must
        # exist if the relationship is taken.
        for rel_name, relationship in xnf.relationships.items():
            if rel_name not in connections and rel_name \
                    in taken_relationships:
                connections[rel_name] = self._build_connection_box(
                    relationship, xnf, finals
                )

        # Output optimization: embed parent identity into child streams.
        for rel_name, relationship in xnf.relationships.items():
            elided[rel_name] = False
            if not self.options.output_optimization:
                continue
            if len(relationship.children) != 1:
                continue
            if relationship.attributes:
                continue  # attribute values must ship with connections
            child = relationship.children[0]
            if child_single_rel.get(child) != rel_name:
                continue
            if child not in taken_components:
                continue
            if not self._parent_side_unique(relationship, finals):
                continue
            child_final = finals[child]
            if not isinstance(child_final, SelectBox):
                continue
            self._embed_parent_identity(child_final, connections[rel_name])
            elided[rel_name] = True

        return self._assemble(xnf, schema, finals, connections, elided,
                              taken_components, taken_relationships,
                              take_columns)

    # ------------------------------------------------------------------
    def _build_connection_box(self, relationship: XNFRelationship,
                              xnf: XNFBox,
                              finals: dict[str, Box]) -> SelectBox:
        """One shared derivation of a relationship's connections.

        Joins the parent's final box with every child's raw box (and the
        USING tables) under the relationship predicate; its head carries
        the partner identities plus all child columns, so both the child
        reachability derivation and the relationship output stream can
        project from it (common subexpression, Fig. 5b).
        """
        box = SelectBox(label=f"conn_{relationship.name.lower()}")
        parent_box = finals.get(relationship.parent,
                                xnf.components[relationship.parent].box)
        parent_q = box.add_quantifier(
            Quantifier(parent_box, Quantifier.F,
                       name=f"p_{relationship.parent.lower()}")
        )
        child_qs: list[Quantifier] = []
        for child in relationship.children:
            raw = xnf.components[child].box
            child_qs.append(box.add_quantifier(
                Quantifier(raw, Quantifier.F, name=f"c_{child.lower()}")
            ))
        using_qs: list[Quantifier] = []
        for old in relationship.using_quantifiers:
            using_qs.append(box.add_quantifier(
                Quantifier(old.box, Quantifier.F, name=old.name)
            ))

        remap: dict[int, Quantifier] = {
            relationship.parent_quantifier.qid: parent_q
        }
        for old, new in zip(relationship.child_quantifiers, child_qs):
            remap[old.qid] = new
        for old, new in zip(relationship.using_quantifiers, using_qs):
            remap[old.qid] = new

        def mapping(leaf):
            if isinstance(leaf, QRef):
                target = remap.get(leaf.quantifier.qid)
                if target is not None:
                    return QRef(target, leaf.column)
            elif isinstance(leaf, RidRef):
                target = remap.get(leaf.quantifier.qid)
                if target is not None:
                    return RidRef(target)
            return leaf

        if relationship.predicate is not None:
            predicate = replace_qrefs(relationship.predicate, mapping)
            box.predicates.extend(
                p for p in ast.conjuncts(predicate)
                if p != ast.Literal(True)
            )

        head = [HeadColumn(POID, QRef(parent_q, OID))]
        for index, (child, quantifier) in enumerate(
                zip(relationship.children, child_qs)):
            for column in quantifier.box.head:
                head.append(HeadColumn(f"${index}${column.name}",
                                       QRef(quantifier, column.name)))
        for name, expression in relationship.attributes:
            head.append(HeadColumn(f"$A${name}",
                                   replace_qrefs(expression, mapping)))
        box.head = head
        return box

    def _child_projection(self, connection: SelectBox,
                          relationship: XNFRelationship, child: str,
                          xnf: XNFBox) -> SelectBox:
        """Project one child's columns back out of a connection box."""
        index = relationship.children.index(child)
        raw = xnf.components[child].box
        box = SelectBox(label=f"{child.lower()}_via_"
                              f"{relationship.name.lower()}")
        quantifier = box.add_quantifier(
            Quantifier(connection, Quantifier.F, name="conn")
        )
        box.head = [
            HeadColumn(column.name,
                       QRef(quantifier, f"${index}${column.name}"))
            for column in raw.head
        ]
        return box

    def _parent_side_unique(self, relationship: XNFRelationship,
                            finals: dict[str, Box]) -> bool:
        """Can a child row match at most one parent row?  Checked on the
        relationship predicate's equated parent columns (same uniqueness
        inference the E-to-F rule uses)."""
        if relationship.predicate is None:
            return False
        probe = SelectBox("probe")
        probe.predicates = list(ast.conjuncts(relationship.predicate))
        equated = equated_columns(probe, relationship.parent_quantifier)
        if not equated:
            return False
        parent_box = finals.get(relationship.parent,
                                relationship.parent_quantifier.box)
        return columns_unique_in(parent_box, equated)

    def _embed_parent_identity(self, child_final: SelectBox,
                               connection: SelectBox) -> None:
        quantifier = child_final.body_quantifiers[0]
        if quantifier.box is not connection:  # pragma: no cover
            raise XNFError("output optimization: unexpected child shape")
        child_final.head.append(
            HeadColumn(POID, QRef(quantifier, POID))
        )

    # ------------------------------------------------------------------
    def _taken(self, xnf: XNFBox):
        take_columns: dict[str, tuple[str, ...]] = {}
        if xnf.take_all:
            return (set(xnf.components), set(xnf.relationships),
                    take_columns)
        components: set[str] = set()
        relationships: set[str] = set()
        for item in xnf.take_items:
            key = item.name.upper()
            if key in xnf.components:
                components.add(key)
                if item.columns is not None:
                    take_columns[key] = tuple(c.upper()
                                              for c in item.columns)
            else:
                relationships.add(key)
        return components, relationships, take_columns

    def _assemble(self, xnf: XNFBox, schema: SchemaGraph,
                  finals: dict[str, Box],
                  connections: dict[str, SelectBox],
                  elided: dict[str, bool],
                  taken_components: set[str],
                  taken_relationships: set[str],
                  take_columns: dict[str, tuple[str, ...]]
                  ) -> TranslatedXNF:
        top = TopBox()
        components: dict[str, ComponentPlanInfo] = {}
        relationships: dict[str, RelationshipPlanInfo] = {}
        number = 0

        for name in xnf.components:
            final = finals[name]
            taken = name in taken_components
            info = ComponentPlanInfo(
                name=name, number=number, raw_box=xnf.components[name].box,
                final_box=final, is_root=xnf.components[name].is_root,
                taken=taken,
            )
            components[name] = info
            number += 1
            if not taken:
                continue
            stream_box = self._component_stream_box(
                final, take_columns.get(name)
            )
            info.columns = [c.name for c in stream_box.head
                            if not c.name.startswith("$")]
            stream = OutputStream(
                name=name, box=stream_box, stream_kind="component",
                component_number=info.number,
                identity_position=stream_box.head_position(OID),
            )
            embedded = self._embedded_of(name, xnf, elided)
            if embedded is not None:
                rel_name, parent_name = embedded
                stream.embedded_parent = (
                    rel_name, parent_name,
                    stream_box.head_position(POID),
                )
            top.outputs.append(stream)

        for name, relationship in xnf.relationships.items():
            connection = connections.get(name)
            taken = name in taken_relationships and not elided.get(name,
                                                                   False)
            info = RelationshipPlanInfo(
                name=name, number=number, role=relationship.role,
                parent=relationship.parent,
                children=relationship.children,
                connection_box=connection, elided=elided.get(name, False),
                taken=taken,
            )
            relationships[name] = info
            number += 1
            if not taken or connection is None:
                continue
            stream_box = self._relationship_stream_box(relationship,
                                                       connection)
            identity_width = 1 + len(relationship.children)
            identity_columns = tuple(
                c.name for c in stream_box.head[:identity_width])
            top.outputs.append(OutputStream(
                name=name, box=stream_box, stream_kind="relationship",
                component_number=info.number,
                parent=relationship.parent,
                children=relationship.children,
                role=relationship.role,
                identity_columns=identity_columns,
                attribute_names=tuple(n for n, _e in
                                      relationship.attributes),
            ))

        graph = QGMGraph(top=top, statement_kind="xnf")
        if self.options.apply_nf_rewrite:
            self._nf_rewrite(graph)
        return TranslatedXNF(
            graph=graph, schema=schema, components=components,
            relationships=relationships,
            root_names=schema.roots, xnf_box=xnf,
        )

    @staticmethod
    def _embedded_of(component: str, xnf: XNFBox,
                     elided: dict[str, bool]):
        for rel_name, relationship in xnf.relationships.items():
            if elided.get(rel_name) and relationship.children == \
                    (component,):
                return rel_name, relationship.parent
        return None

    def _component_stream_box(self, final: Box,
                              columns: Optional[tuple[str, ...]]
                              ) -> SelectBox:
        """Wrap a component's final box for output (TAKE projection).

        Always wraps: streams need a stable box to prune/project without
        disturbing the shared final derivation.
        """
        box = SelectBox(label=f"out_{final.label}")
        quantifier = box.add_quantifier(
            Quantifier(final, Quantifier.F, name=final.label)
        )
        for column in final.head:
            if column.name.startswith("$"):
                continue
            if columns is not None and column.name.upper() not in columns:
                continue
            box.head.append(HeadColumn(column.name,
                                       QRef(quantifier, column.name)))
        if not box.head:
            raise XNFError(
                f"TAKE projection of {final.label!r} keeps no columns"
            )
        box.head.append(HeadColumn(OID, QRef(quantifier, OID)))
        if final.has_head_column(POID):
            box.head.append(HeadColumn(POID, QRef(quantifier, POID)))
        return box

    def _relationship_stream_box(self, relationship: XNFRelationship,
                                 connection: SelectBox) -> SelectBox:
        box = SelectBox(label=f"out_{relationship.name.lower()}")
        quantifier = box.add_quantifier(
            Quantifier(connection, Quantifier.F, name="conn")
        )
        box.head = [HeadColumn(POID, QRef(quantifier, POID))]
        for index in range(len(relationship.children)):
            box.head.append(
                HeadColumn(f"$COID{index}$",
                           QRef(quantifier, f"${index}${OID}"))
            )
        for name, _expression in relationship.attributes:
            box.head.append(
                HeadColumn(name, QRef(quantifier, f"$A${name}"))
            )
        box.distinct = True
        return box

    # ------------------------------------------------------------------
    # Recursive COs (cycle in the schema graph)
    # ------------------------------------------------------------------
    def _translate_recursive(self, xnf: XNFBox,
                             schema: SchemaGraph) -> TranslatedXNF:
        """Cyclic schema graphs evaluate by fixpoint (Sect. 2): derive
        every component raw table and every relationship's unrestricted
        connection table once, then iterate reachability in the
        executor (:mod:`repro.xnf.recursive`)."""
        taken_components, taken_relationships, take_columns = \
            self._taken(xnf)
        top = TopBox()
        components: dict[str, ComponentPlanInfo] = {}
        relationships: dict[str, RelationshipPlanInfo] = {}
        connection_boxes: dict[str, Box] = {}
        number = 0
        raw_finals = {name: xnf.components[name].box
                      for name in xnf.components}
        for name in xnf.components:
            raw = xnf.components[name].box
            info = ComponentPlanInfo(
                name=name, number=number, raw_box=raw, final_box=raw,
                is_root=xnf.components[name].is_root,
                taken=name in taken_components,
            )
            components[name] = info
            number += 1
            stream_box = self._component_stream_box(
                raw, take_columns.get(name))
            info.columns = [c.name for c in stream_box.head
                            if not c.name.startswith("$")]
            top.outputs.append(OutputStream(
                name=name, box=stream_box, stream_kind="component",
                component_number=info.number,
                identity_position=stream_box.head_position(OID),
            ))
        for name, relationship in xnf.relationships.items():
            connection = self._build_connection_box(relationship, xnf,
                                                    raw_finals)
            connection_boxes[name] = connection
            info = RelationshipPlanInfo(
                name=name, number=number, role=relationship.role,
                parent=relationship.parent,
                children=relationship.children,
                connection_box=connection, elided=False,
                taken=name in taken_relationships,
            )
            relationships[name] = info
            number += 1
            stream_box = self._relationship_stream_box(relationship,
                                                       connection)
            identity_width = 1 + len(relationship.children)
            top.outputs.append(OutputStream(
                name=name, box=stream_box, stream_kind="relationship",
                component_number=info.number,
                parent=relationship.parent,
                children=relationship.children,
                role=relationship.role,
                identity_columns=tuple(
                    c.name for c in stream_box.head[:identity_width]),
                attribute_names=tuple(n for n, _e in
                                      relationship.attributes),
            ))
        graph = QGMGraph(top=top, statement_kind="xnf")
        if self.options.apply_nf_rewrite:
            self._nf_rewrite(graph)
        return TranslatedXNF(
            graph=graph, schema=schema, components=components,
            relationships=relationships, recursive=True,
            recursive_connection_boxes=connection_boxes,
            root_names=schema.roots, xnf_box=xnf,
        )
