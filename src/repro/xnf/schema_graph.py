"""CO schema graphs: the structural view of an XNF query (Fig. 1).

Nodes are component tables, edges are relationships (parent -> children,
possibly n-ary).  The graph answers the structural questions the
translator and cache need: which components are roots, is the CO
recursive (a cycle in the schema graph, Sect. 2), what is a valid
derivation order, and what does a path expression denote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XNFError
from repro.qgm.model import XNFBox


@dataclass(frozen=True)
class SchemaEdge:
    """One relationship edge: parent component -> child components."""

    name: str
    role: str
    parent: str
    children: tuple[str, ...]


@dataclass
class SchemaGraph:
    """The component/relationship structure of one CO view."""

    components: list[str] = field(default_factory=list)
    edges: list[SchemaEdge] = field(default_factory=list)
    roots: list[str] = field(default_factory=list)

    @classmethod
    def from_xnf_box(cls, box: XNFBox) -> "SchemaGraph":
        graph = cls()
        graph.components = list(box.components)
        graph.edges = [
            SchemaEdge(r.name, r.role, r.parent, r.children)
            for r in box.relationships.values()
        ]
        graph.roots = box.root_components()
        graph.validate()
        return graph

    # ------------------------------------------------------------------
    def validate(self) -> None:
        known = set(self.components)
        for edge in self.edges:
            if edge.parent not in known:
                raise XNFError(f"edge {edge.name!r}: unknown parent "
                               f"{edge.parent!r}")
            for child in edge.children:
                if child not in known:
                    raise XNFError(f"edge {edge.name!r}: unknown child "
                                   f"{child!r}")
        for root in self.roots:
            if root not in known:
                raise XNFError(f"unknown root component {root!r}")

    def incoming(self, component: str) -> list[SchemaEdge]:
        return [e for e in self.edges if component in e.children]

    def outgoing(self, component: str) -> list[SchemaEdge]:
        return [e for e in self.edges if e.parent == component]

    def edge(self, name: str) -> SchemaEdge:
        for candidate in self.edges:
            if candidate.name == name.upper():
                return candidate
        raise XNFError(f"no relationship named {name!r}")

    # ------------------------------------------------------------------
    def is_recursive(self) -> bool:
        """A cycle in the schema graph makes the CO recursive (Sect. 2)."""
        return self.topological_order() is None

    def topological_order(self) -> list[str] | None:
        """Components ordered parents-before-children; None if cyclic."""
        indegree: dict[str, int] = {c: 0 for c in self.components}
        for edge in self.edges:
            for child in edge.children:
                if child != edge.parent:
                    indegree[child] += 1
        # Kahn's algorithm, keeping the user's definition order stable.
        order: list[str] = []
        ready = [c for c in self.components if indegree[c] == 0]
        while ready:
            component = ready.pop(0)
            order.append(component)
            for edge in self.outgoing(component):
                for child in edge.children:
                    if child == edge.parent:
                        continue
                    indegree[child] -= 1
                    if indegree[child] == 0 and child not in order \
                            and child not in ready:
                        ready.append(child)
        if len(order) != len(self.components):
            return None
        if any(edge.parent in edge.children for edge in self.edges):
            return None  # self-loop: recursive
        return order

    def reachable_components(self) -> set[str]:
        """Components reachable from the roots along edges."""
        reached = set(self.roots)
        frontier = list(self.roots)
        while frontier:
            component = frontier.pop()
            for edge in self.outgoing(component):
                for child in edge.children:
                    if child not in reached:
                        reached.add(child)
                        frontier.append(child)
        return reached

    def unreachable_components(self) -> set[str]:
        return set(self.components) - self.reachable_components()

    # ------------------------------------------------------------------
    # Path expressions (Sect. 2: "A path expression consists of a
    # sequence of component tables (and relationships)").
    # ------------------------------------------------------------------
    def resolve_path(self, path: str) -> list[SchemaEdge]:
        """Resolve 'comp.comp2.comp3' or 'comp.rel.comp2' into edges.

        Consecutive components may omit the relationship name when it is
        unambiguous; the explicit form names the relationship between
        them.  Returns the edge sequence from the path's head to target.
        """
        parts = [p.upper() for p in path.replace("->", ".").split(".")
                 if p.strip()]
        if not parts:
            raise XNFError("empty path expression")
        if parts[0] not in self.components:
            raise XNFError(f"path must start at a component, "
                           f"got {parts[0]!r}")
        edges: list[SchemaEdge] = []
        current = parts[0]
        index = 1
        while index < len(parts):
            token = parts[index]
            edge = self._edge_by_name_from(current, token)
            if edge is not None:
                # Explicit relationship name; next token is the child.
                index += 1
                if index >= len(parts):
                    if len(edge.children) != 1:
                        raise XNFError(
                            f"relationship {edge.name!r} is n-ary; name "
                            f"the target component explicitly"
                        )
                    current = edge.children[0]
                else:
                    target = parts[index]
                    if target not in edge.children:
                        raise XNFError(
                            f"{target!r} is not a child of relationship "
                            f"{edge.name!r}"
                        )
                    current = target
                    index += 1
                edges.append(edge)
                continue
            # Implicit: token is a child component; find a unique edge.
            candidates = [e for e in self.outgoing(current)
                          if token in e.children]
            if not candidates:
                raise XNFError(
                    f"no relationship from {current!r} to {token!r}"
                )
            if len(candidates) > 1:
                names = [e.name for e in candidates]
                raise XNFError(
                    f"ambiguous step {current!r} -> {token!r}: "
                    f"relationships {names}; name one explicitly"
                )
            edges.append(candidates[0])
            current = token
            index += 1
        return edges

    def _edge_by_name_from(self, parent: str,
                           name: str) -> SchemaEdge | None:
        for edge in self.outgoing(parent):
            if edge.name == name or edge.role == name:
                return edge
        return None

    def path_target(self, path: str) -> str:
        """The component a path expression denotes."""
        parts = [p.upper() for p in path.replace("->", ".").split(".")
                 if p.strip()]
        edges = self.resolve_path(path)
        if not edges:
            return parts[0]
        last = edges[-1]
        final_token = parts[-1]
        if final_token in last.children:
            return final_token
        return last.children[0]
