"""Execution of translated XNF queries: the heterogeneous result.

Sect. 5: "XNF COs are handled by the database server as a heterogeneous
collection of tuples.  Each tuple either represents a row of a component
table or a connection ...  Each tuple has a (system generated) identifier
and also a component number".

:class:`XNFExecutable` compiles a :class:`~repro.xnf.translate.TranslatedXNF`
into physical plans (one per output stream, sharing spooled common
subexpressions through a single execution context) and materializes a
:class:`COResult`.  The tagged-tuple iterator :meth:`COResult.tuples`
reproduces the wire format the XNF cache consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import XNFError
from repro.optimizer.optimizer import (ExecutablePlan, Planner,
                                       PlannerOptions)
from repro.optimizer.plan import ExecutionContext
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager
from repro.xnf.schema_graph import SchemaGraph
from repro.xnf.translate import TranslatedXNF


@dataclass
class ComponentStream:
    """All tuples of one component table, with their identities."""

    name: str
    number: int
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    oids: list = field(default_factory=list)
    #: When the output optimization embedded the parent identity into
    #: this stream, the per-row parent oids (parallel to ``rows``).
    embedded_parent_oids: Optional[list] = None

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class ConnectionStream:
    """All connections of one relationship: (parent_oid, child_oids...)."""

    name: str
    number: int
    role: str
    parent: str
    children: tuple[str, ...]
    connections: list[tuple] = field(default_factory=list)
    #: Relationship attribute names; each connection tuple carries the
    #: attribute values after the partner identities (Sect. 2:
    #: connections "might have some relationship attributes").
    attribute_names: tuple[str, ...] = ()
    #: True when rebuilt from embedded parent identities (the output
    #: optimization elided the stream on the wire).
    reconstructed: bool = False

    def __len__(self) -> int:
        return len(self.connections)


@dataclass
class TaggedTuple:
    """One element of the heterogeneous result stream."""

    component_number: int
    stream_name: str
    kind: str  # 'component' | 'connection'
    identifier: object
    values: tuple


@dataclass
class COResult:
    """A fully materialized composite object (set of COs, strictly)."""

    schema: SchemaGraph
    components: dict[str, ComponentStream]
    relationships: dict[str, ConnectionStream]
    counters: dict[str, int] = field(default_factory=dict)
    #: Number of tuples the server actually shipped (before elided
    #: connection streams were reconstructed client-side).
    shipped_tuples: int = 0

    def component(self, name: str) -> ComponentStream:
        try:
            return self.components[name.upper()]
        except KeyError:
            raise XNFError(f"no component stream {name!r}") from None

    def relationship(self, name: str) -> ConnectionStream:
        try:
            return self.relationships[name.upper()]
        except KeyError:
            raise XNFError(f"no relationship stream {name!r}") from None

    def total_tuples(self) -> int:
        return (sum(len(s) for s in self.components.values())
                + sum(len(s) for s in self.relationships.values()))

    def tuples(self) -> Iterator[TaggedTuple]:
        """The heterogeneous stream, component-number tagged."""
        for stream in self.components.values():
            for oid, row in zip(stream.oids, stream.rows):
                yield TaggedTuple(stream.number, stream.name, "component",
                                  oid, row)
        for stream in self.relationships.values():
            for connection in stream.connections:
                yield TaggedTuple(stream.number, stream.name, "connection",
                                  connection, connection)

    def wire_tuples(self) -> Iterator[TaggedTuple]:
        """What the server actually shipped: component rows carry an
        embedded parent identity when the output optimization applied,
        and reconstructed relationship streams never cross the wire
        (Sect. 4.2 footnote)."""
        for stream in self.components.values():
            embedded = stream.embedded_parent_oids
            for index, (oid, row) in enumerate(zip(stream.oids,
                                                   stream.rows)):
                if embedded is not None:
                    row = row + (embedded[index],)
                yield TaggedTuple(stream.number, stream.name,
                                  "component", oid, row)
        for stream in self.relationships.values():
            if stream.reconstructed:
                continue
            for connection in stream.connections:
                yield TaggedTuple(stream.number, stream.name,
                                  "connection", connection, connection)


class XNFExecutable:
    """A compiled XNF query: plans per output stream plus metadata."""

    def __init__(self, translated: TranslatedXNF, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None,
                 planner_options: Optional[PlannerOptions] = None):
        self.translated = translated
        self.catalog = catalog
        self.stats = stats or StatisticsManager(catalog)
        self.planner_options = planner_options or PlannerOptions()
        planner = Planner(catalog, self.stats, self.planner_options)
        self.plan: ExecutablePlan = planner.plan(translated.graph)

    # ------------------------------------------------------------------
    def run(self, ctx: Optional[ExecutionContext] = None) -> COResult:
        if self.translated.recursive:
            from repro.xnf.recursive import evaluate_recursive
            return evaluate_recursive(self, ctx)
        return self._run_dag(ctx)

    def _run_dag(self, ctx: Optional[ExecutionContext]) -> COResult:
        if ctx is None:
            ctx = self.plan.new_context()
        result = COResult(schema=self.translated.schema, components={},
                          relationships={})
        shipped = 0

        embedded_connections: dict[str, list[tuple]] = {}
        for stream, node in self.plan.outputs:
            rows = self.plan.run_node(node, ctx)
            shipped += len(rows)
            if stream.stream_kind == "component":
                component = self._decode_component(stream, node, rows,
                                                   embedded_connections)
                result.components[stream.name.upper()] = component
            elif stream.stream_kind == "relationship":
                result.relationships[stream.name.upper()] = \
                    ConnectionStream(
                        name=stream.name.upper(), number=stream.component_number,
                        role=stream.role or "", parent=stream.parent or "",
                        children=stream.children,
                        connections=[tuple(r) for r in rows],
                        attribute_names=stream.attribute_names,
                    )
            else:  # pragma: no cover - translate only emits these kinds
                raise XNFError(
                    f"unexpected stream kind {stream.stream_kind!r}"
                )

        # Reconstruct elided relationship streams from embedded parents.
        for name, info in self.translated.relationships.items():
            if not info.elided:
                continue
            connections = embedded_connections.get(name.upper(), [])
            result.relationships[name.upper()] = ConnectionStream(
                name=name.upper(), number=info.number, role=info.role,
                parent=info.parent, children=info.children,
                connections=connections, reconstructed=True,
            )

        result.shipped_tuples = shipped
        result.counters = dict(ctx.counters)
        return result

    def _decode_component(self, stream, node, rows,
                          embedded_connections) -> ComponentStream:
        identity_position = stream.identity_position
        if identity_position is None:
            raise XNFError(
                f"component stream {stream.name!r} lacks an identity column"
            )
        system_positions = {identity_position}
        embedded = stream.embedded_parent
        if embedded is not None:
            _rel, _parent, parent_position = embedded
            system_positions.add(parent_position)
        value_positions = [i for i in range(len(node.columns))
                           if i not in system_positions]
        columns = [node.columns[i] for i in value_positions]
        component = ComponentStream(
            name=stream.name.upper(), number=stream.component_number,
            columns=columns,
        )
        seen: set = set()
        pending: list[tuple] = []
        if embedded is not None:
            component.embedded_parent_oids = []
        for row in rows:
            oid = row[identity_position]
            if embedded is not None:
                parent_oid = row[embedded[2]]
                pending.append((parent_oid, oid))
            if oid in seen:
                continue  # object sharing: one tuple per identity
            seen.add(oid)
            component.oids.append(oid)
            component.rows.append(tuple(row[i] for i in value_positions))
            if embedded is not None:
                component.embedded_parent_oids.append(row[embedded[2]])
        if embedded is not None:
            rel_name = embedded[0].upper()
            bucket = embedded_connections.setdefault(rel_name, [])
            dedup: set = set()
            for connection in pending:
                if connection not in dedup:
                    dedup.add(connection)
                    bucket.append(connection)
        return component

    # ------------------------------------------------------------------
    def explain(self) -> str:
        return self.plan.explain()
