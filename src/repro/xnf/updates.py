"""View updatability analysis and cache write-back (Sect. 2).

"Update of the nodes is essentially identical to update of views in the
relational DBMSs ...  Relationships often are defined based on simple
foreign keys or connect tables ...  Connect and disconnect operations on
such relationships translate to updating the foreign keys or
inserting/deleting the associated tuples in the connect tables."

Analysis (over the *original* XNF operator box):

* a **component** is updatable when its derivation is a plain
  restriction/projection of one base table (no joins, aggregation,
  DISTINCT or set operations) — then its tuple identity is the base
  RID and every column maps to a base column;
* a **relationship** is connectable when its predicate is a conjunction
  of simple column equalities and it is either *foreign-key shaped*
  (binary, no USING: child columns equated to parent columns) or
  *connect-table shaped* (binary, one USING base table linking parent
  and child key columns).

Richer views are readable but rejected for update with a reason string
("such richer views ... restrict updatability").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NotUpdatableError, UpdateError, XNFError
from repro.executor.expressions import ExpressionCompiler
from repro.qgm.model import (BaseBox, QRef, Quantifier, SelectBox,
                             XNFBox, XNFRelationship, quantifiers_in)
from repro.sql import ast
from repro.storage.catalog import Catalog, DeltaRecorder
from repro.storage.transactions import TransactionManager
from repro.cache.workspace import LogEntry, Workspace


@dataclass
class ComponentUpdatability:
    """Write path of one component, or the reason there is none."""

    updatable: bool
    reason: str = ""
    table: Optional[str] = None
    #: view column name (upper) -> base column name (upper)
    column_map: dict[str, str] = field(default_factory=dict)
    #: compiled local predicates for WITH CHECK OPTION semantics;
    #: evaluated against the full base row.
    check_predicates: list = field(default_factory=list)
    check_texts: list[str] = field(default_factory=list)


@dataclass
class RelationshipUpdatability:
    """Connect/disconnect path of one relationship."""

    kind: str  # 'foreign_key' | 'connect_table' | 'readonly'
    reason: str = ""
    #: foreign_key: (child_base_column, parent_view_column) pairs
    fk_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: connect_table: mapping table plus its column bindings
    table: Optional[str] = None
    parent_pairs: list[tuple[str, str]] = field(default_factory=list)
    child_pairs: list[tuple[str, str]] = field(default_factory=list)


def analyze_component(box) -> ComponentUpdatability:
    """Decide whether a component derivation admits updates."""
    if not isinstance(box, SelectBox):
        return ComponentUpdatability(
            False, reason=f"derivation is a {box.kind} operation"
        )
    if box.distinct:
        return ComponentUpdatability(False, reason="DISTINCT derivation")
    foreach = box.foreach_quantifiers()
    if len(foreach) != 1:
        return ComponentUpdatability(
            False, reason="derivation joins multiple tables"
        )
    if any(q.qtype in (Quantifier.E, Quantifier.A, Quantifier.S)
           for q in box.body_quantifiers):
        return ComponentUpdatability(
            False, reason="derivation contains subqueries"
        )
    quantifier = foreach[0]
    if not isinstance(quantifier.box, BaseBox):
        return ComponentUpdatability(
            False, reason="derivation is not over a base table"
        )
    table = quantifier.box.table
    column_map: dict[str, str] = {}
    for column in box.head:
        if column.name.startswith("$"):
            continue
        if isinstance(column.expression, QRef) \
                and column.expression.quantifier is quantifier:
            column_map[column.name.upper()] = \
                column.expression.column.upper()
        else:
            return ComponentUpdatability(
                False,
                reason=f"column {column.name!r} is computed, not stored",
            )
    layout = {(quantifier.qid, c.name.upper()): i
              for i, c in enumerate(table.columns)}
    compiler = ExpressionCompiler(layout)
    checks = []
    texts = []
    for predicate in box.predicates:
        if quantifiers_in(predicate) <= {quantifier}:
            checks.append(compiler.compile(predicate))
            texts.append(str(predicate))
    return ComponentUpdatability(
        True, table=table.name, column_map=column_map,
        check_predicates=checks, check_texts=texts,
    )


def analyze_relationship(relationship: XNFRelationship,
                         components: dict[str, ComponentUpdatability]
                         ) -> RelationshipUpdatability:
    """Decide the connect/disconnect strategy for a relationship."""
    if len(relationship.children) != 1:
        return RelationshipUpdatability(
            "readonly", reason="n-ary relationships are read-only"
        )
    if relationship.predicate is None:
        return RelationshipUpdatability(
            "readonly", reason="relationship has no predicate"
        )
    child = relationship.children[0]
    conjuncts = ast.conjuncts(relationship.predicate)
    pairs: list[tuple[QRef, QRef]] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=" \
                or not isinstance(conjunct.left, QRef) \
                or not isinstance(conjunct.right, QRef):
            return RelationshipUpdatability(
                "readonly",
                reason=f"predicate {conjunct} is not a simple equality",
            )
        pairs.append((conjunct.left, conjunct.right))

    parent_q = relationship.parent_quantifier
    child_q = relationship.child_quantifiers[0]

    if not relationship.using_quantifiers:
        child_info = components.get(child)
        if child_info is None or not child_info.updatable:
            return RelationshipUpdatability(
                "readonly",
                reason=f"child component {child} is not updatable",
            )
        fk_pairs: list[tuple[str, str]] = []
        for left, right in pairs:
            sides = {left.quantifier.qid: left, right.quantifier.qid: right}
            if set(sides) != {parent_q.qid, child_q.qid}:
                return RelationshipUpdatability(
                    "readonly", reason="predicate spans other tables"
                )
            child_column = child_info.column_map.get(
                sides[child_q.qid].column.upper())
            if child_column is None:
                return RelationshipUpdatability(
                    "readonly",
                    reason="child join column is not a stored column",
                )
            fk_pairs.append((child_column,
                             sides[parent_q.qid].column.upper()))
        return RelationshipUpdatability("foreign_key", fk_pairs=fk_pairs)

    if len(relationship.using_quantifiers) == 1:
        using_q = relationship.using_quantifiers[0]
        if not isinstance(using_q.box, BaseBox):
            return RelationshipUpdatability(
                "readonly", reason="USING table is not a base table"
            )
        parent_pairs: list[tuple[str, str]] = []
        child_pairs: list[tuple[str, str]] = []
        for left, right in pairs:
            sides = {left.quantifier.qid: left,
                     right.quantifier.qid: right}
            if set(sides) == {parent_q.qid, using_q.qid}:
                parent_pairs.append((sides[using_q.qid].column.upper(),
                                     sides[parent_q.qid].column.upper()))
            elif set(sides) == {child_q.qid, using_q.qid}:
                child_pairs.append((sides[using_q.qid].column.upper(),
                                    sides[child_q.qid].column.upper()))
            else:
                return RelationshipUpdatability(
                    "readonly",
                    reason="predicate does not link through the "
                           "connect table",
                )
        if not parent_pairs or not child_pairs:
            return RelationshipUpdatability(
                "readonly",
                reason="connect table must link both partners",
            )
        return RelationshipUpdatability(
            "connect_table", table=using_q.box.table.name,
            parent_pairs=parent_pairs, child_pairs=child_pairs,
        )
    return RelationshipUpdatability(
        "readonly", reason="multiple USING tables"
    )


def analyze_xnf_box(xnf: XNFBox) -> tuple[dict, dict]:
    """Updatability of every component and relationship of a view."""
    components = {
        name: analyze_component(component.box)
        for name, component in xnf.components.items()
    }
    relationships = {
        name: analyze_relationship(relationship, components)
        for name, relationship in xnf.relationships.items()
    }
    return components, relationships


class CacheWriteBack:
    """Applies a workspace's update log to the base tables, atomically.

    Sect. 3: "If the CO is updatable, changes can be made locally (at
    the client site) and later on transferred back to the database
    server."
    """

    def __init__(self, catalog: Catalog,
                 transactions: TransactionManager,
                 component_info: dict[str, ComponentUpdatability],
                 relationship_info: dict[str, RelationshipUpdatability]):
        self.catalog = catalog
        self.transactions = transactions
        self.component_info = component_info
        self.relationship_info = relationship_info
        #: workspace ("new", n) oids -> storage RIDs after insert
        self._new_rids: dict = {}
        #: (table, rid) -> new rid for rows relocated by a partition-key
        #: change mid-transaction; later entries touching the old rid
        #: chase the chain to the row's current home.
        self._moved: dict = {}
        #: Consolidates this write-back's base-table mutations into the
        #: delta protocol (one TableDelta per touched table), published
        #: only after the transaction committed.
        self._recorder: Optional[DeltaRecorder] = None

    # ------------------------------------------------------------------
    def apply(self, workspace: Workspace) -> int:
        """Write every logged change back; returns #applied entries."""
        applied = self.apply_now(list(workspace.log))
        self.remap_relocated(workspace)
        workspace.clear_log()
        return applied

    def remap_relocated(self, workspace: Workspace) -> None:
        """Point cached objects at their rows' new homes.

        A partition-key change relocated the base row (new RID), but
        the workspace still addresses the object by the RID it was
        extracted under; later write batches would chase a stale RID.
        """
        if not self._moved:
            return
        tables = {component: self.catalog.table(info.table).name
                  for component, info in self.component_info.items()
                  if info.updatable and info.table}
        for table_name, old_rid in list(self._moved):
            final = self._current_rid(table_name, old_rid)
            for component, base in tables.items():
                if base != table_name:
                    continue
                obj = workspace.by_oid.pop((component, old_rid), None)
                if obj is not None:
                    obj.oid = final
                    workspace.by_oid[(component, final)] = obj

    def apply_now(self, entries: list, verify=None) -> int:
        """Apply ``entries`` atomically; returns #applied entries.

        ``verify``, when given, runs inside the same atomic scope after
        the mutations — the write-through gateway path uses it for the
        round-trip (get∘put) check so a violation rolls everything back.
        """
        self._recorder = DeltaRecorder() if self.catalog.wants_deltas \
            else None

        def run() -> int:
            applied = 0
            for entry in entries:
                self._apply_entry(entry)
                applied += 1
            if verify is not None:
                verify(self)
            return applied

        try:
            applied = self.transactions.run_atomic(run)
        finally:
            recorder, self._recorder = self._recorder, None
        if recorder is not None:
            for delta in recorder.deltas():
                self.catalog.emit_table_delta(delta)
        return applied

    def _record(self, table_name: str, rid, old, new) -> None:
        if self._recorder is not None:
            self._recorder.record(table_name, rid, old, new)

    # ------------------------------------------------------------------
    def _apply_entry(self, entry: LogEntry) -> None:
        if entry.operation == "update":
            self._apply_update(entry)
        elif entry.operation == "insert":
            self._apply_insert(entry)
        elif entry.operation == "delete":
            self._apply_delete(entry)
        elif entry.operation == "connect":
            self._apply_connect(entry, disconnect=False)
        elif entry.operation == "disconnect":
            self._apply_connect(entry, disconnect=True)
        else:  # pragma: no cover - defensive
            raise UpdateError(f"unknown log operation {entry.operation!r}")

    def _component_info(self, name: str) -> ComponentUpdatability:
        info = self.component_info.get(name)
        if info is None:
            raise XNFError(f"no updatability info for component {name!r}")
        if not info.updatable:
            raise NotUpdatableError(
                f"component {name} is read-only: {info.reason}"
            )
        return info

    def _resolve_rid(self, name: str, oid) -> int:
        if isinstance(oid, tuple) and len(oid) == 2 and oid[0] == "new":
            rid = self._new_rids.get((name, oid))
            if rid is None:
                raise UpdateError(
                    f"object {oid} of {name} was never inserted"
                )
            return rid
        if not isinstance(oid, int):
            raise NotUpdatableError(
                f"component {name} has value-based identity; its "
                f"derivation is not updatable"
            )
        return oid

    def _current_rid(self, table_name: str, rid: int) -> int:
        """Chase relocations: a partition-key update may have moved the
        row to a fresh rid earlier in this write-back."""
        while (table_name, rid) in self._moved:
            rid = self._moved[(table_name, rid)]
        return rid

    def _store_update(self, table, rid: int, row: list) -> None:
        """Write ``row`` over ``rid``, recording the delta — as a
        delete+insert pair when the row relocates (changed partition
        key), in place otherwise."""
        old = table.fetch(rid)
        new_rid, stored = table.update_row(rid, row)
        if new_rid == rid:
            self._record(table.name, rid, old, stored)
        else:
            self._moved[(table.name, rid)] = new_rid
            self._record(table.name, rid, old, None)
            self._record(table.name, new_rid, None, stored)

    def _apply_update(self, entry: LogEntry) -> None:
        info = self._component_info(entry.target)
        table = self.catalog.table(info.table)
        rid = self._current_rid(
            table.name,
            self._resolve_rid(entry.target, entry.payload["oid"]))
        row = list(table.fetch(rid))
        base_column = info.column_map.get(entry.payload["column"])
        if base_column is None:
            raise NotUpdatableError(
                f"column {entry.payload['column']} of {entry.target} "
                f"does not map to a stored column"
            )
        row[table.column_position(base_column)] = entry.payload["new"]
        self._check_view_predicates(info, entry.target, row)
        self.catalog.check_foreign_keys(table.name, tuple(row))
        self._store_update(table, rid, row)

    def _apply_insert(self, entry: LogEntry) -> None:
        info = self._component_info(entry.target)
        table = self.catalog.table(info.table)
        row = [None] * len(table.columns)
        for view_column, value in entry.payload["values"].items():
            base_column = info.column_map.get(view_column.upper())
            if base_column is None:
                raise NotUpdatableError(
                    f"column {view_column} of {entry.target} does not "
                    f"map to a stored column"
                )
            row[table.column_position(base_column)] = value
        self._check_view_predicates(info, entry.target, row)
        self.catalog.check_foreign_keys(table.name, tuple(row))
        rid = table.insert(row)
        self._record(table.name, rid, None, table.fetch(rid))
        self._new_rids[(entry.target, entry.payload["oid"])] = rid

    def _apply_delete(self, entry: LogEntry) -> None:
        info = self._component_info(entry.target)
        table = self.catalog.table(info.table)
        if entry.payload.get("is_new"):
            key = (entry.target, entry.payload["oid"])
            rid = self._new_rids.pop(key, None)
            if rid is None:
                return  # inserted and deleted inside the cache only
        else:
            rid = self._resolve_rid(entry.target, entry.payload["oid"])
        rid = self._current_rid(table.name, rid)
        self.catalog.check_no_referencing_children(table.name,
                                                   table.fetch(rid))
        self._record(table.name, rid, table.delete(rid), None)

    def _apply_connect(self, entry: LogEntry, disconnect: bool) -> None:
        info = self.relationship_info.get(entry.target)
        if info is None:
            raise XNFError(
                f"no updatability info for relationship {entry.target!r}"
            )
        if info.kind == "readonly":
            raise NotUpdatableError(
                f"relationship {entry.target} is read-only: {info.reason}"
            )
        parent = entry.payload["parent"]
        child = entry.payload["children"][0]
        if info.kind == "foreign_key":
            self._connect_foreign_key(entry.target, info, parent, child,
                                      disconnect)
        else:
            self._connect_table(info, parent, child, disconnect)

    def _connect_foreign_key(self, name: str,
                             info: RelationshipUpdatability,
                             parent, child, disconnect: bool) -> None:
        child_info = self._component_info(child.component)
        table = self.catalog.table(child_info.table)
        rid = self._current_rid(
            table.name, self._resolve_rid(child.component, child.oid))
        row = list(table.fetch(rid))
        for child_column, parent_column in info.fk_pairs:
            value = None if disconnect else parent.get(parent_column)
            row[table.column_position(child_column)] = value
        self.catalog.check_foreign_keys(table.name, tuple(row))
        self._store_update(table, rid, row)

    def _connect_table(self, info: RelationshipUpdatability,
                       parent, child, disconnect: bool) -> None:
        table = self.catalog.table(info.table)
        assignments: dict[int, object] = {}
        for map_column, parent_column in info.parent_pairs:
            assignments[table.column_position(map_column)] = \
                parent.get(parent_column)
        for map_column, child_column in info.child_pairs:
            assignments[table.column_position(map_column)] = \
                child.get(child_column)
        if disconnect:
            victim = None
            for rid, row in table.scan():
                if all(row[position] == value
                       for position, value in assignments.items()):
                    victim = rid
                    break
            if victim is None:
                raise UpdateError(
                    "no connect-table row matches the disconnected pair"
                )
            self._record(table.name, victim, table.delete(victim), None)
            return
        row = [None] * len(table.columns)
        for position, value in assignments.items():
            row[position] = value
        self.catalog.check_foreign_keys(table.name, tuple(row))
        rid = table.insert(row)
        self._record(table.name, rid, None, table.fetch(rid))

    def _check_view_predicates(self, info: ComponentUpdatability,
                               component: str, row: list) -> None:
        """WITH CHECK OPTION: the written row must stay visible."""
        for check, text in zip(info.check_predicates, info.check_texts):
            if check(tuple(row), None) is not True:
                raise UpdateError(
                    f"row violates the {component} view predicate "
                    f"({text}); write rejected"
                )
