"""Decorrelation of scalar aggregate subqueries into group-by joins.

The builder keeps correlated scalar subqueries as S quantifiers whose
inner boxes still reference the outer block; without rewriting, the
executor re-runs the subquery plan for every distinct outer binding
(nested re-execution).  :class:`ScalarAggToJoin` is the classic "magic"
decorrelation for the common shape

    SELECT ... FROM outer o
    WHERE o.x < (SELECT AGG(...) FROM inner i WHERE i.k = o.k)

which becomes a join against ``SELECT i.k, AGG(...) FROM inner i GROUP
BY i.k`` — one pass over the inner table instead of one per outer row.

Soundness conditions (all checked, each a documented no-fire case):

* the correlation predicates are plain equalities between an inner-side
  expression and an outer-side expression, and they all live in the
  aggregate's input box (no deeper correlation);
* the referenced aggregate is MIN/MAX/SUM/AVG — never COUNT, whose
  empty-group value is 0 (a joinable value) while the join form drops
  the row;
* the scalar's value is consumed only by null-rejecting comparison
  conjuncts of the outer box (never the head, ORDER BY, IS NULL,
  COALESCE, OR, ...): an empty group yields scalar NULL, the comparison
  is then UNKNOWN and the row is dropped — exactly what the join form
  does when the group row is absent.
"""

from __future__ import annotations

from repro.qgm.builder import (Exporter, subgraph_quantifiers,
                               unique_head_name)
from repro.qgm.model import (Box, GroupByBox, HeadColumn, QRef, Quantifier,
                             SelectBox, box_expressions, quantifiers_in,
                             walk_qgm_expression)
from repro.rewrite.engine import Rule, RewriteContext
from repro.sql import ast

_COMPARISONS = {"=", "<", ">", "<=", ">=", "<>", "!="}
_NULL_PROPAGATING_OPS = _COMPARISONS | {"+", "-", "*", "/"}
_DECORRELATABLE_AGGREGATES = {"MIN", "MAX", "SUM", "AVG"}


def _null_rejecting_on(conjunct: ast.Expression, quantifier) -> bool:
    """True when a NULL value of ``quantifier``'s scalar can never make
    the conjunct TRUE.  Conservative whitelist: the conjunct must be a
    comparison whose whole tree is built from NULL-propagating
    operators and plain leaves."""
    if not isinstance(conjunct, ast.BinaryOp) \
            or conjunct.op not in _COMPARISONS:
        return False
    for node in walk_qgm_expression(conjunct):
        if isinstance(node, ast.BinaryOp):
            if node.op not in _NULL_PROPAGATING_OPS:
                return False
        elif isinstance(node, ast.UnaryOp):
            if node.op != "-":
                return False
        elif not isinstance(node, (ast.Literal, ast.Parameter, QRef)):
            return False
    return True


class ScalarAggToJoin(Rule):
    """Correlated scalar aggregate subquery -> join with a grouped box."""

    name = "ScalarAggToJoin"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            self._candidate(box, context) is not None

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        found = self._candidate(box, context)
        if found is None:
            return False
        quantifier, inner, groupby, lower, correlated = found

        exporter = Exporter(lower, groupby.input)
        inner_quantifier = inner.body_quantifiers[0]
        key_names: list[str] = []
        outer_sides: list[ast.Expression] = []
        for position, (_predicate, inner_side, outer_side) in \
                enumerate(correlated):
            exported = exporter.export(inner_side)
            name = unique_head_name(groupby, f"CK{position + 1}")
            # Group keys must precede aggregate columns in the head.
            groupby.head.insert(position, HeadColumn(name, exported))
            groupby.group_keys.append(exported)
            inner.head.append(HeadColumn(name, QRef(inner_quantifier,
                                                    name)))
            key_names.append(name)
            outer_sides.append(outer_side)
        removed = {id(predicate) for predicate, _i, _o in correlated}
        lower.predicates = [p for p in lower.predicates
                            if id(p) not in removed]
        quantifier.qtype = Quantifier.F
        for name, outer_side in zip(key_names, outer_sides):
            box.predicates.append(
                ast.BinaryOp("=", outer_side, QRef(quantifier, name))
            )
        return True

    # ------------------------------------------------------------------
    def _candidate(self, box: SelectBox, context: RewriteContext):
        counts = context.reference_counts()
        for quantifier in box.body_quantifiers:
            if quantifier.qtype != Quantifier.S:
                continue
            shape = self._subquery_shape(quantifier.box, counts)
            if shape is None:
                continue
            inner, groupby, lower = shape
            correlated = self._correlated_equalities(inner, lower)
            if correlated is None or not correlated:
                continue
            if not self._usage_allows_join(box, quantifier):
                continue
            # The join predicates move into this box: their outer side
            # must be placeable here.
            local = set(box.body_quantifiers)
            if any(not quantifiers_in(outer_side) <= local
                   for _p, _i, outer_side in correlated):
                continue
            return quantifier, inner, groupby, lower, correlated
        return None

    @staticmethod
    def _subquery_shape(inner: Box, counts: dict[int, int]):
        """Match SelectBox(head=[agg]) -> GroupByBox(no keys) ->
        SelectBox, each unshared and presentation-free."""
        if not isinstance(inner, SelectBox) or counts.get(
                inner.box_id, 0) != 1:
            return None
        if inner.distinct or inner.predicates or inner.order_by \
                or inner.limit is not None or inner.offset is not None:
            return None
        if len(inner.body_quantifiers) != 1 or len(inner.head) != 1:
            return None
        input_q = inner.body_quantifiers[0]
        head_expr = inner.head[0].expression
        groupby = input_q.box
        if input_q.qtype != Quantifier.F \
                or not isinstance(groupby, GroupByBox) \
                or counts.get(groupby.box_id, 0) != 1:
            return None
        if groupby.group_keys:
            return None  # an explicit GROUP BY inside the scalar: punt
        if not (isinstance(head_expr, QRef)
                and head_expr.quantifier is input_q):
            return None
        spec = groupby.aggregates.get(head_expr.column.upper())
        if spec is None or spec.function not in _DECORRELATABLE_AGGREGATES:
            return None
        if groupby.input is None:
            return None
        lower = groupby.input.box
        if not isinstance(lower, SelectBox) \
                or counts.get(lower.box_id, 0) != 1:
            return None
        if lower.distinct or lower.order_by or lower.limit is not None \
                or lower.offset is not None:
            return None
        if not lower.foreach_quantifiers():
            return None
        return inner, groupby, lower

    @staticmethod
    def _correlated_equalities(inner: SelectBox, lower: SelectBox):
        """(predicate, inner_side, outer_side) triples for every
        correlated conjunct of ``lower`` — or None when correlation is
        not confined to equality conjuncts of ``lower``."""
        owned = subgraph_quantifiers(inner)
        # Correlation anywhere else in the subgraph disqualifies: the
        # extraction below only relocates lower's predicates.
        boxes: list[Box] = []
        stack: list[Box] = [inner]
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if current.box_id in seen:
                continue
            seen.add(current.box_id)
            boxes.append(current)
            stack.extend(q.box for q in current.quantifiers())
        lower_predicates = {id(p) for p in lower.predicates}
        for current in boxes:
            for expression in box_expressions(current):
                if current is lower and id(expression) in lower_predicates:
                    continue
                if any(q not in owned
                       for q in quantifiers_in(expression)):
                    return None
        triples: list[tuple[ast.Expression, ast.Expression,
                            ast.Expression]] = []
        for predicate in lower.predicates:
            refs = quantifiers_in(predicate)
            if refs <= owned:
                continue  # purely local
            if not isinstance(predicate, ast.BinaryOp) \
                    or predicate.op != "=":
                return None
            for inner_side, outer_side in (
                    (predicate.left, predicate.right),
                    (predicate.right, predicate.left)):
                inner_refs = quantifiers_in(inner_side)
                outer_refs = quantifiers_in(outer_side)
                if inner_refs and inner_refs <= owned \
                        and outer_refs and not outer_refs & owned:
                    triples.append((predicate, inner_side, outer_side))
                    break
            else:
                return None
        return triples

    @staticmethod
    def _usage_allows_join(box: SelectBox, quantifier: Quantifier) -> bool:
        """The scalar may appear only in null-rejecting predicate
        conjuncts of the outer box."""

        def references(expression: ast.Expression) -> bool:
            return quantifier in quantifiers_in(expression)

        for column in box.head:
            if column.expression is not None \
                    and references(column.expression):
                return False
        for expression, _desc in box.order_by:
            if references(expression):
                return False
        found = False
        for predicate in box.predicates:
            if not references(predicate):
                continue
            if not _null_rejecting_on(predicate, quantifier):
                return False
            found = True
        return found
