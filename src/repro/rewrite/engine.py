"""The rule engine shared by NF rewrite and XNF semantic rewrite.

Sect. 4.4: "Both apply the same transformation techniques, i.e.,
rule-based rewriting, and both use the same rule representation mechanism
as well as the same rule engine."  Rules are condition/action pairs over
QGM boxes; the engine drives them to a fixpoint with a budget so a buggy
rule cannot loop forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RewriteError
from repro.qgm.model import Box, QGMGraph
from repro.storage.catalog import Catalog


@dataclass
class RewriteContext:
    """State visible to rules: the graph, the catalog, and bookkeeping."""

    graph: QGMGraph
    catalog: Catalog
    #: rule name -> number of successful applications (for EXPLAIN/tests)
    applications: dict[str, int] = field(default_factory=dict)

    def reference_counts(self) -> dict[int, int]:
        return self.graph.reference_counts()

    def record(self, rule_name: str) -> None:
        self.applications[rule_name] = self.applications.get(rule_name, 0) + 1


class Rule:
    """One rewrite rule: a condition and an action over a single box.

    ``apply`` returns True when it changed the graph; the engine then
    restarts the scan (graph shape may have changed arbitrarily).
    """

    name = "rule"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        raise NotImplementedError

    def apply(self, box: Box, context: RewriteContext) -> bool:
        raise NotImplementedError


class RuleEngine:
    """Fixpoint driver: apply rules to boxes until nothing fires."""

    def __init__(self, rules: list[Rule], budget: int = 10_000):
        self.rules = list(rules)
        self.budget = budget

    def run(self, graph: QGMGraph, catalog: Catalog) -> RewriteContext:
        context = RewriteContext(graph=graph, catalog=catalog)
        remaining = self.budget
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                for box in graph.all_boxes():
                    if not rule.matches(box, context):
                        continue
                    if rule.apply(box, context):
                        context.record(rule.name)
                        changed = True
                        remaining -= 1
                        if remaining <= 0:
                            raise RewriteError(
                                f"rewrite budget exhausted; last rule: "
                                f"{rule.name}"
                            )
                        break  # graph changed: rescan boxes
                if changed:
                    break  # restart from the first rule
        return context
