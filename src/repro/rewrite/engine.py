"""The rule engine shared by NF rewrite and XNF semantic rewrite.

Sect. 4.4: "Both apply the same transformation techniques, i.e.,
rule-based rewriting, and both use the same rule representation mechanism
as well as the same rule engine."  Rules are condition/action pairs over
QGM boxes; the engine drives them to a fixpoint with a budget so a buggy
rule cannot loop forever.

The budget is configurable through
:class:`~repro.optimizer.optimizer.PlannerOptions` (``rewrite_budget``);
exhausting it raises :class:`~repro.errors.RewriteError` naming the
last-fired rule and the per-rule application counts, so a runaway
rule is identifiable from the error alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RewriteError
from repro.qgm.model import Box, QGMGraph
from repro.storage.catalog import Catalog

#: Default fixpoint budget (total rule firings per graph); see
#: ``PlannerOptions.rewrite_budget`` for the configurable knob.
DEFAULT_REWRITE_BUDGET = 10_000


@dataclass
class RewriteContext:
    """State visible to rules: the graph, the catalog, and bookkeeping."""

    graph: QGMGraph
    catalog: Catalog
    #: rule name -> number of successful applications (for EXPLAIN/tests)
    applications: dict[str, int] = field(default_factory=dict)
    #: Every rule firing in order — the rewrite trace EXPLAIN renders.
    fired: list[str] = field(default_factory=list)
    #: Head columns removed by the PruneColumns rule (all firings).
    pruned_columns: int = 0
    #: Per-rule scratch state for the duration of one fixpoint run
    #: (e.g. ConstProp's already-derived facts, so a derived predicate
    #: that another rule relocates is not derived again forever).
    scratch: dict = field(default_factory=dict)
    _reference_counts: Optional[dict[int, int]] = field(default=None,
                                                        repr=False)

    def reference_counts(self) -> dict[int, int]:
        """Reference counts of the current graph, memoized between
        firings: ``matches`` probes never mutate, so the counts stay
        valid until the next successful ``apply`` (``record`` drops
        the memo)."""
        if self._reference_counts is None:
            self._reference_counts = self.graph.reference_counts()
        return self._reference_counts

    def record(self, rule_name: str) -> None:
        self.applications[rule_name] = self.applications.get(rule_name, 0) + 1
        self.fired.append(rule_name)
        self._reference_counts = None


class Rule:
    """One rewrite rule: a condition and an action over a single box.

    ``apply`` returns True when it changed the graph; the engine then
    restarts the scan (graph shape may have changed arbitrarily).
    """

    name = "rule"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        raise NotImplementedError

    def apply(self, box: Box, context: RewriteContext) -> bool:
        raise NotImplementedError


class RuleEngine:
    """Fixpoint driver: apply rules to boxes until nothing fires."""

    def __init__(self, rules: list[Rule],
                 budget: int = DEFAULT_REWRITE_BUDGET):
        self.rules = list(rules)
        self.budget = budget

    def run(self, graph: QGMGraph, catalog: Catalog) -> RewriteContext:
        context = RewriteContext(graph=graph, catalog=catalog)
        remaining = self.budget
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                for box in graph.all_boxes():
                    if not rule.matches(box, context):
                        continue
                    if rule.apply(box, context):
                        context.record(rule.name)
                        changed = True
                        remaining -= 1
                        if remaining <= 0:
                            raise RewriteError(
                                f"rewrite budget ({self.budget}) "
                                f"exhausted; last rule: {rule.name}; "
                                f"applications: {context.applications}"
                            )
                        break  # graph changed: rescan boxes
                if changed:
                    break  # restart from the first rule
        return context
