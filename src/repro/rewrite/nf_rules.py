"""NF rewrite rules: the Starburst query rewrite stage (Sect. 3.2, [39]).

The two headline rules from the paper's Fig. 3 walkthrough:

* :class:`ExistentialToJoin` — the "E to F Quantifier Conversion" rule:
  an existential quantifier becomes a ForEach quantifier (a join) when
  the conversion cannot introduce duplicates (the matched side is unique
  on the equated columns) or when the box already enforces DISTINCT.
* :class:`SelectMerge` — merges a select box into its consumer
  ("combining the two SELECT boxes into one"), provided the lower box is
  not shared: shared boxes are exactly the common subexpressions the XNF
  rewrite wants evaluated once, so merging them would undo multi-query
  optimization.

Plus supporting cleanup: predicate pushdown (below DISTINCT and through
UNION branches) and global pruning of unused head columns.
"""

from __future__ import annotations

from repro.qgm.model import (BaseBox, Box, GroupByBox, QGMGraph, QRef,
                             Quantifier, RidRef, SelectBox, SetOpBox, TopBox,
                             XNFBox, box_expressions, quantifiers_in,
                             replace_qrefs, rewrite_box_expressions,
                             walk_qgm_expression)
from repro.rewrite.engine import Rule, RewriteContext
from repro.sql import ast


# ----------------------------------------------------------------------
# Uniqueness inference (used by E-to-F)
# ----------------------------------------------------------------------
def columns_unique_in(box: Box, columns: set[str]) -> bool:
    """Can two distinct rows of ``box`` agree on all of ``columns``?

    Conservative: returns True only when provably unique — via primary
    keys, unique indexes, DISTINCT heads, group-by keys, or simple
    select chains over those.
    """
    upper = {c.upper() for c in columns}
    if isinstance(box, BaseBox):
        table = box.table
        pk = {c.upper() for c in table.primary_key}
        if pk and pk <= upper:
            return True
        for index in table.indexes:
            if index.unique and \
                    {c.upper() for c in index.column_names} <= upper:
                return True
        return False
    if isinstance(box, SelectBox):
        if box.distinct and upper >= {c.name.upper() for c in box.head}:
            return True
        foreach = box.foreach_quantifiers()
        if len(foreach) != 1:
            return False
        quantifier = foreach[0]
        mapped: set[str] = set()
        for column in box.head:
            if column.name.upper() not in upper:
                continue
            if isinstance(column.expression, QRef) \
                    and column.expression.quantifier is quantifier:
                mapped.add(column.expression.column.upper())
            elif isinstance(column.expression, RidRef) \
                    and column.expression.quantifier is quantifier:
                return True  # a RID column is unique by construction
        return bool(mapped) and columns_unique_in(quantifier.box, mapped)
    if isinstance(box, GroupByBox):
        key_names = {
            column.name.upper()
            for column, _key in zip(box.head, box.group_keys)
        }
        return bool(key_names) and key_names <= upper
    if isinstance(box, SetOpBox):
        if not box.all_rows:
            return upper >= {c.name.upper() for c in box.head}
        return False
    return False


def equated_columns(box: SelectBox, quantifier: Quantifier,
                    foreach_other_side: bool = False) -> set[str]:
    """Head columns of ``quantifier``'s box equated (by a conjunct of
    ``box``) to expressions not involving ``quantifier``.

    With ``foreach_other_side`` the other side must reference only
    ForEach quantifiers (or constants).  The E-to-F rule needs this:
    uniqueness against an expression that is itself existentially
    quantified says nothing about the output multiplicity, so such
    equalities must not license the conversion.
    """
    equated: set[str] = set()
    for predicate in box.predicates:
        if not isinstance(predicate, ast.BinaryOp) or predicate.op != "=":
            continue
        for this, other in ((predicate.left, predicate.right),
                            (predicate.right, predicate.left)):
            if not (isinstance(this, QRef)
                    and this.quantifier is quantifier):
                continue
            others = quantifiers_in(other)
            if quantifier in others:
                continue
            if foreach_other_side and any(
                    q.qtype != Quantifier.F for q in others):
                continue
            equated.add(this.column.upper())
    return equated


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class ExistentialToJoin(Rule):
    """Convert an E quantifier into an F quantifier (Fig. 3b).

    Sound when (a) the equated columns are unique in the quantified box —
    each outer row finds at most one match, so no duplicates appear — or
    (b) the box already enforces DISTINCT on its head, which absorbs any
    duplicates the conversion introduces.
    """

    name = "E2F"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            self._candidate(box) is not None

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        quantifier = self._candidate(box)
        if quantifier is None:
            return False
        quantifier.qtype = Quantifier.F
        return True

    @staticmethod
    def _candidate(box: SelectBox):
        for quantifier in box.existential_quantifiers():
            if box.distinct:
                return quantifier
            equated = equated_columns(box, quantifier,
                                      foreach_other_side=True)
            if equated and columns_unique_in(quantifier.box, equated):
                return quantifier
        return None


class SelectMerge(Rule):
    """Merge an unshared simple select box into its consumer (Fig. 3c).

    An F quantifier over a lower SelectBox is replaced by the lower box's
    body; head references are substituted by the lower head expressions.
    E quantifiers over a lower select merge too: the lower box's ForEach
    quantifiers become existential in the upper box (the existential
    scope distributes over the conjunctive body).
    """

    name = "SelectMerge"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            self._candidate(box, context) is not None

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        quantifier = self._candidate(box, context)
        if quantifier is None:
            return False
        lower: SelectBox = quantifier.box
        substitution = {
            column.name.upper(): column.expression for column in lower.head
        }

        def mapping(leaf):
            if isinstance(leaf, QRef) and leaf.quantifier is quantifier:
                return substitution[leaf.column.upper()]
            return leaf

        for column in box.head:
            if column.expression is not None:
                column.expression = replace_qrefs(column.expression, mapping)
        box.predicates = [replace_qrefs(p, mapping) for p in box.predicates]
        box.order_by = [(replace_qrefs(e, mapping), d)
                        for e, d in box.order_by]
        box.remove_quantifier(quantifier)
        for moved in lower.body_quantifiers:
            if quantifier.qtype == Quantifier.E \
                    and moved.qtype == Quantifier.F:
                moved.qtype = Quantifier.E
            box.add_quantifier(moved)
        box.predicates.extend(lower.predicates)
        return True

    @staticmethod
    def _candidate(box: SelectBox, context: RewriteContext):
        counts = context.reference_counts()
        for quantifier in box.body_quantifiers:
            lower = quantifier.box
            if not isinstance(lower, SelectBox):
                continue
            if counts.get(lower.box_id, 0) != 1:
                continue  # shared: keep as a common subexpression
            if lower.distinct or lower.order_by or lower.limit is not None \
                    or lower.offset is not None:
                continue
            if any(column.expression is None for column in lower.head):
                continue
            if quantifier.qtype == Quantifier.F:
                return quantifier
            if quantifier.qtype == Quantifier.E and all(
                    q.qtype in (Quantifier.F, Quantifier.E)
                    for q in lower.body_quantifiers):
                return quantifier
        return None


class PredicatePushdown(Rule):
    """Push a single-quantifier predicate below a DISTINCT select box.

    SelectMerge flattens plain unshared selects, so this rule only needs
    to handle the boxes SelectMerge must skip: DISTINCT (and ORDER BY)
    boxes without LIMIT/OFFSET, where filtering commutes.
    """

    name = "Pushdown"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            self._candidate(box, context) is not None

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        found = self._candidate(box, context)
        if found is None:
            return False
        predicate, quantifier = found
        lower: SelectBox = quantifier.box

        def mapping(leaf):
            if isinstance(leaf, QRef) and leaf.quantifier is quantifier:
                return lower.head_column(leaf.column).expression
            return leaf

        box.predicates.remove(predicate)
        lower.predicates.append(replace_qrefs(predicate, mapping))
        return True

    @staticmethod
    def _candidate(box: SelectBox, context: RewriteContext):
        counts = context.reference_counts()
        for predicate in box.predicates:
            referenced = quantifiers_in(predicate)
            if len(referenced) != 1:
                continue
            quantifier = next(iter(referenced))
            if quantifier not in box.body_quantifiers:
                continue
            if quantifier.qtype not in (Quantifier.F, Quantifier.E):
                continue
            lower = quantifier.box
            if not isinstance(lower, SelectBox):
                continue
            if counts.get(lower.box_id, 0) != 1:
                continue
            if not (lower.distinct or lower.order_by):
                continue  # SelectMerge's territory
            if lower.limit is not None or lower.offset is not None:
                continue
            if any(column.expression is None for column in lower.head):
                continue
            return predicate, quantifier
        return None


class SetOpPushdown(Rule):
    """Push a single-quantifier predicate into all UNION branches."""

    name = "SetOpPushdown"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            self._candidate(box) is not None

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        found = self._candidate(box)
        if found is None:
            return False
        predicate, quantifier = found
        setop: SetOpBox = quantifier.box
        positions = {c.name.upper(): i for i, c in enumerate(setop.head)}
        box.predicates.remove(predicate)
        for input_q in setop.inputs:
            branch: SelectBox = input_q.box

            def mapping(leaf, _branch=branch):
                if isinstance(leaf, QRef) and leaf.quantifier is quantifier:
                    return _branch.head[positions[leaf.column.upper()]] \
                        .expression
                return leaf

            branch.predicates.append(replace_qrefs(predicate, mapping))
        return True

    @staticmethod
    def _candidate(box: SelectBox):
        for predicate in box.predicates:
            referenced = quantifiers_in(predicate)
            if len(referenced) != 1:
                continue
            quantifier = next(iter(referenced))
            if quantifier not in box.body_quantifiers:
                continue
            setop = quantifier.box
            if not isinstance(setop, SetOpBox) or setop.operator != "UNION":
                continue
            if not all(
                isinstance(i.box, SelectBox)
                and all(c.expression is not None for c in i.box.head)
                for i in setop.inputs
            ):
                continue
            if any(isinstance(node, RidRef)
                   for node in walk_qgm_expression(predicate)):
                continue
            return predicate, quantifier
        return None


class TrivialPredicateElimination(Rule):
    """Drop Literal(TRUE) conjuncts left by subquery detachment."""

    name = "DropTrue"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            ast.Literal(True) in box.predicates

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        before = len(box.predicates)
        box.predicates = [p for p in box.predicates
                          if p != ast.Literal(True)]
        return len(box.predicates) != before


def _is_constant(expression: ast.Expression) -> bool:
    """Literal or parameter: a value fixed for one execution."""
    if isinstance(expression, ast.Parameter):
        return True
    return isinstance(expression, ast.Literal) and \
        expression.value is not None and \
        not isinstance(expression.value, bool)


class ConstantPropagation(Rule):
    """Propagate constants across equated columns (transitive equality).

    From conjuncts ``a.x = b.y`` and ``a.x = 5`` derive ``b.y = 5``:
    the implied restriction is redundant logically but not physically —
    it unlocks index access paths on *both* sides of the join and
    tightens cardinality estimates.  Parameters count as constants
    (their value is fixed for one execution), so cached parameterized
    plans benefit too.
    """

    name = "ConstProp"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            self._candidate(box, context) is not None

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        found = self._candidate(box, context)
        if found is None:
            return False
        reference, constant = found
        self._derived_facts(context).add(self._fact(reference, constant))
        box.predicates.append(ast.BinaryOp("=", reference, constant))
        return True

    @staticmethod
    def _derived_facts(context: RewriteContext) -> set:
        return context.scratch.setdefault("constprop_derived", set())

    @staticmethod
    def _fact(reference: QRef, constant: ast.Expression) -> tuple:
        return (reference.quantifier.qid, reference.column.upper(),
                repr(constant))

    @classmethod
    def _candidate(cls, box: SelectBox, context: RewriteContext):
        """A (QRef, constant) pair implied by the conjuncts but not yet
        present as its own equality conjunct.

        Facts derived earlier in this fixpoint run are never derived
        again (``context.scratch``): Pushdown may legitimately *move* a
        derived equality into a lower DISTINCT/UNION box, and
        re-deriving it here would ping-pong until the budget blows.
        """
        # Union-find over column references joined by equality conjuncts.
        parent: dict[QRef, QRef] = {}

        def find(ref: QRef) -> QRef:
            parent.setdefault(ref, ref)
            while parent[ref] is not ref:
                parent[ref] = parent[parent[ref]]
                ref = parent[ref]
            return ref

        constants: dict[QRef, ast.Expression] = {}
        for predicate in box.predicates:
            if not isinstance(predicate, ast.BinaryOp) \
                    or predicate.op != "=":
                continue
            left, right = predicate.left, predicate.right
            if isinstance(left, QRef) and isinstance(right, QRef):
                parent[find(left)] = find(right)
            for ref, value in ((left, right), (right, left)):
                if isinstance(ref, QRef) and _is_constant(value):
                    constants.setdefault(find(ref), value)
        if not constants:
            return None
        # Normalize constants to class roots after all unions.
        by_root: dict[QRef, ast.Expression] = {}
        for ref, value in constants.items():
            by_root.setdefault(find(ref), value)
        present = set()
        for predicate in box.predicates:
            if isinstance(predicate, ast.BinaryOp) and predicate.op == "=":
                for ref, value in ((predicate.left, predicate.right),
                                   (predicate.right, predicate.left)):
                    if isinstance(ref, QRef) and _is_constant(value):
                        present.add(ref)
        derived = cls._derived_facts(context)
        for ref in parent:
            constant = by_root.get(find(ref))
            if constant is None or ref in present:
                continue
            if cls._fact(ref, constant) in derived:
                continue
            return ref, constant
        return None


class RedundantJoinElimination(Rule):
    """Remove joins that cannot change the result (Sect. 3.2 spirit).

    Two sound cases over *base-table* quantifiers:

    * **self-join**: two ForEach quantifiers over the same table whose
      rows are pairwise equated on a unique key refer to the same row;
      the second quantifier is substituted away.
    * **parent-join**: a ForEach quantifier over a parent table that is
      referenced *only* by foreign-key join conjuncts from a child
      quantifier whose FK columns are non-nullable: every child row
      matches exactly one parent row, so the join neither filters nor
      duplicates.
    """

    name = "JoinElim"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, SelectBox) and \
            (self._self_join_candidate(box) is not None
             or self._parent_join_candidate(box, context) is not None)

    def apply(self, box: SelectBox, context: RewriteContext) -> bool:
        found = self._self_join_candidate(box)
        if found is not None:
            keep, remove, equated = found
            self._substitute(context.graph, keep, remove)
            box.remove_quantifier(remove)
            self._drop_tautologies(box, keep, equated)
            return True
        found = self._parent_join_candidate(box, context)
        if found is not None:
            remove, join_predicates = found
            for predicate in join_predicates:
                box.predicates.remove(predicate)
            box.remove_quantifier(remove)
            return True
        return False

    # -- self-join ------------------------------------------------------
    @staticmethod
    def _self_join_candidate(box: SelectBox):
        foreach = [q for q in box.foreach_quantifiers()
                   if isinstance(q.box, BaseBox)]
        for i, keep in enumerate(foreach):
            for remove in foreach[i + 1:]:
                if remove.box.table.name != keep.box.table.name:
                    continue
                equated: set[str] = set()
                for predicate in box.predicates:
                    column = RedundantJoinElimination._pairwise_equality(
                        predicate, keep, remove)
                    if column is not None:
                        equated.add(column)
                if equated and columns_unique_in(keep.box, equated):
                    return keep, remove, equated
        return None

    @staticmethod
    def _pairwise_equality(predicate: ast.Expression, keep: Quantifier,
                           remove: Quantifier):
        """``keep.c = remove.c`` (same column, either order) -> 'C'."""
        if not isinstance(predicate, ast.BinaryOp) or predicate.op != "=":
            return None
        left, right = predicate.left, predicate.right
        if not (isinstance(left, QRef) and isinstance(right, QRef)):
            return None
        if {left.quantifier, right.quantifier} != {keep, remove}:
            return None
        if left.column.upper() != right.column.upper():
            return None
        return left.column.upper()

    @staticmethod
    def _substitute(graph: QGMGraph, keep: Quantifier,
                    remove: Quantifier) -> None:
        """Redirect every reference to ``remove`` (anywhere in the
        graph, including correlated subquery boxes and outer-join
        conditions) at ``keep``."""

        def mapping(leaf):
            if isinstance(leaf, QRef) and leaf.quantifier is remove:
                return QRef(keep, leaf.column)
            if isinstance(leaf, RidRef) and leaf.quantifier is remove:
                return RidRef(keep)
            return leaf

        for box in graph.all_boxes():
            rewrite_box_expressions(
                box, lambda expression: replace_qrefs(expression, mapping))

    @staticmethod
    def _drop_tautologies(box: SelectBox, keep: Quantifier,
                          equated: set[str]) -> None:
        """Drop ``keep.c = keep.c`` conjuncts for non-nullable columns.

        A nullable column keeps its (now self-referential) equality:
        ``c = c`` is UNKNOWN for NULL, which the original join predicate
        also rejected.
        """
        table = keep.box.table
        non_nullable = {
            column.name.upper() for column in table.columns
            if not column.nullable or column.primary_key
        }
        kept: list[ast.Expression] = []
        for predicate in box.predicates:
            column = RedundantJoinElimination._pairwise_equality(
                predicate, keep, keep)
            if column is not None and column in equated \
                    and column in non_nullable:
                continue
            kept.append(predicate)
        box.predicates = kept

    # -- parent-join ----------------------------------------------------
    @staticmethod
    def _parent_join_candidate(box: SelectBox, context: RewriteContext):
        foreach = set(box.foreach_quantifiers())
        for remove in box.foreach_quantifiers():
            if not isinstance(remove.box, BaseBox):
                continue
            parent_table = remove.box.table
            pk = {c.upper() for c in parent_table.primary_key}
            if not pk:
                continue
            usable = RedundantJoinElimination._sole_fk_usage(
                box, context, remove, foreach, pk)
            if usable is not None:
                return remove, usable
        return None

    @staticmethod
    def _sole_fk_usage(box: SelectBox, context: RewriteContext,
                       remove: Quantifier, foreach: set[Quantifier],
                       pk: set[str]):
        """The FK join conjuncts referencing ``remove`` — or None when
        any other reference exists or the FK guarantee does not hold."""
        join_predicates: list[ast.Expression] = []
        matched: dict[Quantifier, dict[str, str]] = {}  # child -> pk->fk
        for predicate in box.predicates:
            if remove not in quantifiers_in(predicate):
                continue
            if not isinstance(predicate, ast.BinaryOp) \
                    or predicate.op != "=":
                return None
            pair = None
            for this, other in ((predicate.left, predicate.right),
                                (predicate.right, predicate.left)):
                if isinstance(this, QRef) and this.quantifier is remove \
                        and isinstance(other, QRef) \
                        and other.quantifier is not remove:
                    pair = (this, other)
                    break
            if pair is None:
                return None
            parent_ref, child_ref = pair
            child = child_ref.quantifier
            if child not in foreach or not isinstance(child.box, BaseBox):
                return None
            columns = matched.setdefault(child, {})
            existing = columns.get(parent_ref.column.upper())
            if existing is not None \
                    and existing != child_ref.column.upper():
                # Two different child columns equated to one parent
                # column imply child_col_a = child_col_b; dropping the
                # join would lose that constraint.
                return None
            columns[parent_ref.column.upper()] = child_ref.column.upper()
            join_predicates.append(predicate)
        if not join_predicates:
            return None
        # No other expression anywhere may reference the parent
        # quantifier (identity comparison: a structurally identical
        # predicate elsewhere is still a separate reference).
        join_ids = {id(p) for p in join_predicates}
        for other_box in context.graph.all_boxes():
            for expression in box_expressions(other_box):
                if id(expression) in join_ids:
                    continue
                for node in walk_qgm_expression(expression):
                    if isinstance(node, (QRef, RidRef)) \
                            and node.quantifier is remove:
                        return None
        # One child must cover the full primary key through a declared
        # FK whose child columns are all non-nullable.
        parent_name = remove.box.table.name
        for child, columns in matched.items():
            if set(columns) != pk:
                continue
            child_table = child.box.table
            for fk in context.catalog.foreign_keys_of(child_table.name):
                if fk.parent_table.upper() != parent_name.upper():
                    continue
                fk_map = dict(zip(fk.parent_columns, fk.child_columns))
                if {k.upper() for k in fk_map} != pk:
                    continue
                if any(columns.get(p.upper()) != c.upper()
                       for p, c in fk_map.items()):
                    continue
                nullable = {
                    column.name.upper() for column in child_table.columns
                    if column.nullable and not column.primary_key
                }
                if any(c.upper() in nullable for c in fk.child_columns):
                    continue
                if len(matched) == 1:
                    return join_predicates
        return None


class PruneColumns(Rule):
    """Head pruning / projection pushdown as a first-class rule.

    Wraps :func:`prune_unused_columns` so pruning participates in the
    fixpoint (merges expose new dead columns; pruning in turn shrinks
    the boxes later rules scan) and shows up in EXPLAIN's
    rule-application counts.  Matches the TOP box so each engine sweep
    runs the global pass exactly once.
    """

    name = "PruneColumns"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return isinstance(box, TopBox)

    def apply(self, box: TopBox, context: RewriteContext) -> bool:
        removed = prune_unused_columns(context.graph)
        context.pruned_columns += removed
        return removed > 0


def default_nf_rules(prune: bool = True) -> list[Rule]:
    """A fresh default rule catalog (rules are stateless but listed
    per-engine for clarity).  ``prune=False`` drops the PruneColumns
    rule — the pipeline's ``prune_columns`` toggle."""
    from repro.rewrite.decorrelate import ScalarAggToJoin
    from repro.rewrite.view_merge import ViewMerge

    rules: list[Rule] = [
        TrivialPredicateElimination(),
        ExistentialToJoin(),
        SelectMerge(),
        ViewMerge(),
        ScalarAggToJoin(),
        ConstantPropagation(),
        RedundantJoinElimination(),
        PredicatePushdown(),
        SetOpPushdown(),
    ]
    if prune:
        rules.append(PruneColumns())
    return rules


DEFAULT_NF_RULES: list[Rule] = default_nf_rules(prune=False)


# ----------------------------------------------------------------------
# Global head pruning (a pass, not a local rule)
# ----------------------------------------------------------------------
def prune_unused_columns(graph: QGMGraph) -> int:
    """Remove head columns no consumer references.  Returns #removed.

    Heads of TOP outputs, DISTINCT boxes, set-operation participants
    (positional correspondence), group-by boxes and XNF components stay
    untouched.
    """
    used: dict[int, set[str]] = {}
    keep_all: set[int] = set()

    def mark_expression(expression: ast.Expression) -> None:
        for node in walk_qgm_expression(expression):
            if isinstance(node, QRef):
                used.setdefault(node.quantifier.box.box_id,
                                set()).add(node.column.upper())
            elif isinstance(node, RidRef):
                keep_all.add(node.quantifier.box.box_id)

    for box in graph.all_boxes():
        if isinstance(box, TopBox):
            for output in box.outputs:
                keep_all.add(output.box.box_id)
        elif isinstance(box, XNFBox):
            for component in box.components.values():
                keep_all.add(component.box.box_id)
            for relationship in box.relationships.values():
                if relationship.predicate is not None:
                    mark_expression(relationship.predicate)
        elif isinstance(box, SetOpBox):
            keep_all.add(box.box_id)
            for input_q in box.inputs:
                keep_all.add(input_q.box.box_id)
        elif isinstance(box, SelectBox):
            if box.distinct:
                keep_all.add(box.box_id)
            for column in box.head:
                if column.expression is not None:
                    mark_expression(column.expression)
            for predicate in box.predicates:
                mark_expression(predicate)
            for expression, _desc in box.order_by:
                mark_expression(expression)
        elif isinstance(box, GroupByBox):
            for column in box.head:
                if column.expression is not None:
                    mark_expression(column.expression)
            for key in box.group_keys:
                mark_expression(key)
            for spec in box.aggregates.values():
                if spec.argument is not None:
                    mark_expression(spec.argument)
        else:
            for column in box.head:
                if column.expression is not None:
                    mark_expression(column.expression)
            condition = getattr(box, "condition", None)
            if condition is not None:
                mark_expression(condition)

    removed = 0
    for box in graph.all_boxes():
        if not isinstance(box, SelectBox):
            continue
        if box.box_id in keep_all:
            continue
        wanted = used.get(box.box_id, set())
        kept = [c for c in box.head if c.name.upper() in wanted]
        if not kept and box.head:
            kept = box.head[:1]  # a derived table needs at least one column
        removed += len(box.head) - len(kept)
        box.head = kept
    return removed
