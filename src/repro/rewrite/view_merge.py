"""View merging: give each consumer of a shared view its own copy.

The QGM builder inlines a SQL view's derivation once per statement and
lets every reference share that box, so ``SELECT ... FROM v a, v b``
quantifies twice over one subgraph.  Sharing is exactly right for the
XNF translator's connection boxes (evaluated once, Sect. 4.2) but wrong
for plain SQL views: a shared box blocks :class:`SelectMerge`, so each
consumer's predicates cannot push into its own copy and the view plans
as an opaque derived table.

:class:`ViewMerge` breaks the sharing *only* for boxes the builder
tagged ``from_view``: the referencing quantifier is repointed at a deep
copy of the view subgraph, after which the ordinary merge/pushdown/
pruning rules specialize each copy independently — XNF components over
views end up planning as single joins.
"""

from __future__ import annotations

from repro.qgm.clone import clone_subgraph
from repro.qgm.model import Box, SelectBox
from repro.rewrite.engine import Rule, RewriteContext


class ViewMerge(Rule):
    """Clone a multiply-referenced view box for one of its consumers."""

    name = "ViewMerge"

    def matches(self, box: Box, context: RewriteContext) -> bool:
        return self._candidate(box, context) is not None

    def apply(self, box: Box, context: RewriteContext) -> bool:
        quantifier = self._candidate(box, context)
        if quantifier is None:
            return False
        quantifier.box = clone_subgraph(quantifier.box)
        return True

    @staticmethod
    def _candidate(box: Box, context: RewriteContext):
        counts = context.reference_counts()
        for quantifier in box.quantifiers():
            lower = quantifier.box
            if not isinstance(lower, SelectBox):
                continue
            if lower.from_view is None:
                continue
            if counts.get(lower.box_id, 0) <= 1:
                continue  # single consumer: SelectMerge/pushdown handle it
            # Clone only when the copy is flattenable: a DISTINCT /
            # ORDER BY / LIMIT view body stays shared — its (deduped)
            # evaluation is the common subexpression the Spool operator
            # materializes once, which beats per-consumer copies.
            if lower.distinct or lower.order_by or lower.limit is not None \
                    or lower.offset is not None:
                continue
            if any(column.expression is None for column in lower.head):
                continue
            return quantifier
        return None
