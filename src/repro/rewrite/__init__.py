"""Rule-based query rewrite: shared engine, NF rules, XNF rules."""

from repro.rewrite.engine import RewriteContext, Rule, RuleEngine
from repro.rewrite.nf_rules import (DEFAULT_NF_RULES, ExistentialToJoin,
                                    PredicatePushdown, SelectMerge,
                                    SetOpPushdown,
                                    TrivialPredicateElimination,
                                    columns_unique_in, equated_columns,
                                    prune_unused_columns)

__all__ = [
    "RewriteContext", "Rule", "RuleEngine",
    "DEFAULT_NF_RULES", "ExistentialToJoin", "PredicatePushdown",
    "SelectMerge", "SetOpPushdown", "TrivialPredicateElimination",
    "columns_unique_in", "equated_columns", "prune_unused_columns",
]
