"""Rule-based query rewrite: shared engine, NF rules, XNF rules."""

from repro.rewrite.decorrelate import ScalarAggToJoin
from repro.rewrite.engine import (DEFAULT_REWRITE_BUDGET, RewriteContext,
                                  Rule, RuleEngine)
from repro.rewrite.nf_rules import (DEFAULT_NF_RULES, ConstantPropagation,
                                    ExistentialToJoin, PredicatePushdown,
                                    PruneColumns, RedundantJoinElimination,
                                    SelectMerge, SetOpPushdown,
                                    TrivialPredicateElimination,
                                    columns_unique_in, default_nf_rules,
                                    equated_columns, prune_unused_columns)
from repro.rewrite.view_merge import ViewMerge

__all__ = [
    "DEFAULT_REWRITE_BUDGET", "RewriteContext", "Rule", "RuleEngine",
    "DEFAULT_NF_RULES", "ConstantPropagation", "ExistentialToJoin",
    "PredicatePushdown", "PruneColumns", "RedundantJoinElimination",
    "ScalarAggToJoin", "SelectMerge", "SetOpPushdown",
    "TrivialPredicateElimination", "ViewMerge",
    "columns_unique_in", "default_nf_rules", "equated_columns",
    "prune_unused_columns",
]
