"""Single-component SQL derivation: the pre-XNF baseline (Fig. 6).

Without the XNF operator, an application derives a CO by issuing one SQL
query *per component* and one *per relationship*.  Each query must
re-express reachability with existential subqueries over the parent
derivations (Fig. 3/6), so the derivation work of shared ancestors is
replicated across queries — the redundancy Table 1 quantifies.

This module builds those standalone queries generically from an XNF
query, at the QGM level:

* a root component's query is its raw derivation;
* a non-root component's query restricts its raw derivation by an
  existential quantifier over the parent's standalone derivation via the
  relationship predicate (a UNION of such restrictions when several
  relationships reach it);
* a relationship's query joins the parent's and children's standalone
  derivations under the relationship predicate.

Within one query the builder shares boxes (a view referenced twice is
one box), but *across* queries nothing is shared — exactly the Fig. 6
situation.  :func:`table1_rows` counts operations per query with
:mod:`repro.qgm.ops` and reports the paper's Table 1 columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.optimizer.optimizer import Planner, PlannerOptions
from repro.qgm.builder import QGMBuilder
from repro.qgm.model import (HeadColumn, OutputStream, QGMGraph, QRef,
                             Quantifier, RidRef, SelectBox, SetOpBox,
                             TopBox, XNFBox, XNFRelationship, replace_qrefs)
from repro.qgm.ops import (OperationCount, count_operations,
                           replicated_operations)
from repro.rewrite.engine import Rule, RuleEngine
from repro.rewrite.nf_rules import (ExistentialToJoin,
                                    TrivialPredicateElimination)
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager
from repro.xnf.schema_graph import SchemaGraph

#: Rule set used when *counting* operations: convert existentials to
#: joins but keep the box structure intact so structurally identical
#: derivations in different queries keep identical signatures.
COUNTING_RULES: list[Rule] = [TrivialPredicateElimination(),
                              ExistentialToJoin()]


def _refs(expression: ast.Expression):
    from repro.qgm.model import quantifiers_in
    return quantifiers_in(expression)


@dataclass
class StandaloneQuery:
    """One per-component (or per-relationship) derivation query."""

    name: str
    kind: str  # 'component' | 'relationship'
    graph: QGMGraph
    operations: OperationCount = field(
        default_factory=OperationCount)


class SingleComponentDerivation:
    """Builds and runs the Fig. 6 style query set for an XNF view."""

    def __init__(self, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None,
                 counting_rules: Optional[list[Rule]] = None):
        self.catalog = catalog
        self.stats = stats or StatisticsManager(catalog)
        self.counting_rules = (COUNTING_RULES if counting_rules is None
                               else counting_rules)

    # ------------------------------------------------------------------
    def build_queries(self, query: ast.XNFQuery) -> list[StandaloneQuery]:
        """One standalone QGM graph per component and relationship."""
        queries: list[StandaloneQuery] = []
        for component in query.components:
            queries.append(self._standalone(query, component.name.upper(),
                                            "component"))
        for relationship in query.relationships:
            queries.append(self._standalone(query,
                                            relationship.name.upper(),
                                            "relationship"))
        for standalone in queries:
            RuleEngine(self.counting_rules).run(standalone.graph,
                                                self.catalog)
            standalone.operations = count_operations(standalone.graph)
        return queries

    def _standalone(self, query: ast.XNFQuery, name: str,
                    kind: str) -> StandaloneQuery:
        # Every standalone query rebuilds the XNF box so its QGM boxes
        # are private: nothing is shared across queries.
        builder = QGMBuilder(self.catalog)
        xnf = builder._build_xnf_box(query, view_name="standalone")
        schema = SchemaGraph.from_xnf_box(xnf)
        memo: dict[str, SelectBox] = {}
        if kind == "component":
            box = self._final(name, xnf, schema, memo)
        else:
            box = self._relationship_query(xnf.relationships[name], xnf,
                                           schema, memo)
        top = TopBox()
        top.outputs.append(OutputStream(name=name, box=box))
        return StandaloneQuery(name=name, kind=kind,
                               graph=QGMGraph(top=top))

    # ------------------------------------------------------------------
    def _final(self, name: str, xnf: XNFBox, schema: SchemaGraph,
               memo: dict) -> SelectBox:
        """The standalone reachability-restricted derivation of one
        component (memoized per query for intra-query sharing)."""
        cached = memo.get(name)
        if cached is not None:
            return cached
        component = xnf.components[name]
        incoming = schema.incoming(name)
        if component.is_root or not component.reachability_required \
                or not incoming:
            memo[name] = component.box
            return component.box
        branches: list[SelectBox] = []
        for edge in incoming:
            relationship = xnf.relationships[edge.name]
            branches.append(
                self._reachable_branch(name, relationship, xnf, schema,
                                       memo)
            )
        if len(branches) == 1:
            memo[name] = branches[0]
            return branches[0]
        union = SetOpBox("UNION", all_rows=False,
                         label=f"{name.lower()}_union")
        for branch in branches:
            union.inputs.append(Quantifier(branch, Quantifier.F))
        union.head = [HeadColumn(c.name) for c in branches[0].head]
        memo[name] = union
        return union

    def _reachable_branch(self, child: str,
                          relationship: XNFRelationship, xnf: XNFBox,
                          schema: SchemaGraph, memo: dict) -> SelectBox:
        """SELECT * FROM child_raw WHERE EXISTS(parent via predicate) —
        the Fig. 3a shape, as a QGM box with E quantifiers."""
        raw = xnf.components[child].box
        box = SelectBox(label=f"{child.lower()}_via_"
                              f"{relationship.name.lower()}")
        child_q = box.add_quantifier(Quantifier(raw, Quantifier.F,
                                                name=child))
        parent_final = self._final(relationship.parent, xnf, schema, memo)
        parent_q = box.add_quantifier(
            Quantifier(parent_final, Quantifier.E,
                       name=relationship.parent)
        )
        remap: dict[int, Quantifier] = {
            relationship.parent_quantifier.qid: parent_q,
        }
        # This child binds to the ForEach side; sibling children (n-ary)
        # and USING tables become jointly-existential quantifiers.
        for old, sibling_name in zip(relationship.child_quantifiers,
                                     relationship.children):
            if sibling_name == child and old.qid not in remap:
                remap[old.qid] = child_q
            elif old.qid not in remap:
                remap[old.qid] = box.add_quantifier(
                    Quantifier(xnf.components[sibling_name].box,
                               Quantifier.E, name=sibling_name)
                )
        for old in relationship.using_quantifiers:
            remap[old.qid] = box.add_quantifier(
                Quantifier(old.box, Quantifier.E, name=old.name)
            )
        box.predicates.extend(self._remapped(relationship, remap))
        box.head = [HeadColumn(c.name, QRef(child_q, c.name))
                    for c in raw.head]
        return box

    def _relationship_query(self, relationship: XNFRelationship,
                            xnf: XNFBox, schema: SchemaGraph,
                            memo: dict) -> SelectBox:
        """Join of the partners' standalone derivations (Fig. 6c).

        A practical SQL programmer skips joining a child whose key
        already sits in the USING mapping table (empproperty needs only
        xemp x EMPSKILLS — the skill number is ES.ESSNO); we reproduce
        that, which is also what makes Table 1's empproperty row cost 3
        operations rather than 4.  The shortcut applies when every
        conjunct touching the child equates a child column with a USING
        column and the child is an unrestricted base select (referential
        integrity guarantees the joined key exists).
        """
        box = SelectBox(label=f"rel_{relationship.name.lower()}")
        parent_final = self._final(relationship.parent, xnf, schema, memo)
        parent_q = box.add_quantifier(
            Quantifier(parent_final, Quantifier.F,
                       name=relationship.parent)
        )
        remap: dict[int, Quantifier] = {
            relationship.parent_quantifier.qid: parent_q,
        }
        child_keys: list[tuple[Quantifier, str]] = []
        omitted: dict[int, list[tuple[Quantifier, str]]] = {}
        for old, child_name in zip(relationship.child_quantifiers,
                                   relationship.children):
            shortcut = self._mapping_shortcut(relationship, old,
                                              child_name, xnf)
            if shortcut is not None:
                omitted[old.qid] = shortcut
                continue
            child_final = self._final(child_name, xnf, schema, memo)
            quantifier = box.add_quantifier(
                Quantifier(child_final, Quantifier.F, name=child_name)
            )
            remap[old.qid] = quantifier
            for column in child_final.head:
                child_keys.append((quantifier, column.name))
        using_remap: dict[int, Quantifier] = {}
        for old in relationship.using_quantifiers:
            quantifier = box.add_quantifier(
                Quantifier(old.box, Quantifier.F, name=old.name)
            )
            remap[old.qid] = quantifier
            using_remap[old.qid] = quantifier

        for predicate in self._remapped(relationship, remap,
                                        skip_quantifiers=set(omitted)):
            box.predicates.append(predicate)
        head: list[HeadColumn] = []
        for column in parent_final.head:
            head.append(HeadColumn(
                f"{relationship.parent}_{column.name}",
                QRef(parent_q, column.name),
            ))
        for quantifier, column_name in child_keys:
            head.append(HeadColumn(
                f"{quantifier.name}_{column_name}",
                QRef(quantifier, column_name),
            ))
        for old_qid, key_columns in omitted.items():
            for old_using_q, using_column in key_columns:
                new_using_q = using_remap[old_using_q.qid]
                head.append(HeadColumn(
                    f"key_{using_column}",
                    QRef(new_using_q, using_column),
                ))
        box.head = head
        return box

    @staticmethod
    def _mapping_shortcut(relationship: XNFRelationship,
                          child_q: Quantifier, child_name: str,
                          xnf: XNFBox):
        """If the child's key is carried by USING columns, return the
        (using-quantifier, column) pairs standing in for it."""
        if not relationship.using_quantifiers:
            return None
        raw = xnf.components[child_name].box
        unrestricted = (isinstance(raw, SelectBox) and not raw.distinct
                        and not raw.predicates
                        and len(raw.foreach_quantifiers()) == 1)
        if not unrestricted:
            return None
        using_set = set(relationship.using_quantifiers)
        keys: list[tuple[Quantifier, str]] = []
        for conjunct in ast.conjuncts(relationship.predicate):
            if not isinstance(conjunct, ast.BinaryOp) \
                    or conjunct.op != "=":
                if conjunct is not None and child_q in _refs(conjunct):
                    return None
                continue
            sides = (conjunct.left, conjunct.right)
            touches_child = any(
                isinstance(s, QRef) and s.quantifier is child_q
                for s in sides
            )
            if not touches_child:
                continue
            other = (sides[1] if isinstance(sides[0], QRef)
                     and sides[0].quantifier is child_q else sides[0])
            if not (isinstance(other, QRef)
                    and other.quantifier in using_set):
                return None
            keys.append((other.quantifier, other.column))
        return keys or None

    @staticmethod
    def _remapped(relationship: XNFRelationship,
                  remap: dict[int, Quantifier],
                  skip_quantifiers: set[int] = frozenset()
                  ) -> list[ast.Expression]:
        if relationship.predicate is None:
            return []

        def mapping(leaf):
            if isinstance(leaf, QRef):
                target = remap.get(leaf.quantifier.qid)
                if target is not None:
                    return QRef(target, leaf.column)
            elif isinstance(leaf, RidRef):
                target = remap.get(leaf.quantifier.qid)
                if target is not None:
                    return RidRef(target)
            return leaf

        kept: list[ast.Expression] = []
        for conjunct in ast.conjuncts(relationship.predicate):
            if skip_quantifiers and any(
                    q.qid in skip_quantifiers for q in _refs(conjunct)):
                continue
            remapped = replace_qrefs(conjunct, mapping)
            if remapped != ast.Literal(True):
                kept.append(remapped)
        return kept

    # ------------------------------------------------------------------
    def run_queries(self, queries: list[StandaloneQuery],
                    planner_options: Optional[PlannerOptions] = None
                    ) -> dict[str, list[tuple]]:
        """Execute every standalone query — each with its own execution
        context, so nothing is shared (the Fig. 6 cost)."""
        results: dict[str, list[tuple]] = {}
        for standalone in queries:
            planner = Planner(self.catalog, self.stats,
                              planner_options or PlannerOptions())
            plan = planner.plan(standalone.graph)
            ctx = plan.new_context()
            _stream, node = plan.single_output()
            results[standalone.name] = list(node.execute(ctx))
        return results


@dataclass
class Table1Row:
    """One row of the Table 1 comparison."""

    component: str
    sql_operations: int
    replicated: int
    xnf_operations: int


def table1_rows(queries: list[StandaloneQuery],
                xnf_per_element: dict[str, int]) -> list[Table1Row]:
    """Assemble Table 1: per-element SQL ops, replicated ops, XNF ops."""
    counts = [q.operations for q in queries]
    replicated = replicated_operations(counts)
    rows = []
    for standalone, duplicated in zip(queries, replicated):
        rows.append(Table1Row(
            component=standalone.name,
            sql_operations=standalone.operations.total,
            replicated=duplicated,
            xnf_operations=xnf_per_element.get(standalone.name, 0),
        ))
    return rows
