"""Navigational (query-per-parent) extraction: the Sect. 1 strawman.

"One straightforward way of extracting data with complex structure is to
follow the parent/child relationships: for each parent instance, execute
a query to get the children; repeat the same thing for each child ...
However, this style of data extraction leads to numerous queries ...
the number of fragments is in the order of number of instances of parent
components in the extracted data."

:class:`NavigationalExtractor` implements exactly that against the same
engine: the root component is fetched with one query, then for every
extracted parent tuple and every outgoing relationship one SQL query is
issued (with the parent's join values substituted as literals).  It
counts the queries it issues; the extraction benchmark compares this
count and wall-clock against the single set-oriented XNF extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XNFError
from repro.executor.runtime import QueryPipeline
from repro.qgm.builder import QGMBuilder
from repro.qgm.model import (QRef, RidRef, XNFBox,
                             XNFRelationship, replace_qrefs)
from repro.sql import ast
from repro.xnf.schema_graph import SchemaGraph


@dataclass
class NavigationalResult:
    """What the fragmented extraction produced, plus its cost."""

    components: dict[str, list[tuple]] = field(default_factory=dict)
    component_columns: dict[str, list[str]] = field(default_factory=dict)
    connections: dict[str, list[tuple]] = field(default_factory=dict)
    queries_issued: int = 0

    def total_tuples(self) -> int:
        return (sum(len(r) for r in self.components.values())
                + sum(len(c) for c in self.connections.values()))


class NavigationalExtractor:
    """Fragmented CO extraction over the relational engine."""

    def __init__(self, pipeline: QueryPipeline):
        self.pipeline = pipeline
        self.catalog = pipeline.catalog

    # ------------------------------------------------------------------
    def extract(self, query: ast.XNFQuery) -> NavigationalResult:
        builder = QGMBuilder(self.catalog)
        xnf = builder._build_xnf_box(query, view_name="navigational")
        schema = SchemaGraph.from_xnf_box(xnf)
        if schema.topological_order() is None:
            raise XNFError(
                "navigational extraction of recursive COs would not "
                "terminate without cycle detection; use the XNF path"
            )
        for relationship in xnf.relationships.values():
            if len(relationship.children) != 1:
                raise XNFError(
                    "navigational extraction supports binary "
                    "relationships only"
                )

        component_defs = {c.name.upper(): c.query
                          for c in query.components}
        result = NavigationalResult()
        seen: dict[str, set[tuple]] = {name: set()
                                       for name in xnf.components}
        frontier: dict[str, list[tuple]] = {name: []
                                            for name in xnf.components}

        # 1. One query per root component.
        for name, component in xnf.components.items():
            result.components[name] = []
            result.component_columns[name] = [
                c.name for c in component.box.head
                if not c.name.startswith("$")
            ]
            if component.is_root:
                root_result = self.pipeline.run_select(
                    component_defs[name])
                result.queries_issued += 1
                for row in root_result.rows:
                    if row not in seen[name]:
                        seen[name].add(row)
                        result.components[name].append(row)
                        frontier[name].append(row)
        for name in xnf.relationships:
            result.connections[name] = []

        # 2. Per parent instance, one query per outgoing relationship.
        while any(frontier.values()):
            next_frontier: dict[str, list[tuple]] = {
                name: [] for name in xnf.components
            }
            for parent_name, parents in frontier.items():
                for edge in schema.outgoing(parent_name):
                    relationship = xnf.relationships[edge.name]
                    child_name = relationship.children[0]
                    child_def = component_defs[child_name]
                    for parent_row in parents:
                        rows = self._children_of(
                            relationship, parent_row,
                            xnf, child_def, result
                        )
                        for row in rows:
                            result.connections[edge.name].append(
                                (parent_row, row)
                            )
                            if row not in seen[child_name]:
                                seen[child_name].add(row)
                                result.components[child_name].append(row)
                                next_frontier[child_name].append(row)
            frontier = next_frontier
        return result

    # ------------------------------------------------------------------
    def _children_of(self, relationship: XNFRelationship,
                     parent_row: tuple, xnf: XNFBox,
                     child_def: ast.SelectStatement,
                     result: NavigationalResult) -> list[tuple]:
        """Issue one child-fetch query with parent values inlined."""
        statement = self._child_query(relationship, parent_row, xnf,
                                      child_def)
        child_result = self.pipeline.run_select(statement)
        result.queries_issued += 1
        return child_result.rows

    def _child_query(self, relationship: XNFRelationship,
                     parent_row: tuple, xnf: XNFBox,
                     child_def: ast.SelectStatement
                     ) -> ast.SelectStatement:
        """``SELECT c.* FROM (child_def) c [, using...] WHERE pred``
        with the parent's column values substituted as literals."""
        child_name = relationship.children[0]
        child_alias = child_name.lower()
        parent_box = xnf.components[relationship.parent].box
        parent_positions = {
            column.name.upper(): index
            for index, column in enumerate(parent_box.head)
        }

        parent_q = relationship.parent_quantifier
        child_q = relationship.child_quantifiers[0]

        def mapping(leaf):
            if isinstance(leaf, QRef):
                if leaf.quantifier is parent_q:
                    position = parent_positions[leaf.column.upper()]
                    return ast.Literal(parent_row[position])
                if leaf.quantifier is child_q:
                    return ast.ColumnRef(child_alias, leaf.column)
                # USING-table reference: keep the binding name.
                return ast.ColumnRef(leaf.quantifier.name, leaf.column)
            if isinstance(leaf, RidRef):
                raise XNFError(
                    "navigational extraction cannot parameterize RIDs"
                )
            return leaf

        where = None
        if relationship.predicate is not None:
            where = replace_qrefs(relationship.predicate, mapping)

        from_items: list[ast.FromItem] = [
            ast.SubqueryRef(child_def, alias=child_alias)
        ]
        for using_q in relationship.using_quantifiers:
            from_items.append(ast.TableRef(using_q.box.label,
                                           alias=using_q.name))
        return ast.SelectStatement(
            select_items=(ast.SelectItem(ast.Star(child_alias)),),
            from_items=tuple(from_items),
            where=where,
            distinct=True,
        )
