"""Baselines the paper compares XNF against."""

from repro.baseline.navigational import (NavigationalExtractor,
                                         NavigationalResult)
from repro.baseline.single_component import (SingleComponentDerivation,
                                             StandaloneQuery, Table1Row,
                                             table1_rows)

__all__ = [
    "NavigationalExtractor", "NavigationalResult",
    "SingleComponentDerivation", "StandaloneQuery", "Table1Row",
    "table1_rows",
]
