"""Exception hierarchy for the XNF reproduction.

Each layer of the system raises its own exception family so callers can
distinguish, say, a parse error (user's fault) from an executor invariant
violation (our fault).  Everything derives from :class:`ReproError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StorageError(ReproError):
    """Problems in the storage layer (tables, rows, indexes)."""


class TypeCheckError(ReproError):
    """A value does not conform to its declared SQL type."""


class CatalogError(ReproError):
    """Unknown or duplicate catalog objects (tables, views, indexes)."""


class TransactionError(ReproError):
    """Misuse of the transaction API (commit without begin, etc.)."""


class InterfaceError(ReproError):
    """Operation on a closed handle (engine, session, or cursor), or a
    cursor misused against the DB-API-flavored contract."""


class LexerError(ReproError):
    """The tokenizer hit an unrecognized character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(ReproError):
    """The parser could not derive a statement from the token stream."""


class SemanticError(ReproError):
    """Name resolution or type checking failed while building QGM."""


class RewriteError(ReproError):
    """A rewrite rule produced or encountered an inconsistent QGM graph."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a QGM graph."""


class ExecutionError(ReproError):
    """Runtime failure while evaluating a query plan."""


class ParallelExecutionError(ExecutionError):
    """A parallel worker process failed, died, or timed out.

    Wraps the worker's original traceback text (when one exists) so the
    failure is debuggable from the coordinator side; raw
    multiprocessing errors never reach callers."""


class XNFError(ReproError):
    """Violations of XNF-specific semantics (schema graphs, reachability)."""


class CacheError(ReproError):
    """Misuse of the CO cache / workspace API."""


class UpdateError(ReproError):
    """An update through a view or cache cannot be applied."""


class NotUpdatableError(UpdateError):
    """The view or relationship is read-only per updatability analysis."""


class ViewUpdateError(UpdateError):
    """A DML statement against a view has no sound base-table
    translation, or its put-back failed the well-definedness check.

    Carries the offending QGM box label, the column (when one is at
    fault) and a reason string, so rejections always name *what* in the
    view's derivation blocks the write and *why*.
    """

    def __init__(self, message: str, box: str = "", column: str = "",
                 reason: str = ""):
        parts = [message]
        if column:
            parts.append(f"column {column!r}")
        if box:
            parts.append(f"box {box!r}")
        if reason:
            parts.append(reason)
        super().__init__(": ".join(parts))
        self.box = box
        self.column = column
        self.reason = reason
