"""Cardinality and cost estimation for plan optimization.

Statistics-driven where the statistics allow it, System R classic
where they don't.  Selectivities come from
:mod:`repro.storage.stats`:

* equality against a *known* constant uses the column's MCV list
  (exact frequency for heavy hitters) and spreads the remaining mass
  over the non-MCV distinct values;
* ranges and BETWEEN interpolate the column's equi-depth histogram;
* join equality uses the containment assumption — matching keys follow
  the smaller domain, so selectivity is 1/max(NDV);
* everything else (LIKE, unpeeked parameters, expressions over derived
  boxes) falls back to the classic fixed fractions.

Constants lifted by the auto-parameterizing plan cache are *peeked*
(``peek``: parameter index/name -> value, Oracle-style bind peeking),
so ad-hoc queries keep value-aware estimates even though the planner
sees ``Parameter`` nodes.  The model also prices physical operators
with page/CPU-style constants (one sequentially scanned row = 1 unit)
for access-path and join-method selection.

``legacy=True`` restores the pre-histogram heuristics (fixed default
selectivities, 1/NDV equality, no conjunct dedup) — the benchmark
baseline the new planner is measured against.
"""

from __future__ import annotations

from typing import Optional

from repro.qgm.model import (BaseBox, Box, GroupByBox, OuterJoinBox, QRef,
                             SelectBox, SetOpBox, quantifiers_in)
from repro.sql import ast
from repro.storage.stats import (UNKNOWN_VALUE, ColumnStats,
                                 StatisticsManager)

DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_OTHER_SELECTIVITY = 0.5
DEFAULT_DISTINCT = 10

# ----------------------------------------------------------------------
# Physical cost constants (relative units; one sequentially scanned
# row = 1).  Random access through an index costs more per row than a
# scan — our "pages" are Python list slots, so the spread is modest:
# an index scan beats a full scan below ~50% selectivity and loses
# above it, which is the decision boundary the access-path tests pin.
# ----------------------------------------------------------------------
SEQ_ROW_COST = 1.0
INDEX_PROBE_COST = 2.0
INDEX_ROW_COST = 2.0
HASH_BUILD_COST = 1.5
HASH_PROBE_COST = 1.0
NESTED_ROW_COST = 1.0

_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class CostModel:
    """Estimates row counts of QGM boxes, predicate selectivities, and
    physical operator costs."""

    def __init__(self, stats: StatisticsManager,
                 peek: Optional[dict] = None, legacy: bool = False):
        self.stats = stats
        #: Bind-peek values: parameter index (int) or upper-cased name
        #: -> constant, from the statement that triggered this compile.
        self.peek = peek or {}
        self.legacy = legacy
        self._box_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Box cardinalities
    # ------------------------------------------------------------------
    def box_rows(self, box: Box) -> float:
        cached = self._box_cache.get(box.box_id)
        if cached is not None:
            return cached
        rows = self._estimate(box)
        self._box_cache[box.box_id] = rows
        return rows

    def _estimate(self, box: Box) -> float:
        if isinstance(box, BaseBox):
            return float(max(len(box.table), 1))
        if isinstance(box, SelectBox):
            rows = 1.0
            for quantifier in box.foreach_quantifiers():
                rows *= self.box_rows(quantifier.box)
            rows *= self.conjunct_selectivity(box.predicates)
            for quantifier in box.body_quantifiers:
                if quantifier.qtype in ("E", "A"):
                    rows *= 0.5
            if box.distinct:
                rows *= 0.9
            if box.limit is not None:
                rows = min(rows, float(box.limit))
            return max(rows, 0.1)
        if isinstance(box, GroupByBox):
            input_rows = self.box_rows(box.input.box) if box.input else 1.0
            if not box.group_keys:
                return 1.0
            return max(input_rows / DEFAULT_DISTINCT, 1.0)
        if isinstance(box, SetOpBox):
            total = sum(self.box_rows(q.box) for q in box.inputs)
            return max(total * (0.9 if not box.all_rows else 1.0), 1.0)
        if isinstance(box, OuterJoinBox):
            left = self.box_rows(box.left.box)
            right = self.box_rows(box.right.box)
            joined = left * right * self.selectivity(box.condition) \
                if box.condition is not None else left * right
            return max(joined, left)
        return 1.0

    # ------------------------------------------------------------------
    # Selectivities
    # ------------------------------------------------------------------
    def conjunct_selectivity(self, predicates) -> float:
        """Combined selectivity of AND-ed predicates.

        Flattens nested ANDs and drops duplicate conjuncts before
        multiplying under independence: a predicate repeated verbatim
        (``x = 1 AND x = 1``) filters nothing the first copy didn't,
        so multiplying its selectivity in again would drive the
        estimate toward zero for no reason.  Duplicates are detected
        on a canonical key that resolves peeked parameters and
        normalizes commutative operand order.
        """
        flat: list[ast.Expression] = []
        for predicate in predicates:
            flat.extend(ast.conjuncts(predicate))
        if not self.legacy:
            seen: set = set()
            unique: list[ast.Expression] = []
            for predicate in flat:
                key = self._conjunct_key(predicate)
                if key in seen:
                    continue
                seen.add(key)
                unique.append(predicate)
            flat = unique
        selectivity = 1.0
        for predicate in flat:
            selectivity *= self.selectivity(predicate)
        return selectivity

    def _conjunct_key(self, expression: ast.Expression):
        """A canonical, hashable key for duplicate-conjunct detection."""
        if isinstance(expression, ast.BinaryOp):
            left = self._conjunct_key(expression.left)
            right = self._conjunct_key(expression.right)
            if expression.op in ("=", "<>", "AND", "OR", "+", "*"):
                left, right = sorted((left, right), key=str)
            return (expression.op, left, right)
        if isinstance(expression, ast.Parameter):
            value = self._peek_value(expression)
            if value is not UNKNOWN_VALUE:
                return ("const", type(value).__name__, repr(value))
            return ("param", expression.index, expression.name)
        if isinstance(expression, ast.Literal):
            value = expression.value
            return ("const", type(value).__name__, repr(value))
        return str(expression)

    def selectivity(self, predicate: ast.Expression) -> float:
        if isinstance(predicate, ast.BinaryOp):
            if predicate.op == "AND":
                return self.conjunct_selectivity([predicate])
            if predicate.op == "OR":
                left = self.selectivity(predicate.left)
                right = self.selectivity(predicate.right)
                return min(left + right, 1.0)
            if predicate.op == "=":
                return self._equality_selectivity(predicate)
            if predicate.op in ("<", "<=", ">", ">="):
                return self._range_selectivity(predicate)
            if predicate.op == "<>":
                return max(1.0 - self._equality_selectivity(predicate),
                           0.0)
        if isinstance(predicate, ast.Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(predicate, ast.Between):
            return self._between_selectivity(predicate)
        if isinstance(predicate, ast.IsNull):
            return self._is_null_selectivity(predicate)
        if isinstance(predicate, ast.InList):
            return self._in_list_selectivity(predicate)
        if isinstance(predicate, ast.Literal):
            if predicate.value is True:
                return 1.0
            if predicate.value in (False, None):
                return 0.0
        return DEFAULT_OTHER_SELECTIVITY

    # -- equality ------------------------------------------------------
    def _equality_selectivity(self, predicate: ast.BinaryOp) -> float:
        if self.legacy:
            return self._uniform_equality(predicate)
        for this, other in ((predicate.left, predicate.right),
                            (predicate.right, predicate.left)):
            this_stats = self._column_stats(this)
            if this_stats is None:
                continue
            column, cardinality = this_stats
            other_stats = self._column_stats(other)
            if other_stats is not None:
                # Join predicate: under containment, every key of the
                # smaller domain finds partners, so sel = 1/max(NDV)
                # (scaled by both sides' non-null fractions).
                other_column, _card = other_stats
                distinct = max(column.distinct, other_column.distinct, 1)
                sel = (1.0 - column.null_fraction) \
                    * (1.0 - other_column.null_fraction) / distinct
                return min(max(sel, 0.0), 1.0)
            value = self._constant_value(other)
            return min(column.selectivity_equals(cardinality, value), 1.0)
        return self._uniform_equality(predicate)

    def _uniform_equality(self, predicate: ast.BinaryOp) -> float:
        distinct = max(
            self._distinct_of(predicate.left),
            self._distinct_of(predicate.right),
        )
        return 1.0 / max(distinct, 1.0)

    def _distinct_of(self, expression: ast.Expression) -> float:
        if isinstance(expression, QRef):
            box = expression.quantifier.box
            if isinstance(box, BaseBox):
                stats = self.stats.stats_for(box.table.name)
                return float(stats.column(expression.column).distinct
                             or DEFAULT_DISTINCT)
            return float(DEFAULT_DISTINCT)
        if isinstance(expression, (ast.Literal, ast.Parameter)):
            # A parameter is a single (as yet unknown) constant: same
            # cardinality contribution as a literal.
            return 1.0
        return float(DEFAULT_DISTINCT)

    # -- ranges --------------------------------------------------------
    def _range_selectivity(self, predicate: ast.BinaryOp) -> float:
        if self.legacy:
            return DEFAULT_RANGE_SELECTIVITY
        for this, other, op in (
                (predicate.left, predicate.right, predicate.op),
                (predicate.right, predicate.left,
                 _FLIP_OP[predicate.op])):
            info = self._column_stats(this)
            if info is None:
                continue
            value = self._constant_value(other)
            if value is UNKNOWN_VALUE:
                continue
            estimated = info[0].selectivity_range(op, value)
            if estimated is not None:
                return estimated
        return DEFAULT_RANGE_SELECTIVITY

    def _between_selectivity(self, predicate: ast.Between) -> float:
        inner = DEFAULT_RANGE_SELECTIVITY
        if not self.legacy:
            info = self._column_stats(predicate.operand)
            low = self._constant_value(predicate.low)
            high = self._constant_value(predicate.high)
            if info is not None and low is not UNKNOWN_VALUE \
                    and high is not UNKNOWN_VALUE:
                below_high = info[0].selectivity_range("<=", high)
                below_low = info[0].selectivity_range("<", low)
                if below_high is not None and below_low is not None:
                    inner = max(below_high - below_low, 0.0)
        if predicate.negated:
            return max(1.0 - inner, 0.0)
        return inner

    def _is_null_selectivity(self, predicate: ast.IsNull) -> float:
        null_fraction = 0.1
        if not self.legacy:
            info = self._column_stats(predicate.operand)
            if info is not None:
                null_fraction = info[0].null_fraction
        if predicate.negated:
            return max(1.0 - null_fraction, 0.0)
        return min(null_fraction, 1.0) if not self.legacy else 0.1

    def _in_list_selectivity(self, predicate: ast.InList) -> float:
        if self.legacy:
            return min(len(predicate.items)
                       * DEFAULT_EQUALITY_SELECTIVITY, 1.0)
        info = self._column_stats(predicate.operand)
        if info is not None:
            column, cardinality = info
            total = 0.0
            for item in predicate.items:
                value = self._constant_value(item)
                total += column.selectivity_equals(cardinality, value)
            return min(total, 1.0)
        return min(len(predicate.items)
                   * DEFAULT_EQUALITY_SELECTIVITY, 1.0)

    # -- stats plumbing ------------------------------------------------
    def _column_stats(self, expression
                      ) -> Optional[tuple[ColumnStats, int]]:
        """(ColumnStats, table cardinality) when the expression is a
        direct column of a base table; None otherwise."""
        if isinstance(expression, QRef):
            box = expression.quantifier.box
            if isinstance(box, BaseBox):
                table_stats = self.stats.stats_for(box.table.name)
                return (table_stats.column(expression.column),
                        table_stats.cardinality)
        return None

    def _peek_value(self, parameter: ast.Parameter):
        if parameter.index is not None and parameter.index in self.peek:
            return self.peek[parameter.index]
        if parameter.name is not None:
            name = parameter.name.upper()
            if name in self.peek:
                return self.peek[name]
        return UNKNOWN_VALUE

    def _constant_value(self, expression: ast.Expression):
        """The constant an expression evaluates to, UNKNOWN_VALUE if
        not statically known.  Parameters resolve through the peek
        bindings (bind peeking)."""
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Parameter):
            return self._peek_value(expression)
        return UNKNOWN_VALUE

    # ------------------------------------------------------------------
    # Join/local cardinality helpers for the join ordering
    # ------------------------------------------------------------------
    def join_rows(self, left_rows: float, right_rows: float,
                  equi_predicates: list[ast.Expression]) -> float:
        rows = left_rows * right_rows \
            * self.conjunct_selectivity(equi_predicates)
        return max(rows, 0.1)

    def local_rows(self, box: Box,
                   local_predicates: list[ast.Expression]) -> float:
        rows = self.box_rows(box) \
            * self.conjunct_selectivity(local_predicates)
        return max(rows, 0.1)

    # ------------------------------------------------------------------
    # Physical operator costs (access-path and join-method selection)
    # ------------------------------------------------------------------
    def scan_cost(self, rows: float) -> float:
        """Full sequential scan of ``rows`` stored rows."""
        return max(rows, 1.0) * SEQ_ROW_COST

    def index_scan_cost(self, matching_rows: float) -> float:
        """One index descent plus a random fetch per matching row."""
        return INDEX_PROBE_COST + max(matching_rows, 0.0) * INDEX_ROW_COST

    def hash_join_cost(self, probe_rows: float, build_rows: float,
                       build_access_cost: float) -> float:
        """Materialize+hash the build side, then probe once per outer
        row."""
        return build_access_cost + build_rows * HASH_BUILD_COST \
            + max(probe_rows, 0.0) * HASH_PROBE_COST

    def inl_join_cost(self, outer_rows: float,
                      matched_rows: float) -> float:
        """Index nested-loop: one index probe per outer row plus a
        random fetch per matched inner row."""
        return max(outer_rows, 0.0) * INDEX_PROBE_COST \
            + max(matched_rows, 0.0) * INDEX_ROW_COST

    def nested_loop_cost(self, left_rows: float, right_rows: float,
                         right_access_cost: float) -> float:
        """Cross/nested-loop join: materialize the inner once, then
        pair every row combination."""
        return right_access_cost \
            + max(left_rows, 1.0) * max(right_rows, 1.0) * NESTED_ROW_COST

    def invalidate(self) -> None:
        self._box_cache.clear()


def quantifier_count(predicate: ast.Expression) -> int:
    return len(quantifiers_in(predicate))
