"""Cardinality and cost estimation for plan optimization.

A deliberately classic System R-style model: table cardinalities and
per-column distinct counts from :mod:`repro.storage.stats`, uniform
selectivity assumptions for predicates (1/distinct for equality, fixed
fractions for ranges and LIKE).  The estimates only need to rank
alternatives — join order and access paths — not predict runtimes.
"""

from __future__ import annotations

from repro.qgm.model import (BaseBox, Box, GroupByBox, OuterJoinBox, QRef,
                             SelectBox, SetOpBox, quantifiers_in)
from repro.sql import ast
from repro.storage.stats import StatisticsManager

DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_OTHER_SELECTIVITY = 0.5
DEFAULT_DISTINCT = 10


class CostModel:
    """Estimates row counts of QGM boxes and predicate selectivities."""

    def __init__(self, stats: StatisticsManager):
        self.stats = stats
        self._box_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Box cardinalities
    # ------------------------------------------------------------------
    def box_rows(self, box: Box) -> float:
        cached = self._box_cache.get(box.box_id)
        if cached is not None:
            return cached
        rows = self._estimate(box)
        self._box_cache[box.box_id] = rows
        return rows

    def _estimate(self, box: Box) -> float:
        if isinstance(box, BaseBox):
            return float(max(len(box.table), 1))
        if isinstance(box, SelectBox):
            rows = 1.0
            for quantifier in box.foreach_quantifiers():
                rows *= self.box_rows(quantifier.box)
            for predicate in box.predicates:
                rows *= self.selectivity(predicate)
            for quantifier in box.body_quantifiers:
                if quantifier.qtype in ("E", "A"):
                    rows *= 0.5
            if box.distinct:
                rows *= 0.9
            if box.limit is not None:
                rows = min(rows, float(box.limit))
            return max(rows, 0.1)
        if isinstance(box, GroupByBox):
            input_rows = self.box_rows(box.input.box) if box.input else 1.0
            if not box.group_keys:
                return 1.0
            return max(input_rows / DEFAULT_DISTINCT, 1.0)
        if isinstance(box, SetOpBox):
            total = sum(self.box_rows(q.box) for q in box.inputs)
            return max(total * (0.9 if not box.all_rows else 1.0), 1.0)
        if isinstance(box, OuterJoinBox):
            left = self.box_rows(box.left.box)
            right = self.box_rows(box.right.box)
            joined = left * right * self.selectivity(box.condition) \
                if box.condition is not None else left * right
            return max(joined, left)
        return 1.0

    # ------------------------------------------------------------------
    # Selectivities
    # ------------------------------------------------------------------
    def selectivity(self, predicate: ast.Expression) -> float:
        if isinstance(predicate, ast.BinaryOp):
            if predicate.op == "AND":
                return (self.selectivity(predicate.left)
                        * self.selectivity(predicate.right))
            if predicate.op == "OR":
                left = self.selectivity(predicate.left)
                right = self.selectivity(predicate.right)
                return min(left + right, 1.0)
            if predicate.op == "=":
                return self._equality_selectivity(predicate)
            if predicate.op in ("<", "<=", ">", ">="):
                return DEFAULT_RANGE_SELECTIVITY
            if predicate.op == "<>":
                return 1.0 - self._equality_selectivity(predicate)
        if isinstance(predicate, ast.Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(predicate, ast.Between):
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(predicate, ast.IsNull):
            return 0.1 if not predicate.negated else 0.9
        if isinstance(predicate, ast.InList):
            return min(
                len(predicate.items) * DEFAULT_EQUALITY_SELECTIVITY, 1.0
            )
        if isinstance(predicate, ast.Literal):
            if predicate.value is True:
                return 1.0
            if predicate.value in (False, None):
                return 0.0
        return DEFAULT_OTHER_SELECTIVITY

    def _equality_selectivity(self, predicate: ast.BinaryOp) -> float:
        distinct = max(
            self._distinct_of(predicate.left),
            self._distinct_of(predicate.right),
        )
        return 1.0 / max(distinct, 1.0)

    def _distinct_of(self, expression: ast.Expression) -> float:
        if isinstance(expression, QRef):
            box = expression.quantifier.box
            if isinstance(box, BaseBox):
                stats = self.stats.stats_for(box.table.name)
                return float(stats.column(expression.column).distinct
                             or DEFAULT_DISTINCT)
            return float(DEFAULT_DISTINCT)
        if isinstance(expression, (ast.Literal, ast.Parameter)):
            # A parameter is a single (as yet unknown) constant: same
            # cardinality contribution as a literal.
            return 1.0
        return float(DEFAULT_DISTINCT)

    # ------------------------------------------------------------------
    # Join helpers for the greedy ordering
    # ------------------------------------------------------------------
    def join_rows(self, left_rows: float, right_rows: float,
                  equi_predicates: list[ast.Expression]) -> float:
        rows = left_rows * right_rows
        for predicate in equi_predicates:
            rows *= self.selectivity(predicate)
        return max(rows, 0.1)

    def local_rows(self, box: Box,
                   local_predicates: list[ast.Expression]) -> float:
        rows = self.box_rows(box)
        for predicate in local_predicates:
            rows *= self.selectivity(predicate)
        return max(rows, 0.1)

    def invalidate(self) -> None:
        self._box_cache.clear()


def quantifier_count(predicate: ast.Expression) -> int:
    return len(quantifiers_in(predicate))
