"""Physical query execution plan (QEP) operators.

Sect. 3.1: "each QES routine interprets one QEP operator, which takes one
or more streams of tuples as input and produces one or more streams as
output.  The adopted execution strategy, called table queue evaluation,
is a demand driven, pipelined method".

Operators here are Python iterators over value tuples.  The
:class:`Spool` operator is the "table queue" that lets several consumers
share one evaluation of a common subexpression — the physical realization
of the paper's multi-query optimization (Sect. 5.1).

Two execution protocols coexist on every node:

* ``execute(ctx)`` — the original row-at-a-time Volcano iterator, kept
  as the reference semantics and as the fallback for operators without
  a native batch implementation.
* ``execute_batches(ctx, batch_size)`` — batch-at-a-time: yields lists
  of up to ``batch_size`` row tuples.  Hot operators (scans, filter,
  project, hash/index joins, aggregation, sort) implement it natively,
  trading per-row generator resumptions for per-batch comprehensions;
  everything else inherits the default, which chunks ``execute``.

Both protocols produce identical row streams (same rows, same order)
and bump the same instrumentation counters; batch mode merely bumps
them at batch granularity, so with ``batch_size=1`` even the lazy
counter trace is identical to row mode.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.expressions import BatchPredicate, CompiledExpression
from repro.storage.index import Index
from repro.storage.table import (Table, active_read_view,
                                 visible_index_lookup)

Row = tuple

#: Default number of rows per batch in batch-at-a-time execution.
DEFAULT_BATCH_SIZE = 1024


class ExecutionContext:
    """Per-execution state: statement parameters, spool
    materializations, scalar subquery results, and instrumentation
    counters used by the benchmarks."""

    def __init__(self) -> None:
        self.spool_cache: dict[int, list[Row]] = {}
        self.scalar_plans: dict[int, "PlanNode"] = {}
        self._scalar_values: dict[int, Any] = {}
        #: Correlated scalar results memoized per (qid, binding values).
        self._correlated_values: dict[int, dict[tuple, Any]] = {}
        #: Parameter bindings for this execution: positional markers are
        #: keyed by int index (0-based), named markers by upper-cased
        #: name.  Compiled :class:`~repro.sql.ast.Parameter` expressions
        #: resolve through :meth:`parameter` at run time, which is what
        #: lets one cached plan serve many literal bindings.
        self.parameters: dict = {}
        #: Parallel execution plumbing.  The coordinator's runtime
        #: stamps ``statement`` (the SQL AST, shipped to workers) and
        #: ``parallel_runtime`` (consulted by :class:`Gather`; None
        #: everywhere else, which makes Gather a passthrough).  Workers
        #: set ``scan_ranges`` (``id(scan node) -> morsel``) to restrict
        #: the driving scan, and ``join_build_cache`` (a dict only in
        #: worker contexts) to reuse hash-join builds across morsels.
        self.statement = None
        self.parallel_runtime = None
        self.scan_ranges: dict[int, tuple] = {}
        self.join_build_cache: Optional[dict] = None
        self.counters: dict[str, int] = {
            "rows_scanned": 0,
            "index_lookups": 0,
            "spool_materializations": 0,
            "spool_reads": 0,
            "rows_joined": 0,
        }

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def parameter(self, key) -> Any:
        try:
            return self.parameters[key]
        except KeyError:
            label = f":{key}" if isinstance(key, str) else f"?{key + 1}"
            raise ExecutionError(
                f"statement parameter {label} has no bound value"
            ) from None

    def bind_parameters(self, params) -> None:
        """Merge user-supplied parameter values into this context.

        A list/tuple binds positional ``?`` markers in order; a mapping
        binds ``:name`` markers case-insensitively (int keys are taken
        as positional indices).
        """
        if params is None:
            return
        if isinstance(params, dict):
            for key, value in params.items():
                if isinstance(key, str):
                    self.parameters[key.upper()] = value
                else:
                    self.parameters[int(key)] = value
        elif isinstance(params, (list, tuple)):
            for index, value in enumerate(params):
                self.parameters[index] = value
        else:
            raise ExecutionError(
                "parameters must be a sequence (positional) or a "
                f"mapping (named), not {type(params).__name__}"
            )

    def scalar_value(self, qid: int) -> Any:
        if qid in self._scalar_values:
            return self._scalar_values[qid]
        plan = self.scalar_plans.get(qid)
        if plan is None:
            raise ExecutionError(f"no scalar subquery registered for {qid}")
        rows = list(plan.execute(self))
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        value = rows[0][0] if rows else None
        self._scalar_values[qid] = value
        return value

    def correlated_scalar(self, qid: int, slots: tuple,
                          values: tuple) -> Any:
        """Evaluate a correlated scalar subquery for one outer binding.

        The subquery plan runs in a *child* context (fresh spool and
        scalar caches — a spool materialized under one binding must not
        leak into the next) with ``values`` bound to the correlation
        slots.  Results are memoized per distinct binding, so repeated
        outer values cost one execution; this is the nested re-execution
        the ScalarAggToJoin rewrite exists to avoid.
        """
        memo = self._correlated_values.setdefault(qid, {})
        if values in memo:
            return memo[values]
        plan = self.scalar_plans.get(qid)
        if plan is None:
            raise ExecutionError(f"no scalar subquery registered for {qid}")
        child = ExecutionContext()
        child.scalar_plans.update(self.scalar_plans)
        child.parameters.update(self.parameters)
        for slot, value in zip(slots, values):
            child.parameters[slot] = value
        rows = list(plan.execute(child))
        for counter, amount in child.counters.items():
            self.bump(counter, amount)
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        value = rows[0][0] if rows else None
        memo[values] = value
        return value

    def reset_volatile(self) -> None:
        """Clear per-run caches so a plan can be executed again."""
        self.spool_cache.clear()
        self._scalar_values.clear()
        self._correlated_values.clear()


class PlanNode:
    """Base class: produces a stream of tuples named by ``columns``."""

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)
        self.estimated_rows: float = 0.0
        #: Cumulative estimated cost (cost-model units) of producing
        #: this node's output; 0.0 when the planner didn't cost it.
        self.estimated_cost: float = 0.0

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        raise NotImplementedError

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        """Yield the same row stream as :meth:`execute`, in lists of at
        most ``batch_size`` rows.

        Default implementation: row-mode fallback that chunks
        ``execute``, so operators without a native batch path still
        compose with batch-mode parents.
        """
        batch: list[Row] = []
        append = batch.append
        for row in self.execute(ctx):
            append(row)
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def children(self) -> list["PlanNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        suffix = f"[~{int(self.estimated_rows)} rows]"
        if self.estimated_cost > 0:
            suffix = (f"[~{int(self.estimated_rows)} rows; "
                      f"cost ~{int(self.estimated_cost)}]")
        lines = ["  " * depth + f"{self.describe()} {suffix}"]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)


class SingleRow(PlanNode):
    """One empty row: the input of a SELECT without FROM."""

    def __init__(self) -> None:
        super().__init__([])
        self.estimated_rows = 1

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        yield ()

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        yield [()]


class TableScan(PlanNode):
    """Full scan of a heap table; optionally appends the RID column."""

    def __init__(self, table: Table, with_rid: bool = False):
        columns = list(table.column_names)
        if with_rid:
            columns.append("$RID$")
        super().__init__(columns)
        self.table = table
        self.with_rid = with_rid

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.with_rid:
            for rid, row in self.table.scan():
                ctx.bump("rows_scanned")
                yield row + (rid,)
        else:
            for row in self.table.rows():
                ctx.bump("rows_scanned")
                yield row

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        morsel = ctx.scan_ranges.get(id(self)) if ctx.scan_ranges else None
        if self.with_rid:
            for chunk in self.table.scan_batches(batch_size, morsel=morsel):
                ctx.bump("rows_scanned", len(chunk))
                yield [row + (rid,) for rid, row in chunk]
        else:
            for chunk in self.table.batches(batch_size, morsel=morsel):
                ctx.bump("rows_scanned", len(chunk))
                yield chunk

    def describe(self) -> str:
        return f"TableScan({self.table.name})"


class IndexScan(PlanNode):
    """Equality access through an index; key values computed at open."""

    def __init__(self, table: Table, index: Index,
                 key_fns: list[CompiledExpression], with_rid: bool = False):
        columns = list(table.column_names)
        if with_rid:
            columns.append("$RID$")
        super().__init__(columns)
        self.table = table
        self.index = index
        self.key_fns = key_fns
        self.with_rid = with_rid

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        key = tuple(fn((), ctx) for fn in self.key_fns)
        ctx.bump("index_lookups")
        for rid, row in visible_index_lookup(self.table, self.index, key):
            ctx.bump("rows_scanned")
            yield row + (rid,) if self.with_rid else row

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        key = tuple(fn((), ctx) for fn in self.key_fns)
        ctx.bump("index_lookups")
        batch: list[Row] = []
        for rid, row in visible_index_lookup(self.table, self.index, key):
            ctx.bump("rows_scanned")
            batch.append(row + (rid,) if self.with_rid else row)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def describe(self) -> str:
        return (f"IndexScan({self.table.name} via {self.index.name} "
                f"on {','.join(self.index.column_names)})")


class Filter(PlanNode):
    """Keeps rows whose predicate is exactly True.

    ``batch_predicate`` (a :data:`BatchPredicate` compiled from the same
    expression) filters whole batches with comprehension fast paths and
    conjunct short-circuiting; when absent, batch mode falls back to
    applying the row predicate over each batch.
    """

    def __init__(self, child: PlanNode, predicate: CompiledExpression,
                 description: str = "",
                 batch_predicate: Optional[BatchPredicate] = None):
        super().__init__(child.columns)
        self.child = child
        self.predicate = predicate
        self.description = description
        self.batch_predicate = batch_predicate

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.execute(ctx):
            if predicate(row, ctx) is True:
                yield row

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        batch_predicate = self.batch_predicate
        predicate = self.predicate
        for batch in self.child.execute_batches(ctx, batch_size):
            if batch_predicate is not None:
                kept = batch_predicate(batch, ctx)
            else:
                kept = [row for row in batch if predicate(row, ctx) is True]
            if kept:
                yield kept

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        suffix = f": {self.description}" if self.description else ""
        return f"Filter{suffix}"


class Project(PlanNode):
    def __init__(self, child: PlanNode, fns: list[CompiledExpression],
                 columns: Sequence[str]):
        super().__init__(columns)
        self.child = child
        self.fns = fns

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        fns = self.fns
        for row in self.child.execute(ctx):
            yield tuple(fn(row, ctx) for fn in fns)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        fns = self.fns
        if len(fns) == 1:
            fn = fns[0]
            for batch in self.child.execute_batches(ctx, batch_size):
                yield [(fn(row, ctx),) for row in batch]
            return
        for batch in self.child.execute_batches(ctx, batch_size):
            yield [tuple(fn(row, ctx) for fn in fns) for row in batch]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


class HashJoin(PlanNode):
    """Equi inner join: builds on the right input, probes with the left."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: list[CompiledExpression],
                 right_keys: list[CompiledExpression],
                 residual: Optional[CompiledExpression] = None):
        super().__init__(list(left.columns) + list(right.columns))
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        buckets: dict[tuple, list[Row]] = {}
        for row in self.right.execute(ctx):
            key = tuple(fn(row, ctx) for fn in self.right_keys)
            if None in key:
                continue
            buckets.setdefault(key, []).append(row)
        residual = self.residual
        for left_row in self.left.execute(ctx):
            key = tuple(fn(left_row, ctx) for fn in self.left_keys)
            if None in key:
                continue
            for right_row in buckets.get(key, ()):
                joined = left_row + right_row
                if residual is None or residual(joined, ctx) is True:
                    ctx.bump("rows_joined")
                    yield joined

    def _build_buckets(self, ctx: ExecutionContext,
                       batch_size: int) -> dict:
        """Build-side hash table.  Worker contexts install a
        ``join_build_cache`` so the (morsel-independent) build runs once
        per query, not once per morsel."""
        cache = ctx.join_build_cache
        if cache is not None:
            cached = cache.get(id(self))
            if cached is not None:
                return cached
        right_keys = self.right_keys
        single = len(right_keys) == 1
        buckets: dict[Any, list[Row]] = {}
        setdefault = buckets.setdefault
        if single:
            right_key = right_keys[0]
            for batch in self.right.execute_batches(ctx, batch_size):
                for row in batch:
                    key = right_key(row, ctx)
                    if key is None:
                        continue
                    setdefault(key, []).append(row)
        else:
            for batch in self.right.execute_batches(ctx, batch_size):
                for row in batch:
                    key = tuple(fn(row, ctx) for fn in right_keys)
                    if None in key:
                        continue
                    setdefault(key, []).append(row)
        if cache is not None:
            cache[id(self)] = buckets
        return buckets

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        single = len(self.right_keys) == 1
        buckets = self._build_buckets(ctx, batch_size)
        residual = self.residual
        left_keys = self.left_keys
        left_key = left_keys[0] if single else None
        get = buckets.get
        out: list[Row] = []
        for batch in self.left.execute_batches(ctx, batch_size):
            for left_row in batch:
                if single:
                    key = left_key(left_row, ctx)
                    if key is None:
                        continue
                else:
                    key = tuple(fn(left_row, ctx) for fn in left_keys)
                    if None in key:
                        continue
                matches = get(key)
                if not matches:
                    continue
                if residual is None:
                    out.extend(left_row + right_row
                               for right_row in matches)
                else:
                    for right_row in matches:
                        joined = left_row + right_row
                        if residual(joined, ctx) is True:
                            out.append(joined)
                while len(out) >= batch_size:
                    chunk = out[:batch_size]
                    del out[:batch_size]
                    ctx.bump("rows_joined", len(chunk))
                    yield chunk
        if out:
            ctx.bump("rows_joined", len(out))
            yield out

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return "HashJoin"


class IndexNestedLoopJoin(PlanNode):
    """For each outer row, probe a base-table index (the paper's
    'parent/child links' navigation, Sect. 5.1)."""

    def __init__(self, left: PlanNode, table: Table, index: Index,
                 key_fns: list[CompiledExpression], with_rid: bool = False,
                 residual: Optional[CompiledExpression] = None):
        inner_columns = list(table.column_names)
        if with_rid:
            inner_columns.append("$RID$")
        super().__init__(list(left.columns) + inner_columns)
        self.left = left
        self.table = table
        self.index = index
        self.key_fns = key_fns
        self.with_rid = with_rid
        self.residual = residual

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        residual = self.residual
        for left_row in self.left.execute(ctx):
            key = tuple(fn(left_row, ctx) for fn in self.key_fns)
            ctx.bump("index_lookups")
            for rid, inner in visible_index_lookup(self.table, self.index,
                                                   key):
                if self.with_rid:
                    inner = inner + (rid,)
                joined = left_row + inner
                if residual is None or residual(joined, ctx) is True:
                    ctx.bump("rows_joined")
                    yield joined

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        residual = self.residual
        key_fns = self.key_fns
        single = len(key_fns) == 1
        key_fn = key_fns[0] if single else None
        lookup = self.index.lookup
        fetch = self.table.fetch
        with_rid = self.with_rid
        out: list[Row] = []
        for batch in self.left.execute_batches(ctx, batch_size):
            # Re-checked per input batch: a streaming cursor's pulls may
            # install (or drop) a committed-state read view between
            # batches as foreign writers come and go.
            overlaid = active_read_view(self.table.name) is not None
            for left_row in batch:
                key = ((key_fn(left_row, ctx),) if single
                       else tuple(fn(left_row, ctx) for fn in key_fns))
                ctx.bump("index_lookups")
                if overlaid:
                    pairs = visible_index_lookup(self.table, self.index,
                                                 key)
                else:
                    pairs = [(rid, fetch(rid)) for rid in lookup(key)]
                for rid, inner in pairs:
                    if with_rid:
                        inner = inner + (rid,)
                    joined = left_row + inner
                    if residual is None or residual(joined, ctx) is True:
                        out.append(joined)
                while len(out) >= batch_size:
                    chunk = out[:batch_size]
                    del out[:batch_size]
                    ctx.bump("rows_joined", len(chunk))
                    yield chunk
        if out:
            ctx.bump("rows_joined", len(out))
            yield out

    def children(self) -> list[PlanNode]:
        return [self.left]

    def describe(self) -> str:
        return (f"IndexNLJoin({self.table.name} via {self.index.name})")


class NestedLoopJoin(PlanNode):
    """General inner join; the right input is materialized once."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 condition: Optional[CompiledExpression] = None):
        super().__init__(list(left.columns) + list(right.columns))
        self.left = left
        self.right = right
        self.condition = condition

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        right_rows = list(self.right.execute(ctx))
        condition = self.condition
        for left_row in self.left.execute(ctx):
            for right_row in right_rows:
                joined = left_row + right_row
                if condition is None or condition(joined, ctx) is True:
                    ctx.bump("rows_joined")
                    yield joined

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return "NestedLoopJoin" if self.condition else "CrossJoin"


class LeftOuterJoin(PlanNode):
    """LEFT OUTER JOIN; hash-based when keys given, else nested loops."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: list[CompiledExpression],
                 right_keys: list[CompiledExpression],
                 residual: Optional[CompiledExpression] = None):
        super().__init__(list(left.columns) + list(right.columns))
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self._pad = (None,) * len(right.columns)

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        residual = self.residual
        if self.left_keys:
            buckets: dict[tuple, list[Row]] = {}
            for row in self.right.execute(ctx):
                key = tuple(fn(row, ctx) for fn in self.right_keys)
                if None in key:
                    continue
                buckets.setdefault(key, []).append(row)
            for left_row in self.left.execute(ctx):
                key = tuple(fn(left_row, ctx) for fn in self.left_keys)
                matched = False
                for right_row in buckets.get(key, ()) if None not in key \
                        else ():
                    joined = left_row + right_row
                    if residual is None or residual(joined, ctx) is True:
                        matched = True
                        yield joined
                if not matched:
                    yield left_row + self._pad
            return
        right_rows = list(self.right.execute(ctx))
        for left_row in self.left.execute(ctx):
            matched = False
            for right_row in right_rows:
                joined = left_row + right_row
                if residual is None or residual(joined, ctx) is True:
                    matched = True
                    yield joined
            if not matched:
                yield left_row + self._pad

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return "LeftOuterJoin"


class SemiJoin(PlanNode):
    """Semi/anti join implementing E and A quantifiers.

    Emits outer rows that have (semi) / lack (anti) a matching inner
    row.  ``null_poison`` gives NOT IN semantics: an UNKNOWN comparison
    rejects the outer row.
    """

    def __init__(self, outer: PlanNode, inner: PlanNode,
                 outer_keys: list[CompiledExpression],
                 inner_keys: list[CompiledExpression],
                 residual: Optional[CompiledExpression] = None,
                 anti: bool = False, null_poison: bool = False):
        super().__init__(outer.columns)
        self.outer = outer
        self.inner = inner
        self.outer_keys = outer_keys
        self.inner_keys = inner_keys
        self.residual = residual
        self.anti = anti
        self.null_poison = null_poison

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        inner_rows = list(self.inner.execute(ctx))
        if self.outer_keys and self.residual is None:
            yield from self._hash_path(ctx, inner_rows)
        else:
            yield from self._scan_path(ctx, inner_rows)

    def _hash_path(self, ctx: ExecutionContext,
                   inner_rows: list[Row]) -> Iterator[Row]:
        keys: set[tuple] = set()
        inner_has_null = False
        for row in inner_rows:
            key = tuple(fn(row, ctx) for fn in self.inner_keys)
            if None in key:
                inner_has_null = True
            else:
                keys.add(key)
        for outer_row in self.outer.execute(ctx):
            key = tuple(fn(outer_row, ctx) for fn in self.outer_keys)
            if self.anti:
                if not inner_rows:
                    yield outer_row
                    continue
                if self.null_poison and (None in key or inner_has_null):
                    continue
                if None in key:
                    yield outer_row  # NOT EXISTS: NULL key never matches
                    continue
                if key not in keys:
                    yield outer_row
            else:
                if None in key:
                    continue
                if key in keys:
                    yield outer_row

    def _scan_path(self, ctx: ExecutionContext,
                   inner_rows: list[Row]) -> Iterator[Row]:
        residual = self.residual
        for outer_row in self.outer.execute(ctx):
            matched = False
            unknown = False
            for inner_row in inner_rows:
                joined = outer_row + inner_row
                verdict = True
                if self.outer_keys:
                    for okey, ikey in zip(self.outer_keys, self.inner_keys):
                        left = okey(outer_row, ctx)
                        right = ikey(inner_row, ctx)
                        if left is None or right is None:
                            verdict = None
                            break
                        if left != right:
                            verdict = False
                            break
                if verdict is True and residual is not None:
                    verdict = residual(joined, ctx)
                if verdict is True:
                    matched = True
                    break
                if verdict is None:
                    unknown = True
            if self.anti:
                if matched:
                    continue
                if self.null_poison and unknown:
                    continue
                yield outer_row
            elif matched:
                yield outer_row

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner]

    def describe(self) -> str:
        kind = "AntiJoin" if self.anti else "SemiJoin"
        method = "hash" if self.outer_keys and self.residual is None else "nl"
        return f"{kind}[{method}]"


class Dedup(PlanNode):
    def __init__(self, child: PlanNode):
        super().__init__(child.columns)
        self.child = child

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child.execute(ctx):
            if row not in seen:
                seen.add(row)
                yield row

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        seen: set[Row] = set()
        add = seen.add
        for batch in self.child.execute_batches(ctx, batch_size):
            fresh = []
            for row in batch:
                if row not in seen:
                    add(row)
                    fresh.append(row)
            if fresh:
                yield fresh

    def children(self) -> list[PlanNode]:
        return [self.child]


class _SortKey:
    """NULLs-last (ascending) total order for heterogeneous values."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


class Sort(PlanNode):
    def __init__(self, child: PlanNode,
                 key_fns: list[CompiledExpression],
                 descending: list[bool]):
        super().__init__(child.columns)
        self.child = child
        self.key_fns = key_fns
        self.descending = descending

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        rows = list(self.child.execute(ctx))
        yield from self._sorted(rows, ctx)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        rows: list[Row] = []
        for batch in self.child.execute_batches(ctx, batch_size):
            rows.extend(batch)
        rows = self._sorted(rows, ctx)
        for start in range(0, len(rows), batch_size):
            yield rows[start:start + batch_size]

    def _sorted(self, rows: list[Row], ctx: ExecutionContext) -> list[Row]:
        # Stable sorts applied from the least-significant key backwards.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda row: _SortKey(fn(row, ctx)), reverse=desc)
        return rows

    def children(self) -> list[PlanNode]:
        return [self.child]


class Limit(PlanNode):
    def __init__(self, child: PlanNode, limit: Optional[int],
                 offset: Optional[int]):
        super().__init__(child.columns)
        self.child = child
        self.limit = limit
        self.offset = offset or 0

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        limit = self.limit
        if limit is not None and limit <= 0:
            return
        produced = 0
        skipped = 0
        for row in self.child.execute(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            produced += 1
            yield row
            # Stop eagerly: never pull a row beyond the limit.
            if limit is not None and produced >= limit:
                return

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        limit = self.limit
        if limit is not None and limit <= 0:
            return
        to_skip = self.offset
        remaining = limit
        for batch in self.child.execute_batches(ctx, batch_size):
            if to_skip:
                if len(batch) <= to_skip:
                    to_skip -= len(batch)
                    continue
                batch = batch[to_skip:]
                to_skip = 0
            if remaining is None:
                yield batch
                continue
            if len(batch) > remaining:
                batch = batch[:remaining]
            remaining -= len(batch)
            yield batch
            if remaining == 0:
                return

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


class UnionAll(PlanNode):
    def __init__(self, inputs: list[PlanNode]):
        super().__init__(inputs[0].columns)
        self.inputs = inputs

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for child in self.inputs:
            yield from child.execute(ctx)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        for child in self.inputs:
            yield from child.execute_batches(ctx, batch_size)

    def children(self) -> list[PlanNode]:
        return list(self.inputs)


class SetOperation(PlanNode):
    """UNION / INTERSECT / EXCEPT with optional ALL (bag) semantics."""

    def __init__(self, operator: str, all_rows: bool, left: PlanNode,
                 right: PlanNode):
        super().__init__(left.columns)
        self.operator = operator
        self.all_rows = all_rows
        self.left = left
        self.right = right

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.operator == "UNION":
            if self.all_rows:
                yield from self.left.execute(ctx)
                yield from self.right.execute(ctx)
                return
            seen: set[Row] = set()
            for child in (self.left, self.right):
                for row in child.execute(ctx):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        right_counts: dict[Row, int] = {}
        for row in self.right.execute(ctx):
            right_counts[row] = right_counts.get(row, 0) + 1
        if self.operator == "INTERSECT":
            emitted: dict[Row, int] = {}
            for row in self.left.execute(ctx):
                available = right_counts.get(row, 0)
                count = emitted.get(row, 0)
                if self.all_rows:
                    if count < available:
                        emitted[row] = count + 1
                        yield row
                elif available and count == 0:
                    emitted[row] = 1
                    yield row
            return
        if self.operator == "EXCEPT":
            emitted: dict[Row, int] = {}
            for row in self.left.execute(ctx):
                emitted[row] = emitted.get(row, 0) + 1
                if self.all_rows:
                    # EXCEPT ALL: occurrences beyond those matched on the
                    # right survive.
                    if emitted[row] > right_counts.get(row, 0):
                        yield row
                else:
                    if row not in right_counts and emitted[row] == 1:
                        yield row
            return
        raise ExecutionError(f"unknown set operator {self.operator!r}")

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"{self.operator}{' ALL' if self.all_rows else ''}"


class Aggregate(PlanNode):
    """Hash aggregation.  ``specs`` are (function, argument-fn, distinct)
    triples; a None argument means COUNT(*)."""

    def __init__(self, child: PlanNode,
                 key_fns: list[CompiledExpression],
                 specs: list[tuple[str, Optional[CompiledExpression], bool]],
                 columns: Sequence[str]):
        super().__init__(columns)
        self.child = child
        self.key_fns = key_fns
        self.specs = specs

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row in self.child.execute(ctx):
            self._absorb(row, ctx, groups, order)
        yield from self._results(groups, order)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        absorb = self._absorb
        for batch in self.child.execute_batches(ctx, batch_size):
            for row in batch:
                absorb(row, ctx, groups, order)
        results = list(self._results(groups, order))
        for start in range(0, len(results), batch_size):
            yield results[start:start + batch_size]

    def _absorb(self, row: Row, ctx: ExecutionContext,
                groups: dict[tuple, list], order: list[tuple]) -> None:
        key = tuple(fn(row, ctx) for fn in self.key_fns)
        state = groups.get(key)
        if state is None:
            state = [self._initial_state(spec) for spec in self.specs]
            groups[key] = state
            order.append(key)
        for accumulator, (function, argument, distinct) in zip(
                state, self.specs):
            value = argument(row, ctx) if argument is not None else 1
            self._accumulate(accumulator, function, value,
                             argument is None, distinct)

    def _results(self, groups: dict[tuple, list],
                 order: list[tuple]) -> Iterator[Row]:
        if not groups and not self.key_fns:
            # Global aggregate over an empty input: one default row.
            state = [self._initial_state(spec) for spec in self.specs]
            yield tuple(self._finalize(acc, spec[0])
                        for acc, spec in zip(state, self.specs))
            return
        for key in order:
            state = groups[key]
            aggregates = tuple(
                self._finalize(acc, spec[0])
                for acc, spec in zip(state, self.specs)
            )
            yield key + aggregates

    def partial_states(self, ctx: ExecutionContext,
                       batch_size: int) -> list[tuple[tuple, list]]:
        """Absorb the child's rows into per-group accumulator states
        *without* finalizing: the worker half of two-phase parallel
        aggregation.  States are plain dicts/sets, so they pickle."""
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        absorb = self._absorb
        for batch in self.child.execute_batches(ctx, batch_size):
            for row in batch:
                absorb(row, ctx, groups, order)
        return [(key, groups[key]) for key in order]

    @staticmethod
    def merge_state(into: dict, other: dict) -> None:
        """Fold one partial accumulator into another (the coordinator
        half).  DISTINCT merges by set difference so values seen by
        several workers count once."""
        if into["distinct"] is not None:
            fresh = other["distinct"] - into["distinct"]
            into["distinct"] |= fresh
            for value in fresh:
                into["count"] += 1
                into["sum"] = value if into["sum"] is None \
                    else into["sum"] + value
                if into["min"] is None or value < into["min"]:
                    into["min"] = value
                if into["max"] is None or value > into["max"]:
                    into["max"] = value
            return
        into["count"] += other["count"]
        if other["sum"] is not None:
            into["sum"] = other["sum"] if into["sum"] is None \
                else into["sum"] + other["sum"]
        if other["min"] is not None and (into["min"] is None
                                         or other["min"] < into["min"]):
            into["min"] = other["min"]
        if other["max"] is not None and (into["max"] is None
                                         or other["max"] > into["max"]):
            into["max"] = other["max"]

    @staticmethod
    def _initial_state(spec) -> dict:
        _function, _argument, distinct = spec
        return {"count": 0, "sum": None, "min": None, "max": None,
                "distinct": set() if distinct else None}

    @staticmethod
    def _accumulate(state: dict, function: str, value, is_star: bool,
                    distinct: bool) -> None:
        if is_star:
            state["count"] += 1
            return
        if value is None:
            return
        if distinct:
            if value in state["distinct"]:
                return
            state["distinct"].add(value)
        state["count"] += 1
        state["sum"] = value if state["sum"] is None else state["sum"] + value
        if state["min"] is None or value < state["min"]:
            state["min"] = value
        if state["max"] is None or value > state["max"]:
            state["max"] = value

    @staticmethod
    def _finalize(state: dict, function: str):
        if function == "COUNT":
            return state["count"]
        if function == "SUM":
            return state["sum"]
        if function == "AVG":
            if state["count"] == 0:
                return None
            return state["sum"] / state["count"]
        if function == "MIN":
            return state["min"]
        if function == "MAX":
            return state["max"]
        raise ExecutionError(f"unknown aggregate {function!r}")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        functions = ", ".join(spec[0] for spec in self.specs)
        return f"Aggregate[{functions}]"


class Spool(PlanNode):
    """Materialize once per execution, replay for every consumer.

    This is the table-queue realization of common-subexpression sharing:
    the XNF multi-output plans reference component derivations through
    spools so each is computed exactly once (Sect. 4.2, Fig. 5b).
    """

    _counter = 0

    def __init__(self, child: PlanNode, label: str = ""):
        super().__init__(child.columns)
        self.child = child
        Spool._counter += 1
        self.spool_id = Spool._counter
        self.label = label

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        cached = ctx.spool_cache.get(self.spool_id)
        if cached is None:
            cached = list(self.child.execute(ctx))
            ctx.spool_cache[self.spool_id] = cached
            ctx.bump("spool_materializations")
        else:
            ctx.bump("spool_reads")
        return iter(cached)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        cached = ctx.spool_cache.get(self.spool_id)
        if cached is None:
            cached = []
            for batch in self.child.execute_batches(ctx, batch_size):
                cached.extend(batch)
            ctx.spool_cache[self.spool_id] = cached
            ctx.bump("spool_materializations")
        else:
            ctx.bump("spool_reads")
        for start in range(0, len(cached), batch_size):
            yield cached[start:start + batch_size]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        suffix = f" '{self.label}'" if self.label else ""
        return f"Spool#{self.spool_id}{suffix}"


class Materialized(PlanNode):
    """A constant relation (used by tests and the cache write-back)."""

    def __init__(self, columns: Sequence[str], rows: list[Row]):
        super().__init__(columns)
        self.rows = rows
        self.estimated_rows = len(rows)

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        return iter(self.rows)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        rows = self.rows
        for start in range(0, len(rows), batch_size):
            yield rows[start:start + batch_size]


# ----------------------------------------------------------------------
# Parallel execution (morsel-driven; see executor/parallel.py)
# ----------------------------------------------------------------------
class Exchange(PlanNode):
    """Marks the driving scan of a parallelizable plan.

    Everything below this point runs morsel-wise in worker processes
    when the Gather above engages; in serial execution (and inside the
    workers themselves) it is a pure passthrough.  Exists so ``EXPLAIN``
    shows where the plan is cut."""

    def __init__(self, child: PlanNode):
        super().__init__(child.columns)
        self.child = child
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        return self.child.execute(ctx)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        return self.child.execute_batches(ctx, batch_size)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return "Exchange"


class Gather(PlanNode):
    """Root of a parallelizable plan: fans partition-wise morsels out to
    the engine's worker pool and merges the partial results.

    The planner wraps eligible plans when ``parallel_degree > 1``; the
    decision to actually go parallel is made per *execution* by the
    runtime installed in the context (the coordinator's).  With no
    runtime installed — serial engines, worker processes, row-mode,
    scalar subquery child contexts — or when the runtime declines
    (active writer, tiny table, pool failure), execution falls through
    to the child, bit-identical to the serial plan."""

    def __init__(self, child: PlanNode, degree: int):
        super().__init__(child.columns)
        self.child = child
        self.degree = degree
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        return self.child.execute(ctx)

    def execute_batches(self, ctx: ExecutionContext,
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[list[Row]]:
        runtime = ctx.parallel_runtime
        if runtime is not None:
            batches = runtime.execute_gather(self, ctx, batch_size)
            if batches is not None:
                yield from batches
                return
        yield from self.child.execute_batches(ctx, batch_size)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Gather(degree={self.degree})"
