"""Plan optimization: QGM -> physical plan (QEP).

Implements the plan-optimization and plan-refinement stages of Fig. 2:
cost-compared access path selection (table scan vs. index scan vs.
index-nested-loop through "parent/child links"), join-order
enumeration — exhaustive left-deep dynamic programming up to
``dp_join_threshold`` relations, greedy cost-ordered beyond it —
semi/anti-join realization of E/A quantifiers, and spooling of shared
boxes so common subexpressions are evaluated once (Sect. 5.1's
multi-query optimization).

``PlannerOptions`` exposes the ablation levers the benchmarks sweep:
``use_indexes``, ``share_common_subexpressions``,
``join_enumeration``/``cost_based_access_paths``/``legacy_cost_model``
(the pre-statistics planner, kept as the A/B baseline), and
``join_order_hook`` — the debug hook the plan-equivalence differential
harness uses to force every enumerated join order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Optional, Sequence

from repro.errors import PlanningError
from repro.executor.expressions import (RID_COLUMN, CompiledExpression,
                                        ExpressionCompiler, Layout)
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import (DEFAULT_BATCH_SIZE, Aggregate, Dedup,
                                  ExecutionContext, Filter, HashJoin,
                                  IndexNestedLoopJoin, IndexScan,
                                  LeftOuterJoin, Limit, NestedLoopJoin,
                                  PlanNode, Project, SemiJoin, SetOperation,
                                  SingleRow, Sort, Spool, TableScan)
from repro.qgm.model import (BaseBox, Box, GroupByBox, OuterJoinBox,
                             OutputStream, QGMGraph, QRef, Quantifier, RidRef,
                             SelectBox, SetOpBox, XNFBox, replace_qrefs,
                             rewrite_box_expressions, subgraph_outer_leaves,
                             walk_qgm_expression)
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager


@dataclass
class PlannerOptions:
    """Knobs for the optimizer; the benchmarks ablate these."""

    use_indexes: bool = True
    share_common_subexpressions: bool = True
    #: Batch-at-a-time execution (default on).  When off, plans run
    #: through the original row-at-a-time Volcano iterators.
    batch_execution: bool = True
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Total rule firings the rewrite fixpoint may spend on one graph
    #: before raising RewriteError (naming the last-fired rule and the
    #: per-rule counts).  Raise it for pathologically deep view stacks.
    rewrite_budget: int = 10_000
    #: Join-order search strategy: "auto" runs exhaustive left-deep DP
    #: up to ``dp_join_threshold`` relations and falls back to greedy
    #: beyond it; "dp" and "greedy" force one strategy.
    join_enumeration: str = "auto"
    dp_join_threshold: int = 8
    #: Cost-compare full scan vs index scan (and hash join vs index
    #: nested-loop).  When False the planner keeps the legacy
    #: always-prefer-index heuristic.
    cost_based_access_paths: bool = True
    #: Estimate with the pre-histogram fixed selectivities (the A/B
    #: benchmark baseline).
    legacy_cost_model: bool = False
    #: Debug-only hook for the plan-equivalence harness: called with
    #: the quantifier names of each join fan; returning a permutation
    #: forces that order, returning None keeps the cost-based choice.
    #: Not part of the plan-cache options signature — combine with an
    #: uncached compile.
    join_order_hook: Optional[
        Callable[[list[str]], Optional[Sequence[str]]]] = None
    #: Morsel-driven multi-process execution.  ``parallel_degree > 1``
    #: makes the planner wrap decomposable SELECT plans in a Gather
    #: node; the engine's worker pool then fans morsels of the driving
    #: scan out to that many workers.  ``1`` (the default) produces
    #: exactly the serial plans.
    parallel_degree: int = 1
    #: Driving tables with fewer (estimated) rows than this execute
    #: serially even under a Gather — fan-out overhead would dominate.
    parallel_row_threshold: int = 2048


@dataclass(frozen=True)
class JoinOrderRecord:
    """One join fan's chosen order, surfaced by ``db.explain()``."""

    #: Quantifier names, outermost (driving) source first.
    names: tuple
    #: How the order was chosen: "dp" | "greedy" | "forced".
    method: str
    estimated_rows: float
    estimated_cost: float

    def render(self) -> str:
        return (f"{' -> '.join(self.names)} [{self.method}; "
                f"~{self.estimated_rows:.0f} rows, "
                f"cost ~{self.estimated_cost:.0f}]")


@dataclass
class ExecutablePlan:
    """The finished QEP: one plan per TOP output stream."""

    outputs: list[tuple[OutputStream, PlanNode]]
    scalar_plans: dict[int, PlanNode] = field(default_factory=dict)
    #: Execution-mode knobs, stamped from :class:`PlannerOptions`.
    batch_execution: bool = True
    batch_size: int = DEFAULT_BATCH_SIZE
    #: One record per multi-source join fan the planner ordered
    #: (including fans inside views/subqueries), in planning order.
    join_orders: list[JoinOrderRecord] = field(default_factory=list)

    def new_context(self, params=None) -> ExecutionContext:
        ctx = ExecutionContext()
        ctx.scalar_plans.update(self.scalar_plans)
        ctx.bind_parameters(params)
        return ctx

    def single_output(self) -> tuple[OutputStream, PlanNode]:
        if len(self.outputs) != 1:
            raise PlanningError(
                f"expected a single output stream, found {len(self.outputs)}"
            )
        return self.outputs[0]

    def run_node(self, node: PlanNode,
                 ctx: ExecutionContext) -> list[tuple]:
        """Materialize one output node under the plan's execution mode."""
        if self.batch_execution:
            batch_size = self.batch_size if self.batch_size >= 1 else 1
            rows: list[tuple] = []
            for batch in node.execute_batches(ctx, batch_size):
                rows.extend(batch)
            return rows
        return list(node.execute(ctx))

    def execute(self, ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        """Run the single output stream to completion."""
        if ctx is None:
            ctx = self.new_context()
        _stream, node = self.single_output()
        return self.run_node(node, ctx)

    def explain(self) -> str:
        parts = []
        for stream, node in self.outputs:
            parts.append(f"output {stream.name}:")
            parts.append(node.explain(1))
        return "\n".join(parts)


@dataclass
class _Source:
    """One joinable input of a select box during join enumeration."""

    quantifier: Quantifier
    node: PlanNode
    layout: Layout
    rows: float
    #: True when the node is a bare TableScan (eligible for replacement
    #: by an index-nested-loop probe under the legacy access-path rule).
    bare_scan: bool = False
    with_rid: bool = False
    #: Estimated cost of producing this source once (scan or index
    #: scan plus filters) — the DP enumeration's leaf costs.
    access_cost: float = 0.0
    #: For base sources planned as (possibly filtered) scans: the
    #: underlying table, so an index-nested-loop probe can replace the
    #: scan with the local filters folded into the probe residual.
    #: None when a constant-equality index scan was already chosen.
    table: Optional[object] = None
    #: The local predicates applied as filters over the scan (become
    #: the probe residual on index-nested-loop replacement).
    filter_preds: list = field(default_factory=list)


def _filter_node(node: PlanNode, compiler: ExpressionCompiler,
                 predicate: ast.Expression) -> Filter:
    """A Filter carrying both row and batch forms of the predicate.

    The row form uses the condition compiler so both forms short-circuit
    conjuncts identically (same kept rows AND same runtime errors).
    """
    return Filter(node, compiler.compile_condition(predicate),
                  str(predicate),
                  batch_predicate=compiler.compile_filter(predicate))


def _referenced_quantifiers(expression: ast.Expression) -> set[Quantifier]:
    found: set[Quantifier] = set()
    for node in walk_qgm_expression(expression):
        if isinstance(node, QRef) or isinstance(node, RidRef):
            found.add(node.quantifier)
    return found


class Planner:
    """Compiles a (rewritten, NF) QGM graph into an executable plan."""

    def __init__(self, catalog: Catalog, stats: StatisticsManager,
                 options: Optional[PlannerOptions] = None,
                 peek: Optional[dict] = None):
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self.cost = CostModel(stats, peek=peek,
                              legacy=self.options.legacy_cost_model)
        #: Join-order decisions made while planning (stamped onto the
        #: finished ExecutablePlan for EXPLAIN).
        self.join_orders: list[JoinOrderRecord] = []
        self._memo: dict[int, PlanNode] = {}
        self._shared: set[int] = set()
        self.scalar_plans: dict[int, PlanNode] = {}
        #: Correlated scalar quantifier -> the outer quantifiers its
        #: subquery reads; predicates using the scalar must wait until
        #: these are bound in the join order.
        self._scalar_deps: dict[int, set[Quantifier]] = {}
        self._correlation_slots = 0

    # ------------------------------------------------------------------
    def plan(self, graph: QGMGraph) -> ExecutablePlan:
        self.cost.invalidate()
        self._memo.clear()
        self.scalar_plans.clear()
        self._scalar_deps.clear()
        self.join_orders.clear()
        counts = graph.reference_counts()
        self._shared = {box_id for box_id, count in counts.items()
                        if count > 1}
        outputs: list[tuple[OutputStream, PlanNode]] = []
        for stream in graph.top.outputs:
            outputs.append((stream, self.plan_box(stream.box)))
        if (self.options.parallel_degree > 1
                and self.options.batch_execution
                and len(outputs) == 1 and not self.scalar_plans):
            from repro.executor.parallel import wrap_parallel

            wrapped = wrap_parallel(outputs[0][1],
                                    self.options.parallel_degree)
            if wrapped is not None:
                outputs[0] = (outputs[0][0], wrapped)
        return ExecutablePlan(outputs, dict(self.scalar_plans),
                              batch_execution=self.options.batch_execution,
                              batch_size=self.options.batch_size,
                              join_orders=list(self.join_orders))

    def plan_box(self, box: Box) -> PlanNode:
        memoized = self._memo.get(box.box_id)
        if memoized is not None:
            return memoized
        node = self._plan_fresh(box)
        node.estimated_rows = self.cost.box_rows(box)
        if (box.box_id in self._shared
                and self.options.share_common_subexpressions
                and not isinstance(box, BaseBox)):
            node = Spool(node, label=box.label)
            node.estimated_rows = self.cost.box_rows(box)
            self._memo[box.box_id] = node
        return node

    def _plan_fresh(self, box: Box) -> PlanNode:
        if isinstance(box, BaseBox):
            return TableScan(box.table)
        if isinstance(box, SelectBox):
            return self._plan_select(box)
        if isinstance(box, GroupByBox):
            return self._plan_groupby(box)
        if isinstance(box, SetOpBox):
            return self._plan_setop(box)
        if isinstance(box, OuterJoinBox):
            return self._plan_outer_join(box)
        if isinstance(box, XNFBox):
            raise PlanningError(
                "XNF operator reached the planner; run XNF semantic "
                "rewrite first"
            )
        raise PlanningError(f"cannot plan box kind {box.kind!r}")

    # ------------------------------------------------------------------
    # SELECT boxes
    # ------------------------------------------------------------------
    def _plan_select(self, box: SelectBox) -> PlanNode:
        foreach = [q for q in box.body_quantifiers if q.qtype == "F"]
        existential = [q for q in box.body_quantifiers if q.qtype == "E"]
        anti = [q for q in box.body_quantifiers if q.qtype == "A"]
        scalar = [q for q in box.body_quantifiers if q.qtype == "S"]
        for quantifier in scalar:
            self._register_scalar(box, quantifier)
        scalar_set = set(scalar)

        rid_needed = self._rid_quantifiers(box)

        # Classify predicates by the non-scalar quantifiers they touch.
        # A correlated scalar counts as a reference to the outer
        # quantifiers its subquery reads: the predicate can only run
        # once those provide values for the correlation slots.
        local: dict[int, list[ast.Expression]] = {}
        constant: list[ast.Expression] = []
        multi: list[ast.Expression] = []
        for predicate in box.predicates:
            refs = self._placement_refs(predicate)
            if not refs:
                constant.append(predicate)
            elif len(refs) == 1:
                quantifier = next(iter(refs))
                local.setdefault(quantifier.qid, []).append(predicate)
            else:
                multi.append(predicate)

        # ForEach side: build and join sources.
        if foreach:
            sources = [
                self._build_source(q, local.get(q.qid, []),
                                   with_rid=q in rid_needed)
                for q in foreach
            ]
            foreach_set = set(foreach)
            join_preds = [p for p in multi
                          if self._placement_refs(p) <= foreach_set]
            node, layout = self._join_sources(sources, join_preds)
        else:
            node, layout = SingleRow(), {}

        if constant:
            compiler = ExpressionCompiler(layout)
            for predicate in constant:
                node = _filter_node(node, compiler, predicate)

        # Existential components (jointly existential quantifiers).
        remaining_preds = [
            p for p in multi
            if not self._placement_refs(p) <= set(foreach)
        ]
        used: set[int] = set()
        for component in self._existential_components(existential,
                                                      remaining_preds,
                                                      scalar_set):
            node, layout = self._apply_quantified(
                node, layout, component, remaining_preds, local, used,
                scalar_set, anti_join=False, rid_needed=rid_needed,
            )
        for quantifier in anti:
            node, layout = self._apply_quantified(
                node, layout, [quantifier], remaining_preds, local, used,
                scalar_set, anti_join=True, rid_needed=rid_needed,
            )
        leftovers = [p for i, p in enumerate(remaining_preds)
                     if i not in used]
        if leftovers:
            raise PlanningError(
                f"unplaceable predicates in box {box.label!r}: "
                f"{[str(p) for p in leftovers]}"
            )

        # ORDER BY runs before projection (its keys may use any column).
        if box.order_by:
            compiler = ExpressionCompiler(layout)
            node = Sort(node,
                        [compiler.compile(e) for e, _d in box.order_by],
                        [d for _e, d in box.order_by])

        compiler = ExpressionCompiler(layout)
        fns = [compiler.compile(c.expression) for c in box.head]
        node = Project(node, fns, [c.name for c in box.head])
        if box.distinct:
            node = Dedup(node)
        if box.limit is not None or box.offset is not None:
            node = Limit(node, box.limit, box.offset)
        return node

    # ------------------------------------------------------------------
    # Scalar subqueries (uncorrelated and correlated)
    # ------------------------------------------------------------------
    def _register_scalar(self, box: SelectBox,
                         quantifier: Quantifier) -> None:
        """Compile an S quantifier's subquery once.

        Uncorrelated subqueries evaluate once per execution (cached in
        the context).  Correlated ones get their outer references
        rewritten into named parameter slots; at run time the outer row
        binds the slots and the plan re-executes per distinct binding
        (memoized).  The rewrite layer decorrelates the common aggregate
        shape before it ever reaches this fallback.
        """
        if quantifier.qid in self.scalar_plans:
            return
        leaves = subgraph_outer_leaves(quantifier.box)
        if leaves:
            outside = [leaf for leaf in leaves
                       if leaf.quantifier not in box.body_quantifiers]
            if outside:
                raise PlanningError(
                    "correlated scalar subquery references quantifiers "
                    "outside its enclosing block: "
                    f"{[str(leaf) for leaf in outside]}"
                )
            pairs = []
            for leaf in leaves:
                slot = f"$CORR{quantifier.qid}_{self._correlation_slots}$"
                self._correlation_slots += 1
                pairs.append((slot, leaf))
            self._parameterize_subgraph(quantifier.box, pairs)
            quantifier.correlation = tuple(pairs)
        self.scalar_plans[quantifier.qid] = self.plan_box(quantifier.box)
        self._scalar_deps[quantifier.qid] = {
            leaf.quantifier for _slot, leaf in quantifier.correlation
        }

    @staticmethod
    def _parameterize_subgraph(box: Box, pairs: list) -> None:
        """Replace the given outer leaves with named Parameter slots,
        throughout the subgraph (in place)."""
        replacements = {
            (leaf.quantifier.qid, getattr(leaf, "column", "$RID$")):
                ast.Parameter(name=slot)
            for slot, leaf in pairs
        }

        def mapping(leaf):
            key = (leaf.quantifier.qid, getattr(leaf, "column", "$RID$"))
            return replacements.get(key, leaf)

        seen: set[int] = set()
        stack = [box]
        while stack:
            current = stack.pop()
            if current.box_id in seen:
                continue
            seen.add(current.box_id)
            stack.extend(q.box for q in current.quantifiers())
            rewrite_box_expressions(
                current,
                lambda expression: replace_qrefs(expression, mapping))

    def _placement_refs(self, expression: ast.Expression
                        ) -> set[Quantifier]:
        """Quantifiers a predicate needs bound before it can run: its
        direct non-scalar references plus, for each correlated scalar it
        uses, the outer quantifiers feeding the correlation slots."""
        refs: set[Quantifier] = set()
        for quantifier in _referenced_quantifiers(expression):
            if quantifier.qtype == Quantifier.S:
                refs |= self._scalar_deps.get(quantifier.qid, set())
            else:
                refs.add(quantifier)
        return refs

    def _rid_quantifiers(self, box: SelectBox) -> set[Quantifier]:
        found: set[Quantifier] = set()
        expressions: list[ast.Expression] = []
        expressions.extend(c.expression for c in box.head
                           if c.expression is not None)
        expressions.extend(box.predicates)
        expressions.extend(e for e, _d in box.order_by)
        for expression in expressions:
            for node in walk_qgm_expression(expression):
                if isinstance(node, RidRef):
                    found.add(node.quantifier)
        return found

    # ------------------------------------------------------------------
    def _build_source(self, quantifier: Quantifier,
                      local_preds: list[ast.Expression],
                      with_rid: bool) -> _Source:
        box = quantifier.box
        if isinstance(box, BaseBox):
            return self._build_base_source(quantifier, box, local_preds,
                                           with_rid)
        if with_rid:
            raise PlanningError(
                f"RID reference on non-base quantifier {quantifier.name!r}"
            )
        node = self.plan_box(box)
        layout = {(quantifier.qid, c.name.upper()): i
                  for i, c in enumerate(box.head)}
        rows = self.cost.local_rows(box, local_preds)
        if local_preds:
            compiler = ExpressionCompiler(layout)
            for predicate in local_preds:
                node = _filter_node(node, compiler, predicate)
        node.estimated_rows = rows
        # A derived source is produced by its own subplan; charge its
        # output volume as the access cost.
        access_cost = max(self.cost.box_rows(box), 1.0)
        return _Source(quantifier, node, layout, rows,
                       access_cost=access_cost)

    def _build_base_source(self, quantifier: Quantifier, box: BaseBox,
                           local_preds: list[ast.Expression],
                           with_rid: bool) -> _Source:
        table = box.table
        columns = list(table.column_names)
        layout = {(quantifier.qid, c.upper()): i
                  for i, c in enumerate(columns)}
        if with_rid:
            layout[(quantifier.qid, RID_COLUMN)] = len(columns)
        rows = self.cost.local_rows(box, local_preds)
        cardinality = float(max(len(table), 1))
        full_scan_cost = self.cost.scan_cost(cardinality)

        # Access-path selection for constant equality predicates: every
        # index fully covered by them is a candidate; cost-compare
        # against the full scan (legacy mode: first covered index wins
        # unconditionally).
        remaining = list(local_preds)
        node: PlanNode
        access_cost = full_scan_cost
        chosen_index = None
        if self.options.use_indexes:
            const_eq: dict[str, ast.Expression] = {}
            const_pred: dict[str, ast.Expression] = {}
            for predicate in local_preds:
                column, value = self._constant_equality(predicate,
                                                        quantifier)
                if column is not None and column not in const_eq:
                    const_eq[column] = value
                    const_pred[column] = predicate
            cost_based = self.options.cost_based_access_paths
            for index in table.indexes:
                names = [c.upper() for c in index.column_names]
                if not all(name in const_eq for name in names):
                    continue
                matching = cardinality * self.cost.conjunct_selectivity(
                    [const_pred[name] for name in names])
                index_cost = self.cost.index_scan_cost(matching)
                if not cost_based:
                    chosen_index, access_cost = (index, names), index_cost
                    break
                if index_cost < access_cost:
                    chosen_index, access_cost = (index, names), index_cost
            if chosen_index is not None:
                index, names = chosen_index
                empty_compiler = ExpressionCompiler({})
                key_fns = [empty_compiler.compile(const_eq[name])
                           for name in names]
                node = IndexScan(table, index, key_fns, with_rid=with_rid)
                remaining = [
                    p for p in local_preds
                    if self._constant_equality(p, quantifier)[0]
                    not in names
                ]
        if chosen_index is None:
            node = TableScan(table, with_rid=with_rid)
        node.estimated_rows = rows
        node.estimated_cost = access_cost
        bare = chosen_index is None and not remaining
        if remaining:
            compiler = ExpressionCompiler(layout)
            for predicate in remaining:
                node = _filter_node(node, compiler, predicate)
            node.estimated_rows = rows
            node.estimated_cost = access_cost
        return _Source(quantifier, node, layout, rows, bare_scan=bare,
                       with_rid=with_rid, access_cost=access_cost,
                       table=table if chosen_index is None else None,
                       filter_preds=remaining if chosen_index is None
                       else [])

    @staticmethod
    def _constant_equality(predicate: ast.Expression,
                           quantifier: Quantifier):
        """Match ``q.col = constant-expression`` (either side)."""
        if not isinstance(predicate, ast.BinaryOp) or predicate.op != "=":
            return None, None
        for this, other in ((predicate.left, predicate.right),
                            (predicate.right, predicate.left)):
            if isinstance(this, QRef) and this.quantifier is quantifier \
                    and not _referenced_quantifiers(other):
                return this.column.upper(), other
        return None, None

    # ------------------------------------------------------------------
    def _join_sources(self, sources: list[_Source],
                      predicates: list[ast.Expression]
                      ) -> tuple[PlanNode, Layout]:
        """Join the given sources in an enumerated cost-chosen order."""
        pending = list(predicates)
        order, method = self._choose_join_order(sources, predicates)
        current = order[0]
        node = current.node
        layout = dict(current.layout)
        bound = {current.quantifier}
        rows = current.rows
        total_cost = current.access_cost
        node, layout, pending = self._apply_ready(node, layout, bound,
                                                  pending)

        for candidate in order[1:]:
            equi = self._equi_predicates(pending, bound,
                                         candidate.quantifier)
            out_rows = self.cost.join_rows(rows, candidate.rows,
                                           [p for p, _s in equi])
            # _join_step_cost already charges the candidate's access
            # cost where the join method pays it (hash build / inner
            # materialization); INL replaces the scan and pays none.
            total_cost += self._join_step_cost(rows, candidate, equi,
                                               out_rows)
            node, layout = self._join_pair(node, layout, rows, candidate,
                                           equi, pending)
            bound.add(candidate.quantifier)
            rows = out_rows
            node.estimated_rows = rows
            node.estimated_cost = total_cost
            node, layout, pending = self._apply_ready(node, layout, bound,
                                                      pending)
        if len(order) > 1:
            self.join_orders.append(JoinOrderRecord(
                names=tuple(s.quantifier.name for s in order),
                method=method, estimated_rows=rows,
                estimated_cost=total_cost))
        return node, layout

    # ------------------------------------------------------------------
    # Join-order enumeration
    # ------------------------------------------------------------------
    def _choose_join_order(self, sources: list[_Source],
                           predicates: list[ast.Expression]
                           ) -> tuple[list[_Source], str]:
        if len(sources) <= 1:
            return list(sources), "single"
        hook = self.options.join_order_hook
        if hook is not None:
            names = [s.quantifier.name for s in sources]
            forced = hook(list(names))
            if forced is not None:
                if sorted(forced) != sorted(names):
                    raise PlanningError(
                        f"join_order_hook returned {list(forced)!r}; "
                        f"expected a permutation of {names!r}"
                    )
                by_name = {s.quantifier.name: s for s in sources}
                return [by_name[name] for name in forced], "forced"
        mode = self.options.join_enumeration
        if mode not in ("auto", "dp", "greedy"):
            raise PlanningError(
                f"unknown join_enumeration mode {mode!r} "
                "(expected 'auto', 'dp', or 'greedy')"
            )
        if mode == "greedy" or (
                mode == "auto"
                and len(sources) > self.options.dp_join_threshold):
            return self._greedy_order(sources, predicates), "greedy"
        return self._dp_order(sources, predicates), "dp"

    def _greedy_order(self, sources: list[_Source],
                      predicates: list[ast.Expression]) -> list[_Source]:
        """The classic greedy heuristic: start from the smallest
        source, repeatedly add the connected candidate with the lowest
        estimated join output (simulating predicate consumption the
        same way the fold does)."""
        pending = list(predicates)
        remaining = sorted(sources, key=lambda s: s.rows)
        current = remaining.pop(0)
        order = [current]
        bound = {current.quantifier}
        rows = current.rows
        pending = [p for p in pending
                   if not self._placement_refs(p) <= bound]
        while remaining:
            best = None
            for candidate in remaining:
                equi = self._equi_predicates(pending, bound,
                                             candidate.quantifier)
                estimate = self.cost.join_rows(rows, candidate.rows,
                                               [p for p, _s in equi])
                key = (not bool(equi), estimate, candidate.rows)
                if best is None or key < best[0]:
                    best = (key, candidate, equi)
            _key, candidate, equi = best
            remaining.remove(candidate)
            order.append(candidate)
            for predicate, _sides in equi:
                pending.remove(predicate)
            bound.add(candidate.quantifier)
            rows = self.cost.join_rows(rows, candidate.rows,
                                       [p for p, _s in equi])
            pending = [p for p in pending
                       if not self._placement_refs(p) <= bound]
        return order

    def _dp_order(self, sources: list[_Source],
                  predicates: list[ast.Expression]) -> list[_Source]:
        """Exhaustive left-deep join enumeration (Selinger-style DP
        over quantifier subsets): for every subset keep the cheapest
        order, extending by one source at a time.  2^n subsets — only
        run below ``dp_join_threshold``."""
        by_qid = {s.quantifier.qid: s for s in sources}
        qids = [s.quantifier.qid for s in sources]
        #: subset -> (total cost, output rows, order tuple)
        best: dict[frozenset, tuple[float, float, tuple]] = {
            frozenset((s.quantifier.qid,)): (s.access_cost, s.rows, (s,))
            for s in sources
        }
        for size in range(2, len(sources) + 1):
            for combo in combinations(qids, size):
                subset = frozenset(combo)
                winner = None
                for last in combo:
                    previous = best.get(subset - {last})
                    if previous is None:
                        continue
                    prev_cost, prev_rows, prev_order = previous
                    candidate = by_qid[last]
                    step_cost, out_rows = self._dp_step(
                        prev_order, prev_rows, candidate, predicates)
                    total = prev_cost + step_cost
                    if winner is None or (total, out_rows) < winner[:2]:
                        winner = (total, out_rows,
                                  prev_order + (candidate,))
                best[subset] = winner
        return list(best[frozenset(qids)][2])

    def _dp_step(self, prev_order: tuple, prev_rows: float,
                 candidate: _Source,
                 predicates: list[ast.Expression]) -> tuple[float, float]:
        """(cost, output rows) of joining ``candidate`` onto the bound
        prefix — the DP's transition function."""
        bound = {s.quantifier for s in prev_order}
        both = bound | {candidate.quantifier}
        newly: list[ast.Expression] = []
        for predicate in predicates:
            refs = self._placement_refs(predicate)
            if not refs or refs <= bound \
                    or refs <= {candidate.quantifier}:
                continue
            if refs <= both:
                newly.append(predicate)
        selectivity = self.cost.conjunct_selectivity(newly)
        out_rows = max(prev_rows * candidate.rows * selectivity, 0.1)
        equi = self._equi_predicates(newly, bound, candidate.quantifier)
        return (self._join_step_cost(prev_rows, candidate, equi,
                                     out_rows), out_rows)

    def _join_step_cost(self, prev_rows: float, candidate: _Source,
                        equi: list, out_rows: float) -> float:
        """Cost of one join step under the cheapest available method
        (the same choice :meth:`_join_pair` will make)."""
        if not equi:
            return self.cost.nested_loop_cost(prev_rows, candidate.rows,
                                              candidate.access_cost)
        hash_cost = self.cost.hash_join_cost(prev_rows, candidate.rows,
                                             candidate.access_cost)
        index = self._inl_index(candidate, self._inl_columns(equi))
        if index is None:
            return hash_cost
        inl_cost = self.cost.inl_join_cost(prev_rows, out_rows)
        if not self.options.cost_based_access_paths:
            return inl_cost  # legacy: INL whenever an index matches
        return min(inl_cost, hash_cost)

    # ------------------------------------------------------------------
    # Index-nested-loop eligibility (shared by costing and realization)
    # ------------------------------------------------------------------
    @staticmethod
    def _inl_columns(equi: list) -> set[str]:
        """Candidate-side equality columns usable as probe keys."""
        return {sides[1].column.upper() for _p, sides in equi
                if isinstance(sides[1], QRef)}

    def _inl_index(self, candidate: _Source, columns: set[str]):
        """An index on the candidate fully covered by the equi-join
        columns, if the candidate is still probe-able."""
        if not self.options.use_indexes or not columns:
            return None
        if self.options.cost_based_access_paths:
            # A filtered scan is probe-able too: its local predicates
            # fold into the probe residual.
            eligible = candidate.table is not None
        else:
            eligible = candidate.bare_scan \
                and isinstance(candidate.node, TableScan)
        if not eligible:
            return None
        table = candidate.table if candidate.table is not None \
            else candidate.node.table  # type: ignore[attr-defined]
        for index in table.indexes:
            names = [c.upper() for c in index.column_names]
            if all(name in columns for name in names):
                return index
        return None

    def _apply_ready(self, node: PlanNode, layout: Layout,
                     bound: set[Quantifier],
                     pending: list[ast.Expression]):
        """Filter with predicates whose quantifiers are all bound."""
        ready = [p for p in pending
                 if self._placement_refs(p) <= bound]
        if ready:
            compiler = ExpressionCompiler(layout)
            for predicate in ready:
                node = _filter_node(node, compiler, predicate)
            pending = [p for p in pending if p not in ready]
        return node, layout, pending

    @staticmethod
    def _non_scalar_refs(predicate: ast.Expression) -> set[Quantifier]:
        return {q for q in _referenced_quantifiers(predicate)
                if q.qtype != Quantifier.S}

    def _equi_predicates(self, pending: list[ast.Expression],
                         bound: set[Quantifier], candidate: Quantifier
                         ) -> list[tuple[ast.BinaryOp, tuple]]:
        """Equality predicates usable as hash keys for joining
        ``candidate`` to the bound set.  Returns (predicate,
        (bound_side_expr, candidate_side_expr)) pairs."""
        result = []
        for predicate in pending:
            if not isinstance(predicate, ast.BinaryOp) \
                    or predicate.op != "=":
                continue
            refs = self._placement_refs(predicate)
            if candidate not in refs or not refs <= bound | {candidate}:
                continue
            for this, other in ((predicate.left, predicate.right),
                                (predicate.right, predicate.left)):
                this_refs = self._placement_refs(this) if isinstance(
                    this, ast.Expression) else set()
                other_refs = self._placement_refs(other)
                if this_refs <= bound and other_refs == {candidate}:
                    result.append((predicate, (this, other)))
                    break
        return result

    def _join_pair(self, node: PlanNode, layout: Layout, rows: float,
                   candidate: _Source,
                   equi: list[tuple[ast.BinaryOp, tuple]],
                   pending: list[ast.Expression]) -> tuple[PlanNode, Layout]:
        width = len(node.columns)
        combined = dict(layout)
        for key, position in candidate.layout.items():
            combined[key] = position + width

        if equi:
            for predicate, _sides in equi:
                pending.remove(predicate)
            outer_compiler = ExpressionCompiler(layout)
            inner_compiler = ExpressionCompiler(candidate.layout)
            left_keys = [outer_compiler.compile(sides[0])
                         for _p, sides in equi]
            right_keys = [inner_compiler.compile(sides[1])
                          for _p, sides in equi]
            # Index-nested-loop through a parent/child link when an
            # index on the candidate covers the join columns and (under
            # cost-based access paths) probing beats building a hash.
            index = self._inl_index(candidate, self._inl_columns(equi))
            if index is not None \
                    and self._inl_wins(rows, candidate, equi):
                probe = self._index_probe(node, candidate, index, equi,
                                          layout, combined)
                if probe is not None:
                    return probe, combined
            return HashJoin(node, candidate.node, left_keys, right_keys), \
                combined
        return NestedLoopJoin(node, candidate.node), combined

    def _inl_wins(self, rows: float, candidate: _Source,
                  equi: list[tuple[ast.BinaryOp, tuple]]) -> bool:
        """Whether index nested-loop beats a hash join for this step."""
        if not self.options.cost_based_access_paths:
            return True  # legacy: always probe when an index matches
        out_rows = self.cost.join_rows(rows, candidate.rows,
                                       [p for p, _s in equi])
        inl_cost = self.cost.inl_join_cost(rows, out_rows)
        hash_cost = self.cost.hash_join_cost(rows, candidate.rows,
                                             candidate.access_cost)
        return inl_cost <= hash_cost

    def _index_probe(self, outer: PlanNode, candidate: _Source,
                     index, equi: list[tuple[ast.BinaryOp, tuple]],
                     outer_layout: Layout,
                     combined_layout: Layout) -> Optional[PlanNode]:
        table = candidate.table if candidate.table is not None \
            else candidate.node.table  # type: ignore[attr-defined]
        by_column: dict[str, ast.Expression] = {}
        others: list[ast.BinaryOp] = []
        for predicate, (_outer_expr, inner_expr) in equi:
            if isinstance(inner_expr, QRef):
                by_column.setdefault(inner_expr.column.upper(),
                                     _outer_expr)
            else:
                others.append(predicate)
        names = [c.upper() for c in index.column_names]
        if not all(name in by_column for name in names):
            return None
        outer_compiler = ExpressionCompiler(outer_layout)
        key_fns = [outer_compiler.compile(by_column[name])
                   for name in names]
        residual_preds: list[ast.Expression] = list(others)
        residual_preds.extend(
            predicate for predicate, (_o, inner_expr) in equi
            if isinstance(inner_expr, QRef)
            and inner_expr.column.upper() not in names
        )
        # Local filters on the candidate fold into the probe residual
        # (the probe replaces the candidate's filtered-scan subtree).
        residual_preds.extend(candidate.filter_preds)
        residual = None
        if residual_preds:
            residual = ExpressionCompiler(combined_layout).compile(
                ast.conjoin(residual_preds))
        return IndexNestedLoopJoin(
            outer, table, index, key_fns,
            with_rid=candidate.with_rid, residual=residual,
        )

    # ------------------------------------------------------------------
    # E/A quantifiers
    # ------------------------------------------------------------------
    def _existential_components(self, existential: list[Quantifier],
                                predicates: list[ast.Expression],
                                scalar_set: set[Quantifier]
                                ) -> list[list[Quantifier]]:
        """Connected components of E quantifiers (joint existentials)."""
        if not existential:
            return []
        parent: dict[int, int] = {q.qid: q.qid for q in existential}

        def find(qid: int) -> int:
            while parent[qid] != qid:
                parent[qid] = parent[parent[qid]]
                qid = parent[qid]
            return qid

        def union(a: int, b: int) -> None:
            parent[find(a)] = find(b)

        ids = {q.qid for q in existential}
        for predicate in predicates:
            touched = [q.qid for q in _referenced_quantifiers(predicate)
                       if q.qid in ids]
            for first, second in zip(touched, touched[1:]):
                union(first, second)
        groups: dict[int, list[Quantifier]] = {}
        for quantifier in existential:
            groups.setdefault(find(quantifier.qid), []).append(quantifier)
        return list(groups.values())

    def _apply_quantified(self, node: PlanNode, layout: Layout,
                          members: list[Quantifier],
                          predicates: list[ast.Expression],
                          local: dict[int, list[ast.Expression]],
                          used: set[int], scalar_set: set[Quantifier],
                          anti_join: bool,
                          rid_needed: set[Quantifier]
                          ) -> tuple[PlanNode, Layout]:
        member_set = set(members)
        sources = [
            self._build_source(q, local.get(q.qid, []),
                               with_rid=q in rid_needed)
            for q in members
        ]
        intra: list[ast.Expression] = []
        cross: list[tuple[int, ast.Expression]] = []
        for position, predicate in enumerate(predicates):
            refs = self._placement_refs(predicate)
            if not refs & member_set:
                continue
            if refs <= member_set:
                intra.append(predicate)
                used.add(position)
            else:
                cross.append((position, predicate))
                used.add(position)
        inner_node, inner_layout = self._join_sources(sources, intra) \
            if len(sources) > 1 or intra else (sources[0].node,
                                               sources[0].layout)

        # Split cross predicates into hashable equi keys and residual.
        outer_compiler = ExpressionCompiler(layout)
        inner_compiler = ExpressionCompiler(inner_layout)
        outer_keys: list[CompiledExpression] = []
        inner_keys: list[CompiledExpression] = []
        residual: list[ast.Expression] = []
        for _position, predicate in cross:
            sides = self._split_cross_equality(predicate, member_set)
            if sides is not None:
                outer_keys.append(outer_compiler.compile(sides[0]))
                inner_keys.append(inner_compiler.compile(sides[1]))
            else:
                residual.append(predicate)
        residual_fn = None
        if residual:
            width = len(node.columns)
            combined = dict(layout)
            for key, position in inner_layout.items():
                combined[key] = position + width
            combined_compiler = ExpressionCompiler(combined)
            conjoined = ast.conjoin(residual)
            residual_fn = combined_compiler.compile(conjoined)

        null_poison = any(q.null_poison for q in members)
        node = SemiJoin(node, inner_node, outer_keys, inner_keys,
                        residual_fn, anti=anti_join,
                        null_poison=null_poison)
        return node, layout

    def _split_cross_equality(self, predicate: ast.Expression,
                              member_set: set[Quantifier]):
        if not isinstance(predicate, ast.BinaryOp) or predicate.op != "=":
            return None
        for this, other in ((predicate.left, predicate.right),
                            (predicate.right, predicate.left)):
            this_refs = self._placement_refs(this)
            other_refs = self._placement_refs(other)
            if this_refs and not this_refs & member_set \
                    and other_refs <= member_set and other_refs:
                return this, other
        return None

    # ------------------------------------------------------------------
    # Other box kinds
    # ------------------------------------------------------------------
    def _plan_groupby(self, box: GroupByBox) -> PlanNode:
        if box.input is None:
            raise PlanningError("group-by box has no input")
        child = self.plan_box(box.input.box)
        layout = {(box.input.qid, c.name.upper()): i
                  for i, c in enumerate(box.input.box.head)}
        compiler = ExpressionCompiler(layout)
        key_fns = [compiler.compile(k) for k in box.group_keys]
        specs = []
        key_count = 0
        for column in box.head:
            if column.name in box.aggregates:
                spec = box.aggregates[column.name]
                argument = (compiler.compile(spec.argument)
                            if spec.argument is not None else None)
                specs.append((spec.function, argument, spec.distinct))
            else:
                key_count += 1
                if specs:
                    raise PlanningError(
                        "group keys must precede aggregates in the head"
                    )
        if key_count != len(box.group_keys):
            raise PlanningError("group-by head/key mismatch")
        return Aggregate(child, key_fns, specs,
                         [c.name for c in box.head])

    def _plan_setop(self, box: SetOpBox) -> PlanNode:
        if len(box.inputs) != 2:
            raise PlanningError("set operations take exactly two inputs")
        left = self.plan_box(box.inputs[0].box)
        right = self.plan_box(box.inputs[1].box)
        return SetOperation(box.operator, box.all_rows, left, right)

    def _plan_outer_join(self, box: OuterJoinBox) -> PlanNode:
        left = self.plan_box(box.left.box)
        right = self.plan_box(box.right.box)
        left_layout = {(box.left.qid, c.name.upper()): i
                       for i, c in enumerate(box.left.box.head)}
        right_layout = {(box.right.qid, c.name.upper()): i
                        for i, c in enumerate(box.right.box.head)}
        combined = dict(left_layout)
        width = len(left.columns)
        for key, position in right_layout.items():
            combined[key] = position + width

        left_keys: list[CompiledExpression] = []
        right_keys: list[CompiledExpression] = []
        residual: list[ast.Expression] = []
        left_compiler = ExpressionCompiler(left_layout)
        right_compiler = ExpressionCompiler(right_layout)
        for conjunct in ast.conjuncts(box.condition):
            sides = self._outer_equality(conjunct, box)
            if sides is not None:
                left_keys.append(left_compiler.compile(sides[0]))
                right_keys.append(right_compiler.compile(sides[1]))
            else:
                residual.append(conjunct)
        residual_fn = None
        if residual:
            residual_fn = ExpressionCompiler(combined).compile(
                ast.conjoin(residual))
        node = LeftOuterJoin(left, right, left_keys, right_keys, residual_fn)
        compiler = ExpressionCompiler(combined)
        fns = [compiler.compile(c.expression) for c in box.head]
        return Project(node, fns, [c.name for c in box.head])

    def _outer_equality(self, conjunct: ast.Expression, box: OuterJoinBox):
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
            return None
        for this, other in ((conjunct.left, conjunct.right),
                            (conjunct.right, conjunct.left)):
            if self._non_scalar_refs(this) == {box.left} \
                    and self._non_scalar_refs(other) == {box.right}:
                return this, other
        return None
