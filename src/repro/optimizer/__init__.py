"""Plan optimization and physical operators."""

from repro.optimizer.cost import CostModel
from repro.optimizer.optimizer import (ExecutablePlan, Planner,
                                       PlannerOptions)
from repro.optimizer.plan import (Aggregate, Dedup, ExecutionContext, Filter,
                                  HashJoin, IndexNestedLoopJoin, IndexScan,
                                  LeftOuterJoin, Limit, Materialized,
                                  NestedLoopJoin, PlanNode, Project, SemiJoin,
                                  SetOperation, SingleRow, Sort, Spool,
                                  TableScan, UnionAll)

__all__ = [
    "CostModel", "ExecutablePlan", "Planner", "PlannerOptions",
    "Aggregate", "Dedup", "ExecutionContext", "Filter", "HashJoin",
    "IndexNestedLoopJoin", "IndexScan", "LeftOuterJoin", "Limit",
    "Materialized", "NestedLoopJoin", "PlanNode", "Project", "SemiJoin",
    "SetOperation", "SingleRow", "Sort", "Spool", "TableScan", "UnionAll",
]
