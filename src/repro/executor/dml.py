"""INSERT / UPDATE / DELETE execution.

DML reuses the query pipeline for anything SELECT-shaped (INSERT ...
SELECT, and the row-qualification part of UPDATE/DELETE, which compiles
to a plan producing RIDs plus new values) and then applies storage
mutations with foreign-key checks.  Atomicity is the caller's concern:
the Database facade wraps each statement in ``run_atomic``.

Every successful statement additionally publishes one per-table
:class:`~repro.storage.catalog.TableDelta` through the catalog's delta
protocol (when anyone subscribed), which is how materialized
composite-object views are maintained incrementally instead of being
recomputed.  A statement that raises mid-way publishes nothing: the
facade's ``run_atomic`` rolls the partial mutations back.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SemanticError
from repro.executor.expressions import ExpressionCompiler
from repro.executor.plan_cache import (max_positional_in_expressions,
                                       parameterize_expressions)
from repro.executor.runtime import QueryPipeline
from repro.optimizer.optimizer import ExecutablePlan
from repro.optimizer.plan import ExecutionContext
from repro.qgm.builder import Scope, validate_subquery_positions
from repro.qgm.model import (BaseBox, HeadColumn, OutputStream, QGMGraph,
                             Quantifier, RidRef, SelectBox, TopBox)
from repro.sql import ast
from repro.storage.catalog import Catalog, TableDelta
from repro.storage.table import Table


class DMLExecutor:
    """Executes data-modification statements against base tables."""

    def __init__(self, pipeline: QueryPipeline):
        self.pipeline = pipeline
        self.catalog: Catalog = pipeline.catalog

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def insert(self, statement: ast.InsertStatement, params=None) -> int:
        table = self.catalog.table(statement.table)
        target_positions = self._target_positions(table, statement.columns)
        if statement.query is not None:
            result = self.pipeline.run_select(statement.query,
                                              params=params)
            rows = result.rows
            width = len(result.columns)
        else:
            compiler = ExpressionCompiler({})
            value_ctx = ExecutionContext()
            value_ctx.bind_parameters(params)
            rows = []
            width = None
            for value_row in statement.rows:
                values = tuple(
                    compiler.compile(expression)((), value_ctx)
                    for expression in value_row
                )
                width = len(values) if width is None else width
                if len(values) != width:
                    raise SemanticError(
                        "INSERT rows have inconsistent widths"
                    )
                rows.append(values)
        if width is not None and width != len(target_positions):
            raise SemanticError(
                f"INSERT provides {width} values for "
                f"{len(target_positions)} columns"
            )
        inserted = 0
        delta = TableDelta(table.name) if self.catalog.wants_deltas \
            else None
        for values in rows:
            full_row = [None] * len(table.columns)
            for position, value in zip(target_positions, values):
                full_row[position] = value
            self.catalog.check_foreign_keys(table.name, tuple(full_row))
            rid = table.insert(full_row)
            if delta is not None:
                delta.inserted.append((rid, table.fetch(rid)))
            inserted += 1
        # Statistics invalidation rides the delta protocol (the
        # pipeline's manager subscribes to catalog.delta_listeners).
        if delta is not None:
            self.catalog.emit_table_delta(delta)
        return inserted

    @staticmethod
    def _target_positions(table: Table,
                          columns: tuple[str, ...]) -> list[int]:
        if not columns:
            return list(range(len(table.columns)))
        return [table.column_position(c) for c in columns]

    # ------------------------------------------------------------------
    # UPDATE
    # ------------------------------------------------------------------
    def update(self, statement: ast.UpdateStatement, params=None) -> int:
        table = self.catalog.table(statement.table)
        assigned_positions = [
            table.column_position(a.column) for a in statement.assignments
        ]
        expressions = [a.value for a in statement.assignments]
        rows = self._qualify(table, statement.where, expressions, params)
        updated = 0
        delta = TableDelta(table.name) if self.catalog.wants_deltas \
            else None
        pk_positions = {table.column_position(c)
                        for c in table.primary_key}
        for row_values in rows:
            rid = row_values[0]
            new_values = row_values[1:]
            old_row = table.fetch(rid)
            new_row = list(old_row)
            for position, value in zip(assigned_positions, new_values):
                new_row[position] = value
            if any(p in pk_positions and old_row[p] != new_row[p]
                   for p in assigned_positions):
                self.catalog.check_no_referencing_children(table.name,
                                                           old_row)
            self.catalog.check_foreign_keys(table.name, tuple(new_row))
            # update_row relocates the row (fresh rid) when a changed
            # partition key routes it to another partition; in place
            # otherwise.
            stored_rid, stored = table.update_row(rid, new_row)
            if delta is not None and stored != old_row:
                delta.deleted.append((rid, old_row))
                delta.inserted.append((stored_rid, stored))
            updated += 1
        if delta is not None:
            self.catalog.emit_table_delta(delta)
        return updated

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def delete(self, statement: ast.DeleteStatement, params=None) -> int:
        table = self.catalog.table(statement.table)
        rows = self._qualify(table, statement.where, [], params)
        deleted = 0
        delta = TableDelta(table.name) if self.catalog.wants_deltas \
            else None
        for row_values in rows:
            rid = row_values[0]
            old_row = table.fetch(rid)
            self.catalog.check_no_referencing_children(table.name, old_row)
            table.delete(rid)
            if delta is not None:
                delta.deleted.append((rid, old_row))
            deleted += 1
        if delta is not None:
            self.catalog.emit_table_delta(delta)
        return deleted

    # ------------------------------------------------------------------
    def qualify(self, table: Table, where: Optional[ast.Expression],
                value_expressions: list[ast.Expression],
                params=None) -> list[tuple]:
        """Public qualification hook: ``[(rid, value...), ...]`` rows.

        The view-update put-back path translates view DML into
        base-table form and qualifies here, so it shares the plan cache
        (and the Halloween-safe materialize-then-mutate discipline)
        with hand-written DML.
        """
        return self._qualify(table, where, value_expressions, params)

    def _qualify(self, table: Table, where: Optional[ast.Expression],
                 value_expressions: list[ast.Expression],
                 params=None) -> list[tuple]:
        """Plan and run ``SELECT rid, <exprs> FROM table WHERE pred``.

        The qualification plan is read through the pipeline's plan
        cache: literals in the predicate and the SET expressions are
        lifted into synthetic parameters, so repeated UPDATE/DELETE
        statements differing only in constants reuse one plan.  Rows
        are materialized before mutation so halloween-style
        re-visitation cannot occur.
        """
        expressions = [where] + list(value_expressions)
        bindings: dict = {}
        if self.pipeline.plan_cache.enabled:
            start = max_positional_in_expressions(expressions) + 1
            lifted = parameterize_expressions(expressions, start)
            where = lifted.statement[0]
            value_expressions = list(lifted.statement[1:])
            bindings = lifted.bindings
            key = ("dml_qualify", table.name, lifted.statement,
                   self.pipeline._options_signature())
            plan = self.pipeline.cached_compile(
                key,
                lambda: self._compile_qualification(table, where,
                                                    value_expressions),
                tables_of=lambda _plan: [table.name],
            )
        else:
            plan = self._compile_qualification(table, where,
                                               list(value_expressions))
        ctx = plan.new_context(params)
        if bindings:
            ctx.parameters.update(bindings)
        _stream, node = plan.single_output()
        return plan.run_node(node, ctx)

    def _compile_qualification(self, table: Table,
                               where: Optional[ast.Expression],
                               value_expressions: list[ast.Expression]
                               ) -> ExecutablePlan:
        """Build the qualification QGM, then compile it through the
        shared CompilationPipeline (normalize/rewrite/prune/plan) like
        any other statement."""
        builder = self.pipeline.builder()
        box = SelectBox(label=f"dml_{table.name}")
        base = BaseBox(table)
        quantifier = box.add_quantifier(
            Quantifier(base, Quantifier.F, name=table.name)
        )
        scope = Scope()
        scope.bind(table.name, quantifier)
        head = [HeadColumn("$RID$", RidRef(quantifier))]
        for position, expression in enumerate(value_expressions):
            resolved = builder._resolve(expression, scope, box)
            head.append(HeadColumn(f"V{position}", resolved))
        box.head = head
        if where is not None:
            validate_subquery_positions(where)
            predicate = builder._resolve(where, scope, box)
            box.predicates.extend(
                p for p in ast.conjuncts(predicate)
                if p != ast.Literal(True)
            )
        top = TopBox()
        top.outputs.append(OutputStream(name="DML", box=box))
        graph = QGMGraph(top=top, statement_kind="select")
        return self.pipeline.compile_graph(graph).plan
