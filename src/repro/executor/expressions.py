"""Compilation of QGM expressions into Python closures.

Expressions are compiled once per plan against a *layout* — a mapping
from (quantifier id, column name) to a position in the flat intermediate
row — and evaluated as ``fn(row, ctx)``.  SQL three-valued logic is
implemented with ``None`` standing for UNKNOWN/NULL: comparisons with
NULL yield None, AND/OR follow Kleene logic, and filters only keep rows
whose predicate is exactly True.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from repro.errors import ExecutionError
from repro.qgm.model import QRef, RidRef
from repro.sql import ast

#: Layout: (quantifier id, upper-cased column name) -> row position.
#: RIDs use the pseudo-column name "$RID$".
Layout = dict[tuple[int, str], int]

RID_COLUMN = "$RID$"

CompiledExpression = Callable[[tuple, Any], Any]

#: Batch predicate: filters a list of rows, returning the kept rows in
#: order.  The contract matches row-at-a-time filtering (keep rows whose
#: predicate is exactly True) but is evaluated a batch at a time, with
#: conjunct-level short-circuiting: later conjuncts only see survivors.
BatchPredicate = Callable[[list, Any], list]


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    if value is None:
        return None
    return not value


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (%, _) into an anchored regex."""
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def _scalar_upper(value):
    return None if value is None else str(value).upper()


def _scalar_lower(value):
    return None if value is None else str(value).lower()


def _scalar_length(value):
    return None if value is None else len(value)


def _scalar_abs(value):
    return None if value is None else abs(value)


def _scalar_mod(value, divisor):
    if value is None or divisor is None:
        return None
    if divisor == 0:
        raise ExecutionError("MOD by zero")
    return value % divisor


def _scalar_substr(value, start, length=None):
    if value is None or start is None:
        return None
    begin = max(int(start) - 1, 0)
    if length is None:
        return value[begin:]
    return value[begin:begin + int(length)]


def _scalar_trim(value):
    return None if value is None else value.strip()


def _scalar_round(value, digits=0):
    if value is None:
        return None
    return round(value, int(digits or 0))


def _scalar_coalesce(*values):
    for value in values:
        if value is not None:
            return value
    return None


def _scalar_idtuple(*values):
    """Value-based tuple identity for derived composite-object tuples
    (components whose derivation has no single base-table RID)."""
    return values


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "$IDTUPLE$": _scalar_idtuple,
    "UPPER": _scalar_upper,
    "LOWER": _scalar_lower,
    "LENGTH": _scalar_length,
    "ABS": _scalar_abs,
    "MOD": _scalar_mod,
    "SUBSTR": _scalar_substr,
    "SUBSTRING": _scalar_substr,
    "TRIM": _scalar_trim,
    "ROUND": _scalar_round,
    "COALESCE": _scalar_coalesce,
}


def _compare(op: str, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} and {right!r}"
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int) \
                    and result == int(result):
                return int(result)
            return result
        if op == "||":
            return f"{left}{right}"
    except TypeError as exc:
        raise ExecutionError(
            f"cannot apply {op} to {left!r} and {right!r}"
        ) from exc
    raise ExecutionError(f"unknown operator {op!r}")


_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: ``a op b`` is equivalent to ``b flip(op) a``.
_FLIPPED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=",
               ">": "<", ">=": "<="}


def fold_constants(expression: ast.Expression) -> ast.Expression:
    """Evaluate literal-only subexpressions at compile time.

    Folds arithmetic, comparisons, AND/OR/NOT, and pure scalar functions
    whose operands are all literals, replacing them with the literal the
    runtime closure would have produced.  Anything that would raise
    (division by zero, type mismatches) is left unfolded so the error
    still surfaces at execution time.
    """
    if isinstance(expression, ast.BinaryOp):
        left = fold_constants(expression.left)
        right = fold_constants(expression.right)
        if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
            op = expression.op
            try:
                if op == "AND":
                    return ast.Literal(sql_and(left.value, right.value))
                if op == "OR":
                    return ast.Literal(sql_or(left.value, right.value))
                if op in _COMPARISON_OPS:
                    return ast.Literal(_compare(op, left.value, right.value))
                return ast.Literal(_arith(op, left.value, right.value))
            except ExecutionError:
                pass
        if left is not expression.left or right is not expression.right:
            return ast.BinaryOp(expression.op, left, right)
        return expression
    if isinstance(expression, ast.UnaryOp):
        operand = fold_constants(expression.operand)
        if isinstance(operand, ast.Literal):
            if expression.op == "NOT":
                return ast.Literal(sql_not(operand.value))
            if expression.op == "-":
                if operand.value is None:
                    return ast.Literal(None)
                try:
                    return ast.Literal(-operand.value)
                except TypeError:
                    pass
        if operand is not expression.operand:
            return ast.UnaryOp(expression.op, operand)
        return expression
    if isinstance(expression, ast.FunctionCall):
        args = tuple(fold_constants(a) for a in expression.args)
        name = expression.name.upper()
        if (not name.startswith("$") and name in SCALAR_FUNCTIONS
                and not expression.distinct
                and all(isinstance(a, ast.Literal) for a in args)):
            try:
                value = SCALAR_FUNCTIONS[name](*(a.value for a in args))
                return ast.Literal(value)
            except Exception:
                pass
        if any(a is not b for a, b in zip(args, expression.args)):
            return ast.FunctionCall(expression.name, args,
                                    expression.distinct)
        return expression
    if isinstance(expression, ast.IsNull):
        operand = fold_constants(expression.operand)
        if isinstance(operand, ast.Literal):
            is_null = operand.value is None
            return ast.Literal(not is_null if expression.negated
                               else is_null)
        if operand is not expression.operand:
            return ast.IsNull(operand, expression.negated)
        return expression
    if isinstance(expression, ast.Between):
        operand = fold_constants(expression.operand)
        low = fold_constants(expression.low)
        high = fold_constants(expression.high)
        if (operand is not expression.operand or low is not expression.low
                or high is not expression.high):
            return ast.Between(operand, low, high, expression.negated)
        return expression
    if isinstance(expression, ast.InList):
        operand = fold_constants(expression.operand)
        items = tuple(fold_constants(i) for i in expression.items)
        if (operand is not expression.operand
                or any(a is not b for a, b in zip(items, expression.items))):
            return ast.InList(operand, items, expression.negated)
        return expression
    return expression


class ExpressionCompiler:
    """Compiles QGM expressions against a fixed row layout."""

    def __init__(self, layout: Layout):
        self.layout = layout

    def compile(self, expression: ast.Expression) -> CompiledExpression:
        return self._compile(fold_constants(expression))

    def compile_condition(self, expression: ast.Expression
                          ) -> CompiledExpression:
        """Compile a predicate for a *filter* context.

        Same True/dropped outcome as :meth:`compile` for every row, but
        conjunctions short-circuit exactly like the batch filter built
        by :meth:`compile_filter`: a right conjunct is only evaluated
        when the left conjunct is True, so the two protocols also agree
        on which side effects (runtime errors) can surface.  Only valid
        where UNKNOWN and False are interchangeable — filters keep
        exactly-True rows — not for value contexts.
        """
        return self._condition(fold_constants(expression))

    def _condition(self, expression: ast.Expression) -> CompiledExpression:
        if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
            left = self._condition(expression.left)
            right = self._condition(expression.right)

            def run(row, ctx):
                if left(row, ctx) is True:
                    return right(row, ctx)
                return False
            return run
        return self._compile(expression)

    def _compile(self, expression: ast.Expression) -> CompiledExpression:
        if isinstance(expression, ast.Literal):
            value = expression.value
            return lambda row, ctx: value
        if isinstance(expression, ast.Parameter):
            key = expression.key
            marker = str(expression)

            def run_parameter(row, ctx):
                if ctx is None:
                    raise ExecutionError(
                        f"statement parameter {marker} has no bound value"
                    )
                return ctx.parameter(key)
            return run_parameter
        if isinstance(expression, QRef):
            position = self._position(expression.quantifier.qid,
                                      expression.column)
            if position is not None:
                return lambda row, ctx: row[position]
            # Not in the layout: a scalar-subquery quantifier, resolved
            # through the execution context at run time.
            quantifier = expression.quantifier
            if quantifier.qtype != "S":
                raise ExecutionError(
                    f"column {quantifier.name}.{expression.column} is "
                    f"not available in this plan"
                )
            qid = quantifier.qid
            correlation = quantifier.correlation
            if not correlation:
                return lambda row, ctx: ctx.scalar_value(qid)
            # Correlated: evaluate the outer-side expressions against
            # the current row, then run the subquery plan with those
            # values bound to its correlation slots (memoized per
            # distinct binding).
            slots = tuple(slot for slot, _leaf in correlation)
            leaf_fns = tuple(self._compile(leaf)
                             for _slot, leaf in correlation)

            def run_correlated(row, ctx):
                values = tuple(fn(row, ctx) for fn in leaf_fns)
                return ctx.correlated_scalar(qid, slots, values)
            return run_correlated
        if isinstance(expression, RidRef):
            position = self._position(expression.quantifier.qid, RID_COLUMN)
            if position is None:
                raise ExecutionError(
                    f"RID of {expression.quantifier.name} not available "
                    f"in this plan"
                )
            return lambda row, ctx: row[position]
        if isinstance(expression, ast.BinaryOp):
            return self._compile_binary(expression)
        if isinstance(expression, ast.UnaryOp):
            operand = self._compile(expression.operand)
            if expression.op == "NOT":
                return lambda row, ctx: sql_not(operand(row, ctx))
            if expression.op == "-":
                return lambda row, ctx: (
                    None if operand(row, ctx) is None else -operand(row, ctx)
                )
            raise ExecutionError(f"unknown unary operator {expression.op!r}")
        if isinstance(expression, ast.FunctionCall):
            return self._compile_function(expression)
        if isinstance(expression, ast.IsNull):
            operand = self._compile(expression.operand)
            if expression.negated:
                return lambda row, ctx: operand(row, ctx) is not None
            return lambda row, ctx: operand(row, ctx) is None
        if isinstance(expression, ast.Between):
            return self._compile_between(expression)
        if isinstance(expression, ast.Like):
            return self._compile_like(expression)
        if isinstance(expression, ast.InList):
            return self._compile_in_list(expression)
        if isinstance(expression, ast.CaseWhen):
            return self._compile_case(expression)
        raise ExecutionError(f"cannot compile expression {expression!r}")

    # ------------------------------------------------------------------
    def _position(self, qid: int, column: str) -> Optional[int]:
        return self.layout.get((qid, column.upper()))

    def _compile_binary(self, expression: ast.BinaryOp) -> CompiledExpression:
        left = self._compile(expression.left)
        right = self._compile(expression.right)
        op = expression.op
        if op == "AND":
            return lambda row, ctx: sql_and(left(row, ctx), right(row, ctx))
        if op == "OR":
            return lambda row, ctx: sql_or(left(row, ctx), right(row, ctx))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, ctx: _compare(op, left(row, ctx),
                                             right(row, ctx))
        return lambda row, ctx: _arith(op, left(row, ctx), right(row, ctx))

    def _compile_function(self,
                          expression: ast.FunctionCall) -> CompiledExpression:
        name = expression.name.upper()
        function = SCALAR_FUNCTIONS.get(name)
        if function is None:
            raise ExecutionError(f"unknown function {name!r}")
        args = [self._compile(a) for a in expression.args]
        return lambda row, ctx: function(*(a(row, ctx) for a in args))

    def _compile_between(self,
                         expression: ast.Between) -> CompiledExpression:
        operand = self._compile(expression.operand)
        low = self._compile(expression.low)
        high = self._compile(expression.high)

        def run(row, ctx):
            value = operand(row, ctx)
            result = sql_and(_compare(">=", value, low(row, ctx)),
                             _compare("<=", value, high(row, ctx)))
            return sql_not(result) if expression.negated else result
        return run

    def _compile_like(self, expression: ast.Like) -> CompiledExpression:
        operand = self._compile(expression.operand)
        if isinstance(expression.pattern, ast.Literal) \
                and isinstance(expression.pattern.value, str):
            regex = like_to_regex(expression.pattern.value)

            def run_static(row, ctx):
                value = operand(row, ctx)
                if value is None:
                    return None
                matched = regex.match(value) is not None
                return not matched if expression.negated else matched
            return run_static

        pattern = self._compile(expression.pattern)

        def run_dynamic(row, ctx):
            value = operand(row, ctx)
            pattern_value = pattern(row, ctx)
            if value is None or pattern_value is None:
                return None
            matched = like_to_regex(pattern_value).match(value) is not None
            return not matched if expression.negated else matched
        return run_dynamic

    def _compile_in_list(self, expression: ast.InList) -> CompiledExpression:
        operand = self._compile(expression.operand)
        items = [self._compile(i) for i in expression.items]

        def run(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row, ctx)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return False if expression.negated else True
            if saw_null:
                return None
            return True if expression.negated else False
        return run

    def _compile_case(self, expression: ast.CaseWhen) -> CompiledExpression:
        whens = [(self._compile(c), self._compile(r))
                 for c, r in expression.whens]
        default = (self._compile(expression.default)
                   if expression.default is not None else None)

        def run(row, ctx):
            for condition, result in whens:
                if condition(row, ctx) is True:
                    return result(row, ctx)
            return default(row, ctx) if default is not None else None
        return run

    # ------------------------------------------------------------------
    # Batch (vectorized) predicate compilation
    # ------------------------------------------------------------------
    def compile_filter(self, expression: ast.Expression) -> BatchPredicate:
        """Compile a predicate into a batch filter.

        The returned callable takes (rows, ctx) and returns the rows
        whose predicate evaluates to exactly True, preserving order.
        Conjunctions short-circuit at batch granularity (the right
        conjunct only sees the left conjunct's survivors) and
        column-vs-constant comparisons run as plain comprehensions with
        no per-row closure call.
        """
        return self._filter(fold_constants(expression))

    def _filter(self, expression: ast.Expression) -> BatchPredicate:
        if isinstance(expression, ast.Literal):
            if expression.value is True:
                return lambda rows, ctx: rows
            return lambda rows, ctx: []
        if isinstance(expression, ast.BinaryOp):
            if expression.op == "AND":
                left = self._filter(expression.left)
                right = self._filter(expression.right)

                def run_and(rows, ctx):
                    kept = left(rows, ctx)
                    return right(kept, ctx) if kept else kept
                return run_and
            if expression.op in _COMPARISON_OPS:
                fast = self._filter_comparison(expression)
                if fast is not None:
                    return fast
        if isinstance(expression, ast.IsNull):
            fast = self._filter_is_null(expression)
            if fast is not None:
                return fast
        fn = self._compile(expression)
        return lambda rows, ctx: [row for row in rows
                                  if fn(row, ctx) is True]

    def _filter_comparison(self,
                           expression: ast.BinaryOp
                           ) -> Optional[BatchPredicate]:
        """Fast path for ``column op constant-or-parameter`` (either side)."""
        for this, other, op in (
                (expression.left, expression.right, expression.op),
                (expression.right, expression.left,
                 _FLIPPED_OP[expression.op])):
            if isinstance(this, QRef) and isinstance(other, ast.Literal):
                position = self._position(this.quantifier.qid, this.column)
                if position is None:
                    return None  # scalar-subquery quantifier: generic path
                value = other.value
                if value is None:
                    # Comparison with NULL is UNKNOWN: keeps nothing.
                    return lambda rows, ctx: []
                return _comparison_filter(op, position, value)
            if isinstance(this, QRef) and isinstance(other, ast.Parameter):
                position = self._position(this.quantifier.qid, this.column)
                if position is None:
                    return None
                key = other.key

                def run_bound(rows, ctx, _op=op, _position=position,
                              _key=key):
                    value = ctx.parameter(_key)
                    if value is None:
                        return []
                    return _comparison_filter(_op, _position, value)(
                        rows, ctx)
                return run_bound
        return None

    def _filter_is_null(self, expression: ast.IsNull
                        ) -> Optional[BatchPredicate]:
        operand = expression.operand
        if not isinstance(operand, QRef):
            return None
        position = self._position(operand.quantifier.qid, operand.column)
        if position is None:
            return None
        if expression.negated:
            return lambda rows, ctx: [r for r in rows
                                      if r[position] is not None]
        return lambda rows, ctx: [r for r in rows if r[position] is None]


def _comparison_filter(op: str, position: int, value) -> BatchPredicate:
    """Comprehension-based filters matching 3VL row semantics.

    A NULL operand makes the comparison UNKNOWN, which never qualifies;
    equality needs no explicit guard because ``None == value`` is False
    for the non-NULL ``value`` the caller guarantees.  Ordering
    comparisons fall back to the row-at-a-time comparator on type
    mismatches so the error matches row mode exactly.
    """
    if op == "=":
        def run(rows, ctx):
            return [r for r in rows if r[position] == value]
    elif op == "<>":
        def run(rows, ctx):
            return [r for r in rows
                    if r[position] is not None and r[position] != value]
    elif op == "<":
        def run(rows, ctx):
            try:
                return [r for r in rows
                        if r[position] is not None and r[position] < value]
            except TypeError:
                return [r for r in rows
                        if _compare("<", r[position], value) is True]
    elif op == "<=":
        def run(rows, ctx):
            try:
                return [r for r in rows
                        if r[position] is not None and r[position] <= value]
            except TypeError:
                return [r for r in rows
                        if _compare("<=", r[position], value) is True]
    elif op == ">":
        def run(rows, ctx):
            try:
                return [r for r in rows
                        if r[position] is not None and r[position] > value]
            except TypeError:
                return [r for r in rows
                        if _compare(">", r[position], value) is True]
    elif op == ">=":
        def run(rows, ctx):
            try:
                return [r for r in rows
                        if r[position] is not None and r[position] >= value]
            except TypeError:
                return [r for r in rows
                        if _compare(">=", r[position], value) is True]
    else:  # pragma: no cover - caller restricts ops
        raise ExecutionError(f"unknown comparison operator {op!r}")
    return run


def compile_predicate(expression: ast.Expression,
                      layout: Layout) -> CompiledExpression:
    """Compile a predicate; callers keep rows where the result is True."""
    return ExpressionCompiler(layout).compile(expression)


def compile_expressions(expressions: list[ast.Expression],
                        layout: Layout) -> list[CompiledExpression]:
    compiler = ExpressionCompiler(layout)
    return [compiler.compile(e) for e in expressions]
