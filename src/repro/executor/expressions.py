"""Compilation of QGM expressions into Python closures.

Expressions are compiled once per plan against a *layout* — a mapping
from (quantifier id, column name) to a position in the flat intermediate
row — and evaluated as ``fn(row, ctx)``.  SQL three-valued logic is
implemented with ``None`` standing for UNKNOWN/NULL: comparisons with
NULL yield None, AND/OR follow Kleene logic, and filters only keep rows
whose predicate is exactly True.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from repro.errors import ExecutionError
from repro.qgm.model import QRef, RidRef
from repro.sql import ast

#: Layout: (quantifier id, upper-cased column name) -> row position.
#: RIDs use the pseudo-column name "$RID$".
Layout = dict[tuple[int, str], int]

RID_COLUMN = "$RID$"

CompiledExpression = Callable[[tuple, Any], Any]


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    if value is None:
        return None
    return not value


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (%, _) into an anchored regex."""
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def _scalar_upper(value):
    return None if value is None else str(value).upper()


def _scalar_lower(value):
    return None if value is None else str(value).lower()


def _scalar_length(value):
    return None if value is None else len(value)


def _scalar_abs(value):
    return None if value is None else abs(value)


def _scalar_mod(value, divisor):
    if value is None or divisor is None:
        return None
    if divisor == 0:
        raise ExecutionError("MOD by zero")
    return value % divisor


def _scalar_substr(value, start, length=None):
    if value is None or start is None:
        return None
    begin = max(int(start) - 1, 0)
    if length is None:
        return value[begin:]
    return value[begin:begin + int(length)]


def _scalar_trim(value):
    return None if value is None else value.strip()


def _scalar_round(value, digits=0):
    if value is None:
        return None
    return round(value, int(digits or 0))


def _scalar_coalesce(*values):
    for value in values:
        if value is not None:
            return value
    return None


def _scalar_idtuple(*values):
    """Value-based tuple identity for derived composite-object tuples
    (components whose derivation has no single base-table RID)."""
    return values


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "$IDTUPLE$": _scalar_idtuple,
    "UPPER": _scalar_upper,
    "LOWER": _scalar_lower,
    "LENGTH": _scalar_length,
    "ABS": _scalar_abs,
    "MOD": _scalar_mod,
    "SUBSTR": _scalar_substr,
    "SUBSTRING": _scalar_substr,
    "TRIM": _scalar_trim,
    "ROUND": _scalar_round,
    "COALESCE": _scalar_coalesce,
}


def _compare(op: str, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} and {right!r}"
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int) \
                    and result == int(result):
                return int(result)
            return result
        if op == "||":
            return f"{left}{right}"
    except TypeError as exc:
        raise ExecutionError(
            f"cannot apply {op} to {left!r} and {right!r}"
        ) from exc
    raise ExecutionError(f"unknown operator {op!r}")


class ExpressionCompiler:
    """Compiles QGM expressions against a fixed row layout."""

    def __init__(self, layout: Layout):
        self.layout = layout

    def compile(self, expression: ast.Expression) -> CompiledExpression:
        if isinstance(expression, ast.Literal):
            value = expression.value
            return lambda row, ctx: value
        if isinstance(expression, QRef):
            position = self._position(expression.quantifier.qid,
                                      expression.column)
            if position is not None:
                return lambda row, ctx: row[position]
            # Not in the layout: a scalar-subquery quantifier, resolved
            # through the execution context at run time.
            qid = expression.quantifier.qid
            return lambda row, ctx: ctx.scalar_value(qid)
        if isinstance(expression, RidRef):
            position = self._position(expression.quantifier.qid, RID_COLUMN)
            if position is None:
                raise ExecutionError(
                    f"RID of {expression.quantifier.name} not available "
                    f"in this plan"
                )
            return lambda row, ctx: row[position]
        if isinstance(expression, ast.BinaryOp):
            return self._compile_binary(expression)
        if isinstance(expression, ast.UnaryOp):
            operand = self.compile(expression.operand)
            if expression.op == "NOT":
                return lambda row, ctx: sql_not(operand(row, ctx))
            if expression.op == "-":
                return lambda row, ctx: (
                    None if operand(row, ctx) is None else -operand(row, ctx)
                )
            raise ExecutionError(f"unknown unary operator {expression.op!r}")
        if isinstance(expression, ast.FunctionCall):
            return self._compile_function(expression)
        if isinstance(expression, ast.IsNull):
            operand = self.compile(expression.operand)
            if expression.negated:
                return lambda row, ctx: operand(row, ctx) is not None
            return lambda row, ctx: operand(row, ctx) is None
        if isinstance(expression, ast.Between):
            return self._compile_between(expression)
        if isinstance(expression, ast.Like):
            return self._compile_like(expression)
        if isinstance(expression, ast.InList):
            return self._compile_in_list(expression)
        if isinstance(expression, ast.CaseWhen):
            return self._compile_case(expression)
        raise ExecutionError(f"cannot compile expression {expression!r}")

    # ------------------------------------------------------------------
    def _position(self, qid: int, column: str) -> Optional[int]:
        return self.layout.get((qid, column.upper()))

    def _compile_binary(self, expression: ast.BinaryOp) -> CompiledExpression:
        left = self.compile(expression.left)
        right = self.compile(expression.right)
        op = expression.op
        if op == "AND":
            return lambda row, ctx: sql_and(left(row, ctx), right(row, ctx))
        if op == "OR":
            return lambda row, ctx: sql_or(left(row, ctx), right(row, ctx))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, ctx: _compare(op, left(row, ctx),
                                             right(row, ctx))
        return lambda row, ctx: _arith(op, left(row, ctx), right(row, ctx))

    def _compile_function(self,
                          expression: ast.FunctionCall) -> CompiledExpression:
        name = expression.name.upper()
        function = SCALAR_FUNCTIONS.get(name)
        if function is None:
            raise ExecutionError(f"unknown function {name!r}")
        args = [self.compile(a) for a in expression.args]
        return lambda row, ctx: function(*(a(row, ctx) for a in args))

    def _compile_between(self,
                         expression: ast.Between) -> CompiledExpression:
        operand = self.compile(expression.operand)
        low = self.compile(expression.low)
        high = self.compile(expression.high)

        def run(row, ctx):
            value = operand(row, ctx)
            result = sql_and(_compare(">=", value, low(row, ctx)),
                             _compare("<=", value, high(row, ctx)))
            return sql_not(result) if expression.negated else result
        return run

    def _compile_like(self, expression: ast.Like) -> CompiledExpression:
        operand = self.compile(expression.operand)
        if isinstance(expression.pattern, ast.Literal) \
                and isinstance(expression.pattern.value, str):
            regex = like_to_regex(expression.pattern.value)

            def run_static(row, ctx):
                value = operand(row, ctx)
                if value is None:
                    return None
                matched = regex.match(value) is not None
                return not matched if expression.negated else matched
            return run_static

        pattern = self.compile(expression.pattern)

        def run_dynamic(row, ctx):
            value = operand(row, ctx)
            pattern_value = pattern(row, ctx)
            if value is None or pattern_value is None:
                return None
            matched = like_to_regex(pattern_value).match(value) is not None
            return not matched if expression.negated else matched
        return run_dynamic

    def _compile_in_list(self, expression: ast.InList) -> CompiledExpression:
        operand = self.compile(expression.operand)
        items = [self.compile(i) for i in expression.items]

        def run(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row, ctx)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return False if expression.negated else True
            if saw_null:
                return None
            return True if expression.negated else False
        return run

    def _compile_case(self, expression: ast.CaseWhen) -> CompiledExpression:
        whens = [(self.compile(c), self.compile(r))
                 for c, r in expression.whens]
        default = (self.compile(expression.default)
                   if expression.default is not None else None)

        def run(row, ctx):
            for condition, result in whens:
                if condition(row, ctx) is True:
                    return result(row, ctx)
            return default(row, ctx) if default is not None else None
        return run


def compile_predicate(expression: ast.Expression,
                      layout: Layout) -> CompiledExpression:
    """Compile a predicate; callers keep rows where the result is True."""
    return ExpressionCompiler(layout).compile(expression)


def compile_expressions(expressions: list[ast.Expression],
                        layout: Layout) -> list[CompiledExpression]:
    compiler = ExpressionCompiler(layout)
    return [compiler.compile(e) for e in expressions]
