"""Query evaluation system: expression compiler, pipeline, DML."""

from repro.executor.dml import DMLExecutor
from repro.executor.expressions import (RID_COLUMN, ExpressionCompiler,
                                        compile_expressions,
                                        compile_predicate, like_to_regex,
                                        sql_and, sql_not, sql_or)
from repro.executor.runtime import (CompiledQuery, PipelineOptions,
                                    QueryPipeline, QueryResult)

__all__ = [
    "DMLExecutor",
    "RID_COLUMN", "ExpressionCompiler", "compile_expressions",
    "compile_predicate", "like_to_regex", "sql_and", "sql_not", "sql_or",
    "CompiledQuery", "PipelineOptions", "QueryPipeline", "QueryResult",
]
