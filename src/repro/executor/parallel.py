"""Morsel-driven multi-process parallel execution.

CPython threads only interleave, so one query never used more than one
core.  This module breaks that ceiling with a coordinator/worker
design in the spirit of the morsel-driven papers:

* The planner wraps decomposable single-output SELECT plans in a
  :class:`~repro.optimizer.plan.Gather` node (``parallel_degree > 1``)
  and marks the *driving* table scan with an
  :class:`~repro.optimizer.plan.Exchange`.
* At execution, the engine's :class:`ParallelRuntime` forks a
  persistent pool of worker processes (copy-on-write replicas of the
  committed state — forking only happens under the shared statement
  latch with no uncommitted writer, so the physical image *is* the
  committed image), carves the driving table into partition-aligned
  morsels, and fans them out over per-worker task queues.
* Each worker compiles the same statement through a **fresh**
  :class:`~repro.executor.runtime.QueryPipeline` (fresh locks — never
  the coordinator's, whose plan-cache lock may be held by another
  thread at fork time).  Compilation is deterministic, so coordinator
  and worker agree on the plan shape; the worker re-derives the
  decomposition, verifies the driving table, and executes its subtree
  with the driving scan restricted to one morsel at a time.
* The coordinator merges partials back into the ordinary
  ``execute_batches`` stream protocol: concatenation for pipelined
  plans, a k-way merge for ORDER BY runs, and accumulator-state
  re-aggregation (COUNT/SUM/AVG/MIN/MAX, DISTINCT by set union) for
  GROUP BY.

Every fallback path — no fork, writer active, non-decomposable plan,
small table, pool trouble, worker plan mismatch — lands on the serial
child, which is bit-identical to the plan a serial engine produces.
"""

from __future__ import annotations

import heapq
import os
import queue
import threading
import traceback
from dataclasses import dataclass
from functools import cmp_to_key
from typing import Iterator, Optional

from repro.errors import ParallelExecutionError
from repro.optimizer.plan import (Aggregate, Dedup, Exchange, Filter, Gather,
                                  HashJoin, IndexNestedLoopJoin,
                                  LeftOuterJoin, Limit, NestedLoopJoin,
                                  PlanNode, Project, SemiJoin, Sort,
                                  TableScan)

__all__ = ["Decomposition", "ParallelRuntime", "decompose", "wrap_parallel"]

#: Test hook: set to a string in the parent before the pool forks and
#: every worker raises ``RuntimeError(value)`` on its first morsel —
#: the only way to exercise worker-error propagation from outside.
_WORKER_FAULT: Optional[str] = None

#: Minimum rows per morsel; below this, fan-out overhead dominates.
MIN_MORSEL_ROWS = 512

#: Morsels per worker to aim for (pull-based balancing granularity).
MORSELS_PER_WORKER = 4


# ----------------------------------------------------------------------
# Plan decomposition
# ----------------------------------------------------------------------
@dataclass
class Decomposition:
    """How a plan splits across the process boundary.

    ``chain`` holds the coordinator-side operators top-down (only
    ``Limit``/``Dedup``/``Project``/``Filter`` ever appear); workers
    execute ``worker_root`` with ``driving`` restricted to one morsel;
    ``merge`` names the coordinator's combine step.
    """

    chain: list
    merge: str  # "concat" | "sort" | "agg"
    worker_root: PlanNode
    driving: TableScan


_CHAIN_TYPES = (Limit, Dedup, Project, Filter)
_LEFT_JOINS = (HashJoin, NestedLoopJoin, LeftOuterJoin,
               IndexNestedLoopJoin)


def decompose(root: PlanNode) -> Optional[Decomposition]:
    """Split ``root`` into a coordinator chain, a merge step, and a
    worker subtree, or return None when the plan must stay serial.

    The walk is deterministic, so the coordinator and each worker
    (which compiles the same statement independently) derive the same
    decomposition from their structurally-identical plans.
    """
    node = root
    if isinstance(node, Gather):
        node = node.child
    stripped = node
    chain: list[PlanNode] = []
    while isinstance(node, _CHAIN_TYPES):
        chain.append(node)
        node = node.child
    if isinstance(node, Sort):
        merge = "sort"
        worker_root: PlanNode = node
        below = node.child
    elif isinstance(node, Aggregate):
        merge = "agg"
        worker_root = node
        below = node.child
    else:
        # Pipelined plan: workers run everything below the lowest
        # Limit/Dedup (those must see the union of all morsels); a
        # pure Filter/Project chain runs entirely in the workers.
        merge = "concat"
        cut = None
        for index, link in enumerate(chain):
            if isinstance(link, (Limit, Dedup)):
                cut = index
        if cut is None:
            chain = []
            worker_root = stripped
        else:
            worker_root = chain[cut].child
            chain = chain[:cut + 1]
        below = worker_root
    # The driving spine: the one input stream that may be restricted
    # per-morsel.  Join build/inner sides stay full (replicated in each
    # worker's copy-on-write image).  Any blocking or sharing operator
    # on the spine (Sort, Dedup, Spool, SetOperation, IndexScan...)
    # rejects the plan — restricting below it would be incorrect.
    while not isinstance(below, TableScan):
        if isinstance(below, (Filter, Project, Exchange)):
            below = below.child
        elif isinstance(below, _LEFT_JOINS):
            below = below.left
        elif isinstance(below, SemiJoin):
            below = below.outer
        else:
            return None
    return Decomposition(chain, merge, worker_root, below)


def wrap_parallel(node: PlanNode, degree: int) -> Optional[PlanNode]:
    """Planner hook: wrap a decomposable plan in Gather (and mark the
    driving scan with Exchange for EXPLAIN); None when not eligible."""
    decomp = decompose(node)
    if decomp is None:
        return None
    _splice_exchange(decomp)
    return Gather(node, degree)


def _splice_exchange(decomp: Decomposition) -> None:
    driving = decomp.driving
    parent = None
    attr = None
    node: PlanNode = decomp.worker_root
    while node is not driving:
        for name in ("child", "left", "outer"):
            step = getattr(node, name, None)
            if isinstance(step, PlanNode):
                if isinstance(node, Exchange):
                    return  # already marked (cached/replanned tree)
                parent, attr, node = node, name, step
                break
        else:
            return
    if parent is None or isinstance(parent, Exchange):
        return
    setattr(parent, attr, Exchange(driving))


# ----------------------------------------------------------------------
# Coordinator-side stream combinators
# ----------------------------------------------------------------------
def _rebatch(rows, batch_size: int) -> Iterator[list]:
    batch: list = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def _filter_stream(node: Filter, stream, ctx) -> Iterator[list]:
    batch_predicate = node.batch_predicate
    predicate = node.predicate
    for batch in stream:
        if batch_predicate is not None:
            kept = batch_predicate(batch, ctx)
        else:
            kept = [row for row in batch if predicate(row, ctx) is True]
        if kept:
            yield kept


def _project_stream(node: Project, stream, ctx) -> Iterator[list]:
    fns = node.fns
    for batch in stream:
        yield [tuple(fn(row, ctx) for fn in fns) for row in batch]


def _dedup_stream(stream) -> Iterator[list]:
    seen: set = set()
    add = seen.add
    for batch in stream:
        fresh = []
        for row in batch:
            if row not in seen:
                add(row)
                fresh.append(row)
        if fresh:
            yield fresh


def _limit_stream(node: Limit, stream) -> Iterator[list]:
    limit = node.limit
    if limit is not None and limit <= 0:
        return
    to_skip = node.offset
    remaining = limit
    for batch in stream:
        if to_skip:
            if len(batch) <= to_skip:
                to_skip -= len(batch)
                continue
            batch = batch[to_skip:]
            to_skip = 0
        if remaining is None:
            yield batch
            continue
        if len(batch) > remaining:
            batch = batch[:remaining]
        remaining -= len(batch)
        yield batch
        if remaining == 0:
            return


def _apply_chain(chain: list, stream, ctx) -> Iterator[list]:
    """Replay the coordinator-side operator chain (bottom-up) over a
    stream of merged batches, mirroring each operator's batch
    semantics exactly."""
    for node in reversed(chain):
        if isinstance(node, Filter):
            stream = _filter_stream(node, stream, ctx)
        elif isinstance(node, Project):
            stream = _project_stream(node, stream, ctx)
        elif isinstance(node, Dedup):
            stream = _dedup_stream(stream)
        elif isinstance(node, Limit):
            stream = _limit_stream(node, stream)
        else:  # pragma: no cover - decompose() only admits the above
            raise ParallelExecutionError(
                f"unexpected coordinator operator {node.describe()}")
    return stream


def _kway_merge(sort_node: Sort, runs: list[list], ctx):
    """Merge per-morsel sorted runs under the Sort node's order: per
    key ascending is NULLs-last, descending NULLs-first — exactly what
    the serial multi-pass stable sort produces."""
    key_fns = sort_node.key_fns
    descending = sort_node.descending

    def compare(a, b) -> int:
        for fn, desc in zip(key_fns, descending):
            va = fn(a, ctx)
            vb = fn(b, ctx)
            if va is None:
                c = 0 if vb is None else 1
            elif vb is None:
                c = -1
            elif va < vb:
                c = -1
            elif vb < va:
                c = 1
            else:
                c = 0
            if c:
                return -c if desc else c
        return 0

    return heapq.merge(*runs, key=cmp_to_key(compare))


class _WorkerMismatch(Exception):
    """Worker compiled a structurally different plan; go serial."""


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_execute(pipeline, entry: dict, morsel: tuple):
    state = entry.get("compiled")
    if state is None:
        if _WORKER_FAULT is not None:
            raise RuntimeError(_WORKER_FAULT)
        compiled, _bindings = pipeline.compile_select_cached(
            entry["statement"])
        plan = compiled.plan
        _stream, root = plan.single_output()
        if plan.scalar_plans:
            raise _WorkerMismatch("worker plan has scalar subqueries")
        decomp = decompose(root)
        if decomp is None:
            raise _WorkerMismatch("worker plan is not decomposable")
        if decomp.driving.table.name != entry["driving"]:
            raise _WorkerMismatch(
                f"worker drives {decomp.driving.table.name!r}, "
                f"coordinator drives {entry['driving']!r}")
        ctx = plan.new_context()
        ctx.parameters = dict(entry["params"])
        # Morsel-invariant state is cached across morsels of one
        # query: hash-join builds explicitly, spools implicitly
        # (spool_cache is never reset between morsels).
        ctx.join_build_cache = {}
        state = (decomp, ctx)
        entry["compiled"] = state
    decomp, ctx = state
    ctx.scan_ranges[id(decomp.driving)] = morsel
    batch_size = entry["batch_size"]
    if decomp.merge == "agg":
        return "agg", decomp.worker_root.partial_states(ctx, batch_size)
    rows = [row
            for batch in decomp.worker_root.execute_batches(ctx, batch_size)
            for row in batch]
    return ("sorted" if decomp.merge == "sort" else "rows"), rows


def _worker_main(catalog, stats, pipeline_options,
                 task_queue, result_queue) -> None:
    """Entry point of a forked worker process.

    Builds a fresh pipeline over the inherited (copy-on-write)
    committed state; locks inherited from the parent are never
    touched.  Exits via ``os._exit`` so inherited WAL buffers and
    atexit hooks never run twice.
    """
    from repro.executor.runtime import QueryPipeline

    pipeline = QueryPipeline(catalog, stats, options=pipeline_options)
    queries: dict[int, dict] = {}
    forgotten: set[int] = set()
    while True:
        try:
            task = task_queue.get()
        except (EOFError, OSError):  # pragma: no cover - parent died
            os._exit(0)
        kind = task[0]
        if kind == "stop":
            os._exit(0)
        elif kind == "forget":
            forgotten.add(task[1])
            queries.pop(task[1], None)
        elif kind == "query":
            _, qid, statement, params, driving, batch_size = task
            queries[qid] = {"statement": statement, "params": params,
                            "driving": driving, "batch_size": batch_size}
        elif kind == "morsel":
            _, qid, seq, morsel = task
            if qid in forgotten:
                continue
            entry = queries.get(qid)
            if entry is None:
                result_queue.put((qid, seq, "error",
                                  f"morsel for unknown query {qid}"))
                continue
            try:
                payload_kind, payload = _worker_execute(pipeline, entry,
                                                        morsel)
            except _WorkerMismatch as exc:
                result_queue.put((qid, seq, "mismatch", str(exc)))
            except Exception:
                result_queue.put((qid, seq, "error",
                                  traceback.format_exc()))
            else:
                result_queue.put((qid, seq, payload_kind, payload))


# ----------------------------------------------------------------------
# Coordinator runtime
# ----------------------------------------------------------------------
class _Pool:
    __slots__ = ("procs", "task_queues", "result_queue", "key")

    def __init__(self, procs, task_queues, result_queue, key):
        self.procs = procs
        self.task_queues = task_queues
        self.result_queue = result_queue
        self.key = key


class ParallelRuntime:
    """The engine's coordinator: owns the forked worker pool and turns
    Gather nodes into fan-out/merge executions.

    One parallel query runs at a time (``_exec_lock``); a second
    concurrent Gather simply executes serially — correct either way,
    and it keeps result routing trivial.  The pool is re-forked
    whenever the committed state has moved on since the last fork
    (schema version, any table's physical version, statistics epochs);
    mutations only happen under the exclusive statement latch while
    forks happen under the shared one, so a fork never observes a
    half-applied statement.
    """

    def __init__(self, engine):
        self.engine = engine
        self._exec_lock = threading.Lock()
        self._pool: Optional[_Pool] = None
        self._qid = 0
        self._disabled = not hasattr(os, "fork")
        #: Seconds without any worker result before the query is
        #: declared wedged (workers are liveness-checked 4x/second).
        self.result_timeout = 300.0
        self.counters = {
            "parallel_queries": 0,
            "serial_fallbacks": 0,
            "morsels_dispatched": 0,
            "morsels_cancelled": 0,
            "pool_forks": 0,
            "worker_mismatches": 0,
        }

    # -- pool lifecycle ------------------------------------------------
    def _degree(self) -> int:
        return max(int(self.engine.pipeline_options.planner.parallel_degree),
                   1)

    def _freshness_key(self) -> tuple:
        catalog = self.engine.catalog
        stats = self.engine.stats
        return (catalog.schema_version,
                sum(table.version for table in catalog.tables()),
                stats.global_epoch,
                sum(stats.table_epochs().values()))

    def _ensure_pool(self) -> Optional[_Pool]:
        """The current pool, re-forked if the committed state moved on
        or a worker died.  Caller holds ``_exec_lock``."""
        if self._disabled:
            return None
        key = self._freshness_key()
        pool = self._pool
        if pool is not None and pool.key == key \
                and all(proc.is_alive() for proc in pool.procs):
            return pool
        self._shutdown_pool()
        import multiprocessing

        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self._disabled = True
            return None
        degree = self._degree()
        # Queues must be created fresh for every pool generation: a
        # queue that lived across an earlier fork may have a feeder
        # thread mid-write at fork time.
        result_queue = mp.Queue()
        task_queues = [mp.Queue() for _ in range(degree)]
        procs = []
        try:
            for index, task_queue in enumerate(task_queues):
                proc = mp.Process(
                    target=_worker_main,
                    args=(self.engine.catalog, self.engine.stats,
                          self.engine.pipeline_options, task_queue,
                          result_queue),
                    daemon=True, name=f"repro-parallel-{index}")
                proc.start()
                procs.append(proc)
        except OSError:  # pragma: no cover - fork failure (rlimit)
            for proc in procs:
                proc.terminate()
            self._disabled = True
            return None
        self.counters["pool_forks"] += 1
        self._pool = _Pool(procs, task_queues, result_queue, key)
        return self._pool

    def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for task_queue in pool.task_queues:
            try:
                task_queue.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for proc in pool.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in pool.task_queues + [pool.result_queue]:
            q.close()
            q.cancel_join_thread()

    def shutdown(self) -> None:
        """Deterministically stop the worker pool (Engine.close)."""
        acquired = self._exec_lock.acquire(timeout=5.0)
        try:
            self._shutdown_pool()
        finally:
            if acquired:
                self._exec_lock.release()

    # -- the Gather entry point ----------------------------------------
    def execute_gather(self, gather: Gather, ctx,
                       batch_size: int):
        """Batches for a Gather node, or None to decline (the Gather
        then runs its child serially).

        Cheap eligibility checks happen here; forking, dispatch, and
        merging happen lazily inside the returned generator so an
        unconsumed stream costs nothing.
        """
        if self._disabled or self.engine.closed:
            return None
        if ctx.statement is None or ctx.scalar_plans:
            return None
        if self.engine._writer_latch.owner is not None:
            # Uncommitted writes live in the physical state; a fork
            # would replicate them.  Read views keep serial reads
            # correct, so fall back.
            self.counters["serial_fallbacks"] += 1
            return None
        decomp = decompose(gather.child)
        if decomp is None:
            return None
        threshold = max(
            int(self.engine.pipeline_options.planner.parallel_row_threshold),
            2)
        if len(decomp.driving.table) < threshold:
            return None
        return self._run(gather, decomp, ctx, batch_size)

    def _run(self, gather: Gather, decomp: Decomposition, ctx,
             batch_size: int):
        done = False
        state = None
        if self._exec_lock.acquire(blocking=False):
            try:
                state = self._dispatch(decomp, ctx, batch_size)
                if state is not None:
                    try:
                        yield from self._merged_stream(decomp, state, ctx,
                                                       batch_size)
                        done = True
                    except _WorkerMismatch:
                        self.counters["worker_mismatches"] += 1
            finally:
                if state is not None:
                    self._finish(state)
                self._exec_lock.release()
        if done:
            self.counters["parallel_queries"] += 1
            return
        self.counters["serial_fallbacks"] += 1
        yield from gather.child.execute_batches(ctx, batch_size)

    # -- dispatch / collect / merge ------------------------------------
    def _dispatch(self, decomp: Decomposition, ctx,
                  batch_size: int) -> Optional[dict]:
        pool = self._ensure_pool()
        if pool is None:
            return None
        table = decomp.driving.table
        target = max(MIN_MORSEL_ROWS,
                     len(table) // (self._degree() * MORSELS_PER_WORKER))
        morsels = table.morsels(target)
        if len(morsels) < 2:
            return None
        # Drop stale results a cancelled earlier query left behind.
        while True:
            try:
                pool.result_queue.get_nowait()
            except queue.Empty:
                break
        self._qid += 1
        qid = self._qid
        header = ("query", qid, ctx.statement, dict(ctx.parameters),
                  table.name, batch_size)
        for task_queue in pool.task_queues:
            task_queue.put(header)
        for seq, morsel in enumerate(morsels):
            pool.task_queues[seq % len(pool.task_queues)].put(
                ("morsel", qid, seq, morsel))
        self.counters["morsels_dispatched"] += len(morsels)
        return {"qid": qid, "expected": len(morsels), "received": 0,
                "pool": pool}

    def _collect(self, state: dict) -> Iterator:
        """Yield worker payloads as they arrive (any morsel order)."""
        pool = state["pool"]
        waited = 0.0
        while state["received"] < state["expected"]:
            try:
                item = pool.result_queue.get(timeout=0.25)
            except queue.Empty:
                dead = [proc.name for proc in pool.procs
                        if not proc.is_alive()]
                if dead:
                    self._shutdown_pool()
                    raise ParallelExecutionError(
                        f"parallel worker(s) {', '.join(dead)} died "
                        f"mid-query; pool torn down, retry runs serially"
                    ) from None
                waited += 0.25
                if waited > self.result_timeout:
                    raise ParallelExecutionError(
                        f"no worker result within {self.result_timeout}s "
                        f"({state['received']}/{state['expected']} morsels "
                        f"done)") from None
                continue
            waited = 0.0
            qid, _seq, kind, payload = item
            if qid != state["qid"]:
                continue  # stale result of a cancelled query
            state["received"] += 1
            if kind == "error":
                raise ParallelExecutionError(
                    "parallel worker failed; original worker traceback:\n"
                    + payload)
            if kind == "mismatch":
                raise _WorkerMismatch(payload)
            yield payload

    def _merged_stream(self, decomp: Decomposition, state: dict, ctx,
                       batch_size: int) -> Iterator[list]:
        payloads = self._collect(state)
        if decomp.merge == "concat":
            raw = (payload for payload in payloads if payload)
            yield from _apply_chain(decomp.chain, raw, ctx)
        elif decomp.merge == "sort":
            runs = [payload for payload in payloads if payload]
            merged = _kway_merge(decomp.worker_root, runs, ctx)
            yield from _apply_chain(decomp.chain,
                                    _rebatch(merged, batch_size), ctx)
        else:  # agg
            aggregate: Aggregate = decomp.worker_root
            groups: dict[tuple, list] = {}
            order: list[tuple] = []
            for partial in payloads:
                for key, states in partial:
                    into = groups.get(key)
                    if into is None:
                        groups[key] = states
                        order.append(key)
                    else:
                        for acc, other in zip(into, states):
                            aggregate.merge_state(acc, other)
            rows = aggregate._results(groups, order)
            yield from _apply_chain(decomp.chain,
                                    _rebatch(rows, batch_size), ctx)

    def _finish(self, state: dict) -> None:
        """Cancel whatever was not consumed: abandoned or early-exited
        streams broadcast a forget so queued morsels are skipped, not
        drained."""
        remaining = state["expected"] - state["received"]
        if remaining <= 0:
            return
        self.counters["morsels_cancelled"] += remaining
        pool = state["pool"]
        if self._pool is not pool:
            return  # pool already torn down
        for task_queue in pool.task_queues:
            try:
                task_queue.put(("forget", state["qid"]))
            except Exception:  # pragma: no cover - queue already broken
                pass
