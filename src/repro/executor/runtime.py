"""The compile-and-run pipeline for NF (plain SQL) queries.

Wires the Fig. 2 stages together: AST -> QGM (builder) -> query rewrite
(rule engine) -> plan optimization (planner) -> execution (plan
iterators).  The Database facade and the XNF translator both drive their
SQL-shaped work through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.optimizer.optimizer import (ExecutablePlan, Planner,
                                       PlannerOptions)
from repro.optimizer.plan import ExecutionContext
from repro.qgm.builder import QGMBuilder
from repro.qgm.model import Box, QGMGraph
from repro.rewrite.engine import RewriteContext, RuleEngine
from repro.rewrite.nf_rules import DEFAULT_NF_RULES, prune_unused_columns
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager


@dataclass
class QueryResult:
    """A completed homogeneous (single-stream) query result."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        try:
            position = [c.upper() for c in self.columns].index(name.upper())
        except ValueError:
            available = ", ".join(self.columns) or "<none>"
            raise KeyError(
                f"result has no column {name!r}; available columns: "
                f"{available}"
            ) from None
        return [row[position] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class CompiledQuery:
    """Everything the pipeline produced for one statement."""

    graph: QGMGraph
    plan: ExecutablePlan
    rewrite_context: Optional[RewriteContext] = None
    pruned_columns: int = 0


@dataclass
class PipelineOptions:
    """Stage toggles, exposed so benchmarks can ablate the rewrites.

    Batch-at-a-time execution is controlled through the nested planner
    options: ``PipelineOptions(planner=PlannerOptions(
    batch_execution=False))`` falls back to row-at-a-time Volcano
    iteration; ``PlannerOptions(batch_size=...)`` tunes the batch width.
    """

    apply_nf_rewrite: bool = True
    prune_columns: bool = True
    planner: PlannerOptions = field(default_factory=PlannerOptions)

    @property
    def batch_execution(self) -> bool:
        return self.planner.batch_execution

    @batch_execution.setter
    def batch_execution(self, enabled: bool) -> None:
        self.planner.batch_execution = enabled


class QueryPipeline:
    """AST -> result, reusing one catalog/statistics pair."""

    def __init__(self, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None,
                 options: Optional[PipelineOptions] = None,
                 xnf_component_resolver: Optional[
                     Callable[[str, str], Box]] = None):
        self.catalog = catalog
        self.stats = stats or StatisticsManager(catalog)
        self.options = options or PipelineOptions()
        self.xnf_component_resolver = xnf_component_resolver

    # ------------------------------------------------------------------
    def builder(self) -> QGMBuilder:
        return QGMBuilder(self.catalog, self.xnf_component_resolver)

    def build(self, statement: ast.SelectStatement) -> QGMGraph:
        return self.builder().build_select(statement)

    def rewrite(self, graph: QGMGraph) -> RewriteContext:
        engine = RuleEngine(DEFAULT_NF_RULES)
        return engine.run(graph, self.catalog)

    def compile_select(self, statement: ast.SelectStatement
                       ) -> CompiledQuery:
        graph = self.build(statement)
        return self.compile_graph(graph)

    def compile_graph(self, graph: QGMGraph) -> CompiledQuery:
        rewrite_context = None
        if self.options.apply_nf_rewrite:
            rewrite_context = self.rewrite(graph)
        pruned = 0
        if self.options.prune_columns:
            pruned = prune_unused_columns(graph)
        planner = Planner(self.catalog, self.stats, self.options.planner)
        plan = planner.plan(graph)
        return CompiledQuery(graph=graph, plan=plan,
                             rewrite_context=rewrite_context,
                             pruned_columns=pruned)

    # ------------------------------------------------------------------
    def run_select(self, statement: ast.SelectStatement,
                   ctx: Optional[ExecutionContext] = None) -> QueryResult:
        compiled = self.compile_select(statement)
        return self.run_compiled(compiled, ctx)

    @staticmethod
    def run_compiled(compiled: CompiledQuery,
                     ctx: Optional[ExecutionContext] = None) -> QueryResult:
        if ctx is None:
            ctx = compiled.plan.new_context()
        _stream, node = compiled.plan.single_output()
        rows = compiled.plan.run_node(node, ctx)
        return QueryResult(columns=list(node.columns), rows=rows)
