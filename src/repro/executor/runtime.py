"""Execution front-end for NF (plain SQL) queries.

Compilation lives in :mod:`repro.compiler.pipeline` — the one
CompilationPipeline all entry points share.  This module keeps the
execution half (running compiled plans, shaping results) and re-exports
the pipeline types under their historical names so existing callers and
tests keep working: ``QueryPipeline`` is now a thin facade that owns a
:class:`~repro.compiler.pipeline.CompilationPipeline` and delegates all
compile work to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.compiler.pipeline import (CompilationPipeline, CompilationTrace,
                                     CompiledQuery, PipelineOptions)
from repro.optimizer.plan import ExecutionContext
from repro.qgm.builder import QGMBuilder
from repro.qgm.model import Box, QGMGraph
from repro.rewrite.engine import RewriteContext
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager

__all__ = [
    "CompiledQuery", "PipelineOptions", "QueryPipeline", "QueryResult",
    "QueryStream",
]


@dataclass
class QueryResult:
    """A completed homogeneous (single-stream) query result."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        try:
            position = [c.upper() for c in self.columns].index(name.upper())
        except ValueError:
            available = ", ".join(self.columns) or "<none>"
            raise KeyError(
                f"result has no column {name!r}; available columns: "
                f"{available}"
            ) from None
        return [row[position] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class QueryStream:
    """A lazily-evaluated SELECT: batches are produced on demand.

    This is the cursor protocol's engine-side half — nothing executes
    until the first :meth:`next_batch` call, and each call advances the
    underlying batch executor by exactly one batch.  ``ctx`` is exposed
    so callers can read the instrumentation counters mid-stream (the
    easiest way to *prove* no full materialization happened before the
    first fetch).
    """

    def __init__(self, columns: list[str], batches, ctx: ExecutionContext):
        self.columns = list(columns)
        self.ctx = ctx
        self._batches = batches
        self._exhausted = False

    def next_batch(self) -> Optional[list[tuple]]:
        """The next non-empty batch of rows, or None when exhausted."""
        if self._exhausted:
            return None
        batch = next(self._batches, None)
        if batch is None:
            self._exhausted = True
        return batch

    def close(self) -> None:
        """Abandon the stream, releasing executor state deterministically.

        Closing the underlying generator runs its ``finally`` blocks
        *now* (operator cleanup, context managers) instead of whenever
        the garbage collector gets around to it — an abandoned
        half-consumed stream must not pin resources until collection.
        """
        self._exhausted = True
        batches, self._batches = self._batches, iter(())
        close = getattr(batches, "close", None)
        if close is not None:
            close()


class QueryPipeline:
    """AST -> result, reusing one catalog/statistics pair.

    Compilation delegates to the owned :attr:`compiler`
    (CompilationPipeline); this class adds plan execution and result
    shaping.
    """

    def __init__(self, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None,
                 options: Optional[PipelineOptions] = None,
                 xnf_component_resolver: Optional[
                     Callable[[str, str], Box]] = None):
        self.compiler = CompilationPipeline(
            catalog, stats=stats, options=options,
            xnf_component_resolver=xnf_component_resolver,
        )
        #: Engine-installed ParallelRuntime (or None).  Stamped onto
        #: execution contexts by run_select/stream_select so Gather
        #: nodes can fan out; internal contexts (DML qualification,
        #: scalar subplans, XNF assembly) never get it and stay serial.
        self.parallel_runtime = None

    # -- shared state (delegated) --------------------------------------
    @property
    def catalog(self) -> Catalog:
        return self.compiler.catalog

    @property
    def stats(self) -> StatisticsManager:
        return self.compiler.stats

    @property
    def options(self) -> PipelineOptions:
        return self.compiler.options

    @property
    def xnf_component_resolver(self):
        return self.compiler.xnf_component_resolver

    @property
    def plan_cache(self):
        return self.compiler.plan_cache

    # -- compile stages (delegated) ------------------------------------
    def builder(self) -> QGMBuilder:
        return self.compiler.builder()

    def build(self, statement: ast.SelectStatement) -> QGMGraph:
        return self.compiler.build_select(statement)

    def rewrite(self, graph: QGMGraph) -> RewriteContext:
        return self.compiler.rewrite_graph(graph)

    def compile_select(self, statement: ast.SelectStatement,
                       trace: Optional[CompilationTrace] = None
                       ) -> CompiledQuery:
        return self.compiler.compile_select(statement, trace=trace)

    def compile_graph(self, graph: QGMGraph) -> CompiledQuery:
        return self.compiler.compile_qgm(graph)

    def compile_parameterized(self, parameterized) -> CompiledQuery:
        return self.compiler.compile_parameterized(parameterized)

    def compile_select_cached(self, statement: ast.SelectStatement
                              ) -> tuple[CompiledQuery, dict]:
        return self.compiler.compile_select_cached(statement)

    def cached_compile(self, key: tuple, compile_fn,
                       tables_of=None) -> object:
        return self.compiler.cached_compile(key, compile_fn,
                                            tables_of=tables_of)

    def _options_signature(self) -> tuple:
        return self.compiler._options_signature()

    @staticmethod
    def graph_tables(graph: QGMGraph) -> list[str]:
        return CompilationPipeline.graph_tables(graph)

    # -- execution -----------------------------------------------------
    def run_select(self, statement: ast.SelectStatement,
                   ctx: Optional[ExecutionContext] = None,
                   params=None) -> QueryResult:
        compiled, bindings = self.compile_select_cached(statement)
        if ctx is None:
            ctx = compiled.plan.new_context()
        ctx.bind_parameters(params)
        if bindings:
            ctx.parameters.update(bindings)
        ctx.statement = statement
        ctx.parallel_runtime = self.parallel_runtime
        return self.run_compiled(compiled, ctx)

    @staticmethod
    def run_compiled(compiled: CompiledQuery,
                     ctx: Optional[ExecutionContext] = None) -> QueryResult:
        if ctx is None:
            ctx = compiled.plan.new_context()
        _stream, node = compiled.plan.single_output()
        rows = compiled.plan.run_node(node, ctx)
        return QueryResult(columns=list(node.columns), rows=rows)

    # -- streaming execution (the session/cursor surface) --------------
    def stream_select(self, statement: ast.SelectStatement,
                      params=None,
                      batch_size: Optional[int] = None) -> QueryStream:
        """Compile a SELECT and return a lazy batch stream.

        Unlike :meth:`run_select` nothing is executed here; the caller
        pulls batches one at a time (``Cursor.fetchmany`` rides this).
        ``batch_size`` overrides the planner's default batch width for
        this stream only — a per-session execution option.
        """
        compiled, bindings = self.compile_select_cached(statement)
        ctx = compiled.plan.new_context()
        ctx.bind_parameters(params)
        if bindings:
            ctx.parameters.update(bindings)
        ctx.statement = statement
        ctx.parallel_runtime = self.parallel_runtime
        return self.stream_compiled(compiled, ctx, batch_size=batch_size)

    @staticmethod
    def stream_compiled(compiled: CompiledQuery, ctx: ExecutionContext,
                        batch_size: Optional[int] = None) -> QueryStream:
        plan = compiled.plan
        _stream, node = plan.single_output()
        if batch_size is None:
            batch_size = plan.batch_size
        batch_size = batch_size if batch_size >= 1 else 1
        if plan.batch_execution:
            batches = node.execute_batches(ctx, batch_size)
        else:
            batches = _chunk_rows(node.execute(ctx), batch_size)
        return QueryStream(list(node.columns), batches, ctx)


def _chunk_rows(rows, batch_size: int):
    """Adapt a row-at-a-time iterator to the batch protocol.

    Closing the chunker (an abandoned QueryStream) must close the
    source iterator too — a parallel execution underneath cancels its
    outstanding morsels from its own cleanup, and it must not be left
    to garbage collection to run."""
    try:
        chunk: list[tuple] = []
        for row in rows:
            chunk.append(row)
            if len(chunk) >= batch_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk
    finally:
        close = getattr(rows, "close", None)
        if close is not None:
            close()
