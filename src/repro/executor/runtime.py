"""The compile-and-run pipeline for NF (plain SQL) queries.

Wires the Fig. 2 stages together: AST -> QGM (builder) -> query rewrite
(rule engine) -> plan optimization (planner) -> execution (plan
iterators).  The Database facade and the XNF translator both drive their
SQL-shaped work through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.executor.plan_cache import CacheInfo, PlanCache, parameterize_select
from repro.optimizer.optimizer import (ExecutablePlan, Planner,
                                       PlannerOptions)
from repro.optimizer.plan import ExecutionContext
from repro.qgm.builder import QGMBuilder
from repro.qgm.model import Box, QGMGraph
from repro.rewrite.engine import RewriteContext, RuleEngine
from repro.rewrite.nf_rules import DEFAULT_NF_RULES, prune_unused_columns
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.stats import StatisticsManager


@dataclass
class QueryResult:
    """A completed homogeneous (single-stream) query result."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        try:
            position = [c.upper() for c in self.columns].index(name.upper())
        except ValueError:
            available = ", ".join(self.columns) or "<none>"
            raise KeyError(
                f"result has no column {name!r}; available columns: "
                f"{available}"
            ) from None
        return [row[position] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class CompiledQuery:
    """Everything the pipeline produced for one statement."""

    graph: QGMGraph
    plan: ExecutablePlan
    rewrite_context: Optional[RewriteContext] = None
    pruned_columns: int = 0


@dataclass
class PipelineOptions:
    """Stage toggles, exposed so benchmarks can ablate the rewrites.

    Batch-at-a-time execution is controlled through the nested planner
    options: ``PipelineOptions(planner=PlannerOptions(
    batch_execution=False))`` falls back to row-at-a-time Volcano
    iteration; ``PlannerOptions(batch_size=...)`` tunes the batch width.
    """

    apply_nf_rewrite: bool = True
    prune_columns: bool = True
    #: Capacity of the parameterized plan cache (entries); 0 disables
    #: caching, so every statement recompiles through the full pipeline.
    plan_cache_size: int = 256
    planner: PlannerOptions = field(default_factory=PlannerOptions)

    @property
    def batch_execution(self) -> bool:
        return self.planner.batch_execution

    @batch_execution.setter
    def batch_execution(self, enabled: bool) -> None:
        self.planner.batch_execution = enabled


class QueryPipeline:
    """AST -> result, reusing one catalog/statistics pair."""

    def __init__(self, catalog: Catalog,
                 stats: Optional[StatisticsManager] = None,
                 options: Optional[PipelineOptions] = None,
                 xnf_component_resolver: Optional[
                     Callable[[str, str], Box]] = None):
        self.catalog = catalog
        # A self-created manager subscribes to the delta protocol so DML
        # through this pipeline invalidates statistics automatically.
        self.stats = stats or StatisticsManager(catalog, subscribe=True)
        self.options = options or PipelineOptions()
        self.xnf_component_resolver = xnf_component_resolver
        self.plan_cache = PlanCache(self.options.plan_cache_size)

    # ------------------------------------------------------------------
    def builder(self) -> QGMBuilder:
        return QGMBuilder(self.catalog, self.xnf_component_resolver)

    def build(self, statement: ast.SelectStatement) -> QGMGraph:
        return self.builder().build_select(statement)

    def rewrite(self, graph: QGMGraph) -> RewriteContext:
        engine = RuleEngine(DEFAULT_NF_RULES)
        return engine.run(graph, self.catalog)

    def compile_select(self, statement: ast.SelectStatement
                       ) -> CompiledQuery:
        graph = self.build(statement)
        return self.compile_graph(graph)

    def compile_graph(self, graph: QGMGraph) -> CompiledQuery:
        rewrite_context = None
        if self.options.apply_nf_rewrite:
            rewrite_context = self.rewrite(graph)
        pruned = 0
        if self.options.prune_columns:
            pruned = prune_unused_columns(graph)
        planner = Planner(self.catalog, self.stats, self.options.planner)
        plan = planner.plan(graph)
        return CompiledQuery(graph=graph, plan=plan,
                             rewrite_context=rewrite_context,
                             pruned_columns=pruned)

    # ------------------------------------------------------------------
    # Plan-cache integration
    # ------------------------------------------------------------------
    def _options_signature(self) -> tuple:
        """The option values a compiled plan depends on; part of the
        cache key so toggling a knob never serves a stale plan."""
        planner = self.options.planner
        return (self.options.apply_nf_rewrite, self.options.prune_columns,
                planner.use_indexes, planner.share_common_subexpressions,
                planner.batch_execution, planner.batch_size)

    def _stats_view(self, table_name: str) -> tuple[int, int]:
        """(table epoch, live cardinality) — what cached entries over
        this table are validated against.  Cardinality -1 when the
        table is gone (the schema version catches that anyway)."""
        name = table_name.upper()
        live = len(self.catalog.table(name)) \
            if self.catalog.has_table(name) else -1
        return self.stats.table_epoch(name), live

    def _on_stats_drift(self, table_name: str) -> None:
        """Lookup detected direct-storage drift the delta protocol
        never saw: invalidate the table's statistics (bumping its
        epoch, so sibling cached plans fall too)."""
        self.stats.invalidate(table_name)

    @staticmethod
    def graph_tables(graph: QGMGraph) -> list[str]:
        """The base tables a compiled graph reads (for cache
        validation keys)."""
        from repro.qgm.model import BaseBox
        return sorted({box.table.name for box in graph.all_boxes()
                       if isinstance(box, BaseBox)})

    def compile_parameterized(self, parameterized) -> CompiledQuery:
        """Compile a pre-parameterized SELECT through the plan cache.

        Single source of truth for the SELECT cache key shape — both
        the ad-hoc path (:meth:`compile_select_cached`) and prepared
        statements go through here.
        """
        key = ("select", parameterized.statement,
               self._options_signature())
        return self.cached_compile(
            key,
            lambda: self.compile_select(parameterized.statement),
            tables_of=lambda compiled: self.graph_tables(compiled.graph),
        )

    def compile_select_cached(self, statement: ast.SelectStatement
                              ) -> tuple[CompiledQuery, dict]:
        """Compile through the plan cache.

        The statement is auto-parameterized (literals lifted into
        synthetic parameters) to form the cache key; returns the
        compiled query plus the synthetic bindings to install in the
        execution context.  With the cache disabled this falls through
        to a plain compile with no lifting.
        """
        if not self.plan_cache.enabled:
            self.plan_cache.last_info = CacheInfo(
                status="bypass", reason="plan cache disabled")
            return self.compile_select(statement), {}
        parameterized = parameterize_select(statement)
        return self.compile_parameterized(parameterized), \
            parameterized.bindings

    def cached_compile(self, key: tuple, compile_fn,
                       tables_of=None) -> object:
        """Generic read-through for compiled artifacts (SELECT plans,
        XNF executables, DML qualification plans) sharing this
        pipeline's cache and invalidation rules.  ``tables_of(value)``
        names the base tables the artifact reads, for per-table
        statistics validation."""
        if not self.plan_cache.enabled:
            self.plan_cache.last_info = CacheInfo(
                status="bypass", reason="plan cache disabled")
            return compile_fn()
        value = self.plan_cache.get_or_compile(
            key, self.catalog.schema_version, self._stats_view,
            compile_fn, tables_of=tables_of,
            on_drift=self._on_stats_drift,
        )
        # Display-only: EXPLAIN's cache section reports the manager's
        # total epoch alongside the schema version.
        self.plan_cache.last_info.stats_epoch = self.stats.epoch
        return value

    # ------------------------------------------------------------------
    def run_select(self, statement: ast.SelectStatement,
                   ctx: Optional[ExecutionContext] = None,
                   params=None) -> QueryResult:
        compiled, bindings = self.compile_select_cached(statement)
        if ctx is None:
            ctx = compiled.plan.new_context()
        ctx.bind_parameters(params)
        if bindings:
            ctx.parameters.update(bindings)
        return self.run_compiled(compiled, ctx)

    @staticmethod
    def run_compiled(compiled: CompiledQuery,
                     ctx: Optional[ExecutionContext] = None) -> QueryResult:
        if ctx is None:
            ctx = compiled.plan.new_context()
        _stream, node = compiled.plan.single_output()
        rows = compiled.plan.run_node(node, ctx)
        return QueryResult(columns=list(node.columns), rows=rows)
