"""Prepared statements' engine room: the auto-parameterizing plan cache.

Starburst compiled a query once and stored the plan for repeated
execution ("compile once, execute many"); our reproduction used to
re-run the whole Fig. 2 pipeline — parse -> QGM -> rewrite -> plan —
on every ``db.query()``.  This module adds the missing layer:

* :func:`parameterize` lifts the literals of an ad-hoc statement into
  synthetic :class:`~repro.sql.ast.Parameter` markers, so
  ``SELECT ... WHERE id = 7`` and ``... WHERE id = 8`` normalize to the
  same *statement fingerprint* and share one compiled plan.  The lifted
  values are returned alongside and bound into the
  :class:`~repro.optimizer.plan.ExecutionContext` at run time.
* :class:`PlanCache` is a bounded LRU mapping fingerprints to compiled
  artifacts (plans, XNF executables, DML qualification plans), each
  entry pinned to the catalog's ``schema_version`` and the statistics
  manager's ``epoch``.  DDL, ``ANALYZE`` and materially-drifted
  statistics therefore invalidate stale entries on the next lookup.

Literals are *not* lifted where their value shapes the plan or the
statement's meaning rather than a runtime comparison: ORDER BY / GROUP
BY (ordinals), LIKE patterns (pre-compiled regexes), booleans and NULL
(3VL shortcuts), and LIMIT/OFFSET (plain ints in the AST).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.sql import ast
from repro.storage.stats import material_drift

#: ``stats_view(table) -> (table_epoch, live_cardinality)``: the live
#: statistics state a cached entry is validated against.
StatsView = Callable[[str], tuple[int, int]]


@dataclass(frozen=True)
class ParameterizedStatement:
    """An AST with literals lifted, plus the values to re-bind."""

    statement: Any  # the normalized (hashable) AST
    #: Synthetic bindings: positional parameter index -> lifted value.
    values: tuple = ()

    @property
    def bindings(self) -> dict:
        return {index: value for index, value in self.values}


class _Lifter:
    """One parameterization pass over a statement.

    Synthetic positional indices continue after the statement's own
    explicit ``?`` markers so user and synthetic bindings never collide.
    """

    def __init__(self, next_index: int):
        self.next_index = next_index
        self.values: list[tuple[int, Any]] = []

    # ------------------------------------------------------------------
    def lift(self, expression: ast.Expression) -> ast.Expression:
        if isinstance(expression, ast.Literal):
            value = expression.value
            # Booleans and NULL stay inline: compile-time 3VL shortcuts
            # (e.g. "col = NULL keeps nothing") depend on seeing them.
            if value is None or isinstance(value, bool):
                return expression
            index = self.next_index
            self.next_index += 1
            self.values.append((index, value))
            return ast.Parameter(index=index)
        if isinstance(expression, ast.BinaryOp):
            return ast.BinaryOp(expression.op, self.lift(expression.left),
                                self.lift(expression.right))
        if isinstance(expression, ast.UnaryOp):
            return ast.UnaryOp(expression.op, self.lift(expression.operand))
        if isinstance(expression, ast.FunctionCall):
            return ast.FunctionCall(
                expression.name,
                tuple(self.lift(a) for a in expression.args),
                expression.distinct,
            )
        if isinstance(expression, ast.IsNull):
            return ast.IsNull(self.lift(expression.operand),
                              expression.negated)
        if isinstance(expression, ast.Between):
            return ast.Between(self.lift(expression.operand),
                               self.lift(expression.low),
                               self.lift(expression.high),
                               expression.negated)
        if isinstance(expression, ast.Like):
            # Keep the pattern literal: the compiler pre-builds its
            # regex, and patterns rarely vary in hot loops.
            return ast.Like(self.lift(expression.operand),
                            expression.pattern, expression.negated)
        if isinstance(expression, ast.InList):
            return ast.InList(
                self.lift(expression.operand),
                tuple(self.lift(i) for i in expression.items),
                expression.negated,
            )
        if isinstance(expression, ast.InSubquery):
            return ast.InSubquery(self.lift(expression.operand),
                                  self.lift_select(expression.subquery),
                                  expression.negated)
        if isinstance(expression, ast.Exists):
            return ast.Exists(self.lift_select(expression.subquery),
                              expression.negated)
        if isinstance(expression, ast.ScalarSubquery):
            return ast.ScalarSubquery(self.lift_select(expression.subquery))
        if isinstance(expression, ast.CaseWhen):
            return ast.CaseWhen(
                tuple((self.lift(c), self.lift(r))
                      for c, r in expression.whens),
                None if expression.default is None
                else self.lift(expression.default),
            )
        # Leaves (ColumnRef, Star, Parameter, QRef after resolution, ...)
        return expression

    # ------------------------------------------------------------------
    def lift_select(self, statement: ast.SelectStatement
                    ) -> ast.SelectStatement:
        # Grouped/aggregating blocks structurally match select items
        # (and HAVING) against the GROUP BY keys during QGM build, and
        # GROUP BY literals stay inline — so the head and HAVING must
        # stay inline too or the match breaks.
        grouped = bool(statement.group_by) \
            or statement.having is not None \
            or any(ast.contains_aggregate(item.expression)
                   for item in statement.select_items)
        if grouped:
            select_items = statement.select_items
            having = statement.having
        else:
            select_items = tuple(
                ast.SelectItem(self.lift(item.expression), item.alias)
                for item in statement.select_items
            )
            having = None
        from_items = tuple(self._lift_from(f) for f in statement.from_items)
        where = None if statement.where is None else self.lift(
            statement.where)
        set_operation = statement.set_operation
        if set_operation is not None:
            set_operation = ast.SetOperation(
                set_operation.operator, set_operation.all,
                self.lift_select(set_operation.right),
            )
        # ORDER BY and GROUP BY keep their literals: a bare integer
        # there is a positional ordinal, not a value.
        return ast.SelectStatement(
            select_items=select_items,
            from_items=from_items,
            where=where,
            group_by=statement.group_by,
            having=having,
            order_by=statement.order_by,
            distinct=statement.distinct,
            limit=statement.limit,
            offset=statement.offset,
            set_operation=set_operation,
        )

    def _lift_from(self, item: ast.FromItem) -> ast.FromItem:
        if isinstance(item, ast.Join):
            return ast.Join(
                self._lift_from(item.left), self._lift_from(item.right),
                item.kind,
                None if item.condition is None else self.lift(item.condition),
            )
        if isinstance(item, ast.SubqueryRef):
            return ast.SubqueryRef(self.lift_select(item.query), item.alias)
        return item


def max_positional_index(statement: ast.SelectStatement) -> int:
    """Highest explicit ``?`` index in the statement, or -1."""
    highest = -1

    def scan_expr(expression: Optional[ast.Expression]) -> None:
        nonlocal highest
        if expression is None:
            return
        for node in ast.walk_expression(expression):
            if isinstance(node, ast.Parameter) and node.index is not None:
                highest = max(highest, node.index)
            elif isinstance(node, (ast.Exists, ast.InSubquery)):
                scan_select(node.subquery)
            elif isinstance(node, ast.ScalarSubquery):
                scan_select(node.subquery)

    def scan_from(item: ast.FromItem) -> None:
        if isinstance(item, ast.Join):
            scan_from(item.left)
            scan_from(item.right)
            scan_expr(item.condition)
        elif isinstance(item, ast.SubqueryRef):
            scan_select(item.query)

    def scan_select(statement: ast.SelectStatement) -> None:
        for item in statement.select_items:
            scan_expr(item.expression)
        for item in statement.from_items:
            scan_from(item)
        scan_expr(statement.where)
        for expression in statement.group_by:
            scan_expr(expression)
        scan_expr(statement.having)
        for order in statement.order_by:
            scan_expr(order.expression)
        if statement.set_operation is not None:
            scan_select(statement.set_operation.right)

    scan_select(statement)
    return highest


def max_positional_in_expressions(
        expressions: list[Optional[ast.Expression]]) -> int:
    """Highest explicit ``?`` index across standalone expressions."""
    highest = -1
    for expression in expressions:
        if expression is None:
            continue
        for node in ast.walk_expression(expression):
            if isinstance(node, ast.Parameter) and node.index is not None:
                highest = max(highest, node.index)
            elif isinstance(node, (ast.Exists, ast.InSubquery,
                                   ast.ScalarSubquery)):
                highest = max(highest,
                              max_positional_index(node.subquery))
    return highest


def parameterize_select(statement: ast.SelectStatement
                        ) -> ParameterizedStatement:
    """Lift an ad-hoc SELECT's literals into synthetic parameters."""
    lifter = _Lifter(max_positional_index(statement) + 1)
    normalized = lifter.lift_select(statement)
    return ParameterizedStatement(normalized, tuple(lifter.values))


def parameterize_expressions(expressions: list[Optional[ast.Expression]],
                             next_index: int = 0) -> ParameterizedStatement:
    """Lift literals from a bag of expressions (the DML qualification
    path: a WHERE predicate plus SET value expressions)."""
    lifter = _Lifter(next_index)
    lifted = tuple(
        None if expression is None else lifter.lift(expression)
        for expression in expressions
    )
    return ParameterizedStatement(lifted, tuple(lifter.values))


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
@dataclass
class CacheEntry:
    value: Any
    schema_version: int
    fingerprint: str
    #: Per-table validation snapshots for the tables the plan reads:
    #: ``(table, table_epoch_at_store, cardinality_at_store)``.  Drift
    #: on an *unrelated* table therefore never invalidates this entry.
    stats_keys: tuple[tuple[str, int, int], ...] = ()
    hits: int = 0
    #: Planner-estimated output rows snapshotted at store time (-1
    #: when the artifact has no single row estimate).
    estimated_rows: float = -1.0


@dataclass
class CacheInfo:
    """What the last lookup did — surfaced by ``db.explain``."""

    status: str  # 'hit' | 'miss' | 'bypass'
    fingerprint: str = ""
    reason: str = ""
    schema_version: int = 0
    stats_epoch: int = 0
    #: The served plan's estimated output rows (-1 when unknown).
    estimated_rows: float = -1.0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions, "stores": self.stores,
        }


def fingerprint_of(key: Any) -> str:
    """A short stable digest of a cache key, for EXPLAIN output.

    Keys are (tuples of) frozen-dataclass ASTs whose ``repr`` is
    deterministic within a process, which is all EXPLAIN needs.
    """
    digest = hashlib.sha256(repr(key).encode()).hexdigest()
    return digest[:12]


class PlanCache:
    """A bounded LRU of compiled statements for one database.

    Keys are normalized statement ASTs (plus a kind tag); entries are
    validated at lookup — lazily, no sweeps — against the current
    catalog ``schema_version`` and, **per table the plan reads**, the
    statistics manager's table epoch and the table's live cardinality.
    DDL invalidates everything; ANALYZE / material statistics drift
    invalidate only the plans over the affected tables; direct-storage
    writes that bypass the DML layer are caught by the cardinality
    check.  ``capacity <= 0`` disables the cache entirely (every
    lookup is a bypass).
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[Any, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()
        self.last_info = CacheInfo(status="bypass")
        # One cache is shared by every session of an engine; concurrent
        # readers compile through it from multiple threads.  The lock
        # only guards the entry map's structure — compilation itself
        # runs outside it (a racing duplicate compile is benign, the
        # second store simply overwrites the first).
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _validate_stats(self, entry: CacheEntry,
                        stats_view: Optional[StatsView],
                        on_drift) -> Optional[str]:
        """None when the entry's statistics snapshots still hold,
        else the invalidation reason."""
        if stats_view is None:
            return None
        for table, epoch, cardinality in entry.stats_keys:
            current_epoch, live = stats_view(table)
            if current_epoch != epoch:
                return ("statistics changed (ANALYZE or material "
                        f"drift on {table})")
            if live >= 0 and material_drift(abs(live - cardinality),
                                            cardinality):
                # Direct-storage drift (rows added/removed without DML
                # deltas): tell the owner so the table's epoch moves
                # and sibling entries fall too.
                if on_drift is not None:
                    on_drift(table)
                return f"statistics drifted ({table} changed size " \
                       f"materially)"
        return None

    def probe(self, key: Any, schema_version: int,
              stats_view: Optional[StatsView] = None,
              on_drift=None) -> Optional[CacheEntry]:
        """Validated lookup with no statistics or last-info side
        effects — the pipeline's second-level (canonical-form) probe,
        so one compile still counts as exactly one hit or miss."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.schema_version != schema_version:
                reason = "schema changed (DDL)"
            else:
                reason = self._validate_stats(entry, stats_view, on_drift)
            if reason is not None:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            return entry

    def lookup(self, key: Any, schema_version: int,
               stats_view: Optional[StatsView] = None,
               on_drift=None) -> Optional[CacheEntry]:
        """The cached entry for ``key`` if still valid, else None."""
        if not self.enabled:
            self.last_info = CacheInfo(status="bypass",
                                       reason="plan cache disabled")
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self.last_info = CacheInfo(
                    status="miss", fingerprint=fingerprint_of(key),
                    reason="not cached", schema_version=schema_version,
                )
                return None
            if entry.schema_version != schema_version:
                reason = "schema changed (DDL)"
            else:
                reason = self._validate_stats(entry, stats_view, on_drift)
            if reason is None:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                self.last_info = CacheInfo(
                    status="hit", fingerprint=entry.fingerprint,
                    schema_version=schema_version,
                    estimated_rows=entry.estimated_rows,
                )
                return entry
            del self._entries[key]
            self.stats.misses += 1
            self.stats.invalidations += 1
            self.last_info = CacheInfo(
                status="miss", fingerprint=fingerprint_of(key),
                reason=reason, schema_version=schema_version,
            )
            return None

    def store(self, key: Any, value: Any, schema_version: int,
              stats_keys: tuple = (),
              estimated_rows: float = -1.0) -> Optional[CacheEntry]:
        if not self.enabled:
            return None
        entry = CacheEntry(value=value, schema_version=schema_version,
                           fingerprint=fingerprint_of(key),
                           stats_keys=tuple(stats_keys),
                           estimated_rows=estimated_rows)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def get_or_compile(self, key: Any, schema_version: int,
                       stats_view: Optional[StatsView], compile_fn,
                       tables_of: Optional[
                           Callable[[Any], Iterable[str]]] = None,
                       on_drift=None) -> Any:
        """Read-through: return the cached value or compile and store.

        ``tables_of(value)`` names the base tables the compiled
        artifact reads; their epoch/cardinality snapshots become the
        entry's statistics validation keys.
        """
        entry = self.lookup(key, schema_version, stats_view, on_drift)
        if entry is not None:
            return entry.value
        value = compile_fn()
        stats_keys: tuple = ()
        if tables_of is not None and stats_view is not None:
            stats_keys = tuple(
                (name.upper(),) + tuple(stats_view(name))
                for name in tables_of(value)
            )
        self.store(key, value, schema_version, stats_keys)
        return value

    def clear(self, reason: str = "explicit clear") -> None:
        with self._lock:
            if self._entries:
                self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self.last_info = CacheInfo(status="bypass", reason=reason)
