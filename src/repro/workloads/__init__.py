"""Seeded workload generators for tests, examples and benchmarks."""

from repro.workloads.bom import (BOMScale, bom_view_query,
                                 build_bom_catalog, create_bom_schema,
                                 populate_bom)
from repro.workloads.oo1 import (OO1Scale, build_oo1_catalog,
                                 create_oo1_schema, oo1_view_query,
                                 populate_oo1)
from repro.workloads.orgdb import (DEPS_ARC_QUERY, OrgScale,
                                   build_org_catalog, create_org_schema,
                                   populate_org)

__all__ = [
    "BOMScale", "bom_view_query", "build_bom_catalog",
    "create_bom_schema", "populate_bom",
    "OO1Scale", "build_oo1_catalog", "create_oo1_schema",
    "oo1_view_query", "populate_oo1",
    "DEPS_ARC_QUERY", "OrgScale", "build_org_catalog",
    "create_org_schema", "populate_org",
]
