"""The organizational database of the paper's running example (Fig. 1).

Base tables: DEPT, EMP, PROJ, SKILLS, plus the many-to-many mapping
tables EMPSKILLS and PROJSKILLS.  The generator is seeded and
parameterized so benchmarks can sweep scale while keeping the schema
(and the deps_ARC view) identical to the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.types import Column, INTEGER, VARCHAR

LOCATIONS = ("ARC", "SF", "SJ", "NY", "HD", "LA")

#: The paper's Fig. 1 view, verbatim XNF syntax.
DEPS_ARC_QUERY = """
OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
       xemp AS EMP,
       xproj AS PROJ,
       xskills AS SKILLS,
       employment AS (RELATE xdept VIA EMPLOYS, xemp
                      WHERE xdept.dno = xemp.edno),
       ownership AS (RELATE xdept VIA HAS, xproj
                     WHERE xdept.dno = xproj.pdno),
       empproperty AS (RELATE xemp VIA POSSESSES, xskills
                       USING EMPSKILLS es
                       WHERE xemp.eno = es.eseno AND
                             es.essno = xskills.sno),
       projproperty AS (RELATE xproj VIA NEEDS, xskills
                        USING PROJSKILLS ps
                        WHERE xproj.pno = ps.pspno AND
                              ps.pssno = xskills.sno)
TAKE *
"""


@dataclass
class OrgScale:
    """Size knobs for the generated database."""

    departments: int = 10
    employees_per_dept: int = 5
    projects_per_dept: int = 3
    skills: int = 20
    skills_per_employee: int = 2
    skills_per_project: int = 2
    #: Fraction of departments located at 'ARC' (the view's restriction).
    arc_fraction: float = 0.3
    seed: int = 42


def create_org_schema(catalog: Catalog, with_indexes: bool = True) -> None:
    """Create the six base tables (and, optionally, join indexes)."""
    catalog.create_table("DEPT", [
        Column("DNO", INTEGER, primary_key=True),
        Column("DNAME", VARCHAR),
        Column("LOC", VARCHAR),
    ])
    catalog.create_table("EMP", [
        Column("ENO", INTEGER, primary_key=True),
        Column("ENAME", VARCHAR),
        Column("EDNO", INTEGER),
        Column("SAL", INTEGER),
    ])
    catalog.create_table("PROJ", [
        Column("PNO", INTEGER, primary_key=True),
        Column("PNAME", VARCHAR),
        Column("PDNO", INTEGER),
        Column("BUDGET", INTEGER),
    ])
    catalog.create_table("SKILLS", [
        Column("SNO", INTEGER, primary_key=True),
        Column("SNAME", VARCHAR),
        Column("LEVEL", INTEGER),
    ])
    catalog.create_table("EMPSKILLS", [
        Column("ESENO", INTEGER, nullable=False),
        Column("ESSNO", INTEGER, nullable=False),
    ])
    catalog.create_table("PROJSKILLS", [
        Column("PSPNO", INTEGER, nullable=False),
        Column("PSSNO", INTEGER, nullable=False),
    ])
    catalog.add_foreign_key("FK_EMP_DEPT", "EMP", ["EDNO"], "DEPT", ["DNO"])
    catalog.add_foreign_key("FK_PROJ_DEPT", "PROJ", ["PDNO"], "DEPT",
                            ["DNO"])
    catalog.add_foreign_key("FK_ES_EMP", "EMPSKILLS", ["ESENO"], "EMP",
                            ["ENO"])
    catalog.add_foreign_key("FK_ES_SKILL", "EMPSKILLS", ["ESSNO"], "SKILLS",
                            ["SNO"])
    catalog.add_foreign_key("FK_PS_PROJ", "PROJSKILLS", ["PSPNO"], "PROJ",
                            ["PNO"])
    catalog.add_foreign_key("FK_PS_SKILL", "PROJSKILLS", ["PSSNO"],
                            "SKILLS", ["SNO"])
    if with_indexes:
        catalog.create_index("IX_EMP_EDNO", "EMP", ["EDNO"])
        catalog.create_index("IX_PROJ_PDNO", "PROJ", ["PDNO"])
        catalog.create_index("IX_ES_ENO", "EMPSKILLS", ["ESENO"])
        catalog.create_index("IX_PS_PNO", "PROJSKILLS", ["PSPNO"])


def populate_org(catalog: Catalog, scale: OrgScale | None = None) -> dict:
    """Fill the schema; returns summary counts for assertions."""
    scale = scale or OrgScale()
    rng = random.Random(scale.seed)
    dept = catalog.table("DEPT")
    emp = catalog.table("EMP")
    proj = catalog.table("PROJ")
    skills = catalog.table("SKILLS")
    empskills = catalog.table("EMPSKILLS")
    projskills = catalog.table("PROJSKILLS")

    skill_ids = list(range(1, scale.skills + 1))
    for sno in skill_ids:
        skills.insert((sno, f"skill-{sno}", rng.randint(1, 5)))

    arc_count = max(1, round(scale.departments * scale.arc_fraction))
    employee_id = 1
    project_id = 1
    emp_skill_pairs = 0
    proj_skill_pairs = 0
    for dno in range(1, scale.departments + 1):
        location = "ARC" if dno <= arc_count else \
            LOCATIONS[1 + rng.randrange(len(LOCATIONS) - 1)]
        dept.insert((dno, f"dept-{dno}", location))
        for _ in range(scale.employees_per_dept):
            emp.insert((employee_id, f"emp-{employee_id}", dno,
                        rng.randint(40, 200) * 1000))
            count = min(scale.skills_per_employee, len(skill_ids))
            for sno in rng.sample(skill_ids, count):
                empskills.insert((employee_id, sno))
                emp_skill_pairs += 1
            employee_id += 1
        for _ in range(scale.projects_per_dept):
            proj.insert((project_id, f"proj-{project_id}", dno,
                         rng.randint(10, 500) * 1000))
            count = min(scale.skills_per_project, len(skill_ids))
            for sno in rng.sample(skill_ids, count):
                projskills.insert((project_id, sno))
                proj_skill_pairs += 1
            project_id += 1

    return {
        "departments": scale.departments,
        "arc_departments": arc_count,
        "employees": employee_id - 1,
        "projects": project_id - 1,
        "skills": scale.skills,
        "empskills": emp_skill_pairs,
        "projskills": proj_skill_pairs,
    }


def build_org_catalog(scale: OrgScale | None = None,
                      with_indexes: bool = True) -> tuple[Catalog, dict]:
    """Schema + data in one call (what most tests/benchmarks want)."""
    catalog = Catalog()
    create_org_schema(catalog, with_indexes=with_indexes)
    summary = populate_org(catalog, scale)
    return catalog, summary
