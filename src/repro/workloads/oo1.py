"""The Cattell OO1 ("Sun") benchmark database (Sect. 5.2, [13]).

"Using the traversal operation from that benchmark, we could access in a
pre-loaded XNF cache more than 100,000 tuples per second which matches
the requirements for CAD applications."

OO1 is a parts database: N parts, each with exactly ``fanout`` (default
3) connections to other parts, biased toward *locality* (90% of
connections go to the closest 1% of parts by id).  The benchmark's
traversal operation starts at a random part and follows connections to
depth 7, touching 3^7 + ... parts.

We model parts and connections as base tables and provide the XNF view
whose CO cache the traversal runs on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.types import Column, INTEGER, VARCHAR


@dataclass
class OO1Scale:
    parts: int = 1000
    fanout: int = 3
    locality_fraction: float = 0.01
    locality_probability: float = 0.9
    seed: int = 1


def create_oo1_schema(catalog: Catalog, with_indexes: bool = True) -> None:
    catalog.create_table("PART", [
        Column("ID", INTEGER, primary_key=True),
        Column("PTYPE", VARCHAR),
        Column("X", INTEGER),
        Column("Y", INTEGER),
        Column("BUILD", INTEGER),
    ])
    catalog.create_table("CONNECTION", [
        Column("FROM_ID", INTEGER, nullable=False),
        Column("TO_ID", INTEGER, nullable=False),
        Column("CTYPE", VARCHAR),
        Column("LENGTH", INTEGER),
    ])
    catalog.add_foreign_key("FK_CONN_FROM", "CONNECTION", ["FROM_ID"],
                            "PART", ["ID"])
    catalog.add_foreign_key("FK_CONN_TO", "CONNECTION", ["TO_ID"],
                            "PART", ["ID"])
    if with_indexes:
        catalog.create_index("IX_CONN_FROM", "CONNECTION", ["FROM_ID"])
        catalog.create_index("IX_CONN_TO", "CONNECTION", ["TO_ID"])


def populate_oo1(catalog: Catalog, scale: OO1Scale | None = None) -> dict:
    scale = scale or OO1Scale()
    rng = random.Random(scale.seed)
    part = catalog.table("PART")
    connection = catalog.table("CONNECTION")
    types = ("part-type0", "part-type1", "part-type2")
    for part_id in range(1, scale.parts + 1):
        part.insert((part_id, types[part_id % len(types)],
                     rng.randint(0, 99_999), rng.randint(0, 99_999),
                     rng.randint(0, 10_000)))
    locality_window = max(1, int(scale.parts * scale.locality_fraction))
    connections = 0
    for part_id in range(1, scale.parts + 1):
        for _ in range(scale.fanout):
            if rng.random() < scale.locality_probability:
                offset = rng.randint(-locality_window, locality_window)
                target = part_id + offset
                if target < 1:
                    target += scale.parts
                elif target > scale.parts:
                    target -= scale.parts
            else:
                target = rng.randint(1, scale.parts)
            connection.insert((part_id, target, "link",
                               rng.randint(1, 100)))
            connections += 1
    return {"parts": scale.parts, "connections": connections}


def oo1_view_query(anchor_low: int = 1,
                   anchor_high: int | None = None) -> str:
    """The CO view the traversal benchmark caches.

    ``xanchor`` (a part-id range) roots the CO; ``xpart`` offers every
    part as a candidate, reached transitively through the recursive
    CONNECTS relationship — the closure is evaluated by the fixpoint
    machinery and then traversed in the cache.
    """
    restriction = f"id >= {anchor_low}"
    if anchor_high is not None:
        restriction += f" AND id <= {anchor_high}"
    return f"""
    OUT OF xanchor AS (SELECT * FROM PART WHERE {restriction}),
           xpart AS PART,
           seed AS (RELATE xanchor VIA SEEDS, xpart
                    USING CONNECTION c
                    WHERE xanchor.id = c.from_id AND
                          c.to_id = xpart.id),
           connects AS (RELATE xpart VIA CONNECTS, xpart
                        USING CONNECTION c
                        WHERE CONNECTS.id = c.from_id AND
                              c.to_id = xpart.id)
    TAKE *
    """


def build_oo1_catalog(scale: OO1Scale | None = None,
                      with_indexes: bool = True) -> tuple[Catalog, dict]:
    catalog = Catalog()
    create_oo1_schema(catalog, with_indexes=with_indexes)
    summary = populate_oo1(catalog, scale)
    return catalog, summary
