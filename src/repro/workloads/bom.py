"""Bill-of-materials workload: the classic recursive-CO scenario.

A parts-explosion hierarchy: assemblies contain sub-assemblies down to
atomic parts, stored relationally as a PART table and a CONTAINS
mapping table (parent part, child part, quantity).  The recursive XNF
view anchors at selected assemblies and closes over CONTAINS — the
"derivation rule iterating until a fixed point" of Sect. 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.types import Column, INTEGER, VARCHAR


@dataclass
class BOMScale:
    """A forest of assemblies with bounded depth and fanout."""

    roots: int = 3
    depth: int = 4
    fanout: int = 3
    #: Probability that a child is shared with another assembly
    #: (creating a DAG — object sharing in the CO).
    share_probability: float = 0.15
    seed: int = 11


def create_bom_schema(catalog: Catalog, with_indexes: bool = True) -> None:
    catalog.create_table("PART", [
        Column("PNO", INTEGER, primary_key=True),
        Column("PNAME", VARCHAR),
        Column("KIND", VARCHAR),  # 'assembly' | 'atomic'
        Column("COST", INTEGER),
    ])
    catalog.create_table("CONTAINS", [
        Column("PARENT", INTEGER, nullable=False),
        Column("CHILD", INTEGER, nullable=False),
        Column("QTY", INTEGER, nullable=False),
    ])
    catalog.add_foreign_key("FK_CONT_PARENT", "CONTAINS", ["PARENT"],
                            "PART", ["PNO"])
    catalog.add_foreign_key("FK_CONT_CHILD", "CONTAINS", ["CHILD"],
                            "PART", ["PNO"])
    if with_indexes:
        catalog.create_index("IX_CONT_PARENT", "CONTAINS", ["PARENT"])


def populate_bom(catalog: Catalog, scale: BOMScale | None = None) -> dict:
    scale = scale or BOMScale()
    rng = random.Random(scale.seed)
    part = catalog.table("PART")
    contains = catalog.table("CONTAINS")
    next_id = 1
    all_parts: list[int] = []
    edges = 0

    def make_part(kind: str) -> int:
        nonlocal next_id
        pno = next_id
        next_id += 1
        part.insert((pno, f"part-{pno}", kind, rng.randint(1, 500)))
        all_parts.append(pno)
        return pno

    linked: set[tuple[int, int]] = set()

    def expand(parent: int, depth: int) -> None:
        nonlocal edges
        for _ in range(scale.fanout):
            if all_parts and rng.random() < scale.share_probability:
                child = rng.choice(all_parts)
                if child == parent or (parent, child) in linked:
                    continue
            else:
                kind = "atomic" if depth <= 1 else "assembly"
                child = make_part(kind)
                if depth > 1:
                    expand(child, depth - 1)
            linked.add((parent, child))
            contains.insert((parent, child, rng.randint(1, 9)))
            edges += 1

    root_ids = []
    for _ in range(scale.roots):
        root = make_part("assembly")
        root_ids.append(root)
        expand(root, scale.depth)
    return {"parts": next_id - 1, "edges": edges, "roots": root_ids}


def bom_view_query(root_ids: list[int]) -> str:
    """The recursive parts-explosion view anchored at ``root_ids``."""
    anchors = ", ".join(str(r) for r in root_ids)
    return f"""
    OUT OF xassembly AS (SELECT * FROM PART WHERE pno IN ({anchors})),
           xpart AS PART,
           toplevel AS (RELATE xassembly VIA TOP_CONTAINS, xpart
                        USING CONTAINS c
                        WITH c.qty AS qty
                        WHERE xassembly.pno = c.parent AND
                              c.child = xpart.pno),
           subparts AS (RELATE xpart VIA CONTAINS_PART, xpart
                        USING CONTAINS c
                        WITH c.qty AS qty
                        WHERE CONTAINS_PART.pno = c.parent AND
                              c.child = xpart.pno)
    TAKE *
    """


def build_bom_catalog(scale: BOMScale | None = None,
                      with_indexes: bool = True) -> tuple[Catalog, dict]:
    catalog = Catalog()
    create_bom_schema(catalog, with_indexes=with_indexes)
    summary = populate_bom(catalog, scale)
    return catalog, summary
