"""repro — Composite-Object Views in a Relational DBMS.

A from-scratch Python reproduction of Pirahesh, Mitschang, Suedkamp and
Lindsay, "Composite-Object Views in Relational DBMS: An Implementation
Perspective" (Information Systems 19(1), 1994): the XNF language
extension (OUT OF ... RELATE ... TAKE), a Starburst-style relational
engine underneath (QGM, rule-based rewrite, cost-based planning,
pipelined execution), and the client-side composite-object cache with
cursors, a seamless object interface and write-back.

Quickstart::

    from repro import Database
    db = Database()
    db.execute("CREATE TABLE DEPT (DNO INT PRIMARY KEY, LOC VARCHAR)")
    db.execute("CREATE TABLE EMP (ENO INT PRIMARY KEY, EDNO INT)")
    db.execute("INSERT INTO DEPT VALUES (1, 'ARC')")
    db.execute("INSERT INTO EMP VALUES (10, 1)")
    cache = db.open_cache('''
        OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
               xemp AS EMP,
               employment AS (RELATE xdept VIA EMPLOYS, xemp
                              WHERE xdept.dno = xemp.edno)
        TAKE *
    ''')
    for dept in cache.extent("xdept"):
        print(dept.dno, [e.eno for e in dept.children("employment")])
"""

from repro.api.cursor import Cursor
from repro.api.database import Database
from repro.api.engine import Engine
from repro.api.gateway import ObjectGateway, ObjectView
from repro.api.session import Session
from repro.api.transport import TransportSimulator
from repro.cache.manager import XNFCache
from repro.errors import ReproError
from repro.executor.runtime import QueryResult
from repro.xnf.result import COResult

__version__ = "1.1.0"

__all__ = [
    "Engine", "Session", "Cursor", "Database",
    "ObjectGateway", "ObjectView", "TransportSimulator",
    "XNFCache", "ReproError", "QueryResult", "COResult",
    "__version__",
]
