"""Snapshots and ARIES-lite restart recovery.

A durable engine directory holds exactly two kinds of files::

    wal.log               the write-ahead log (repro.storage.wal)
    snapshot-<lsn>.db     checkpoints: the full committed state as of
                          log sequence number <lsn>

Recovery is the classic snapshot-plus-redo scheme, simplified by two
properties of this engine: mutations are applied in place with an undo
log, so an *open* transaction's changes never reach the log or a
snapshot (snapshots are taken through committed-state read views), and
commit records carry the transaction's **net per-table deltas with
RIDs**.  Redo is therefore physical and exact — no undo pass, no
compensation records:

1. load the newest *valid* snapshot (checksum-verified; a crash mid
   checkpoint leaves the previous snapshot in place because snapshots
   are written to a temp file and renamed),
2. replay every intact log record with LSN greater than the
   snapshot's, applying row deltas by RID and DDL records by
   re-running the schema operation,
3. stop at the first torn record (short or checksum-mismatched) and
   discard it and everything after — by the write-ahead protocol that
   suffix was never acknowledged.

Derived state is *not* snapshotted: statistics snapshots are
recomputed lazily (their epochs are restored and advanced so cached
plans can never match pre-crash statistics), and materialized views
are re-registered **stale**, so the first read after restart refreshes
from recovered base tables instead of trusting a pre-crash image.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import StorageError
from repro.storage.catalog import Catalog, TableDelta
from repro.storage.index import OrderedIndex
from repro.storage.wal import WalRecord, scan_log

SNAPSHOT_MAGIC = b"REPROSNP"
SNAPSHOT_FORMAT = 1
_SNAP_HEADER = struct.Struct("<II")  # payload length, payload crc32

WAL_FILENAME = "wal.log"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".db"


def wal_path(directory: str) -> str:
    return os.path.join(directory, WAL_FILENAME)


def snapshot_path(directory: str, lsn: int) -> str:
    return os.path.join(directory,
                        f"{_SNAPSHOT_PREFIX}{lsn:020d}{_SNAPSHOT_SUFFIX}")


@dataclass
class RecoveryReport:
    """What a restart found and replayed (``engine.recovery``)."""

    snapshot_lsn: int = 0
    last_lsn: int = 0
    replayed_transactions: int = 0
    replayed_ddl: int = 0
    torn_bytes: int = 0
    #: materialized view name -> staleness policy, to re-register
    matview_policies: dict[str, str] = field(default_factory=dict)
    stats_table_epochs: dict[str, int] = field(default_factory=dict)
    stats_global_epoch: int = 0
    #: byte offset the WAL must be truncated to before appending
    wal_truncate_at: Optional[int] = None

    @property
    def next_lsn(self) -> int:
        return self.last_lsn + 1


# ----------------------------------------------------------------------
# Snapshot writing
# ----------------------------------------------------------------------
def build_snapshot_payload(catalog: Catalog, lsn: int,
                           stats_table_epochs: dict[str, int],
                           stats_global_epoch: int,
                           matview_policies: dict[str, str]) -> dict:
    """Capture the committed state of ``catalog`` as a picklable dict.

    Table rows are captured through :meth:`Table.snapshot_slots`, which
    respects any installed committed-state read view — the caller (the
    engine's ``checkpoint()``) installs overlays against the current
    uncommitted writer, so open transactions never leak into a
    snapshot.
    """
    tables = []
    for table in catalog.tables():
        tables.append({
            "name": table.name,
            "columns": table.columns,
            "partitioning": table.partitioning,
            "slots": table.snapshot_slots(),
        })
    indexes = [{
        "name": index.name,
        "table": index.table_name,
        "columns": index.column_names,
        "unique": index.unique,
        "ordered": isinstance(index, OrderedIndex),
    } for table in catalog.tables() for index in table.indexes]
    return {
        "format": SNAPSHOT_FORMAT,
        "lsn": lsn,
        "schema_version": catalog.schema_version,
        "tables": tables,
        "indexes": indexes,
        "foreign_keys": catalog.foreign_keys(),
        "views": catalog.views(),
        "matviews": dict(matview_policies),
        "stats_table_epochs": dict(stats_table_epochs),
        "stats_global_epoch": stats_global_epoch,
    }


def write_snapshot(directory: str, payload: dict) -> str:
    """Durably write a snapshot; returns its final path.

    Crash-safe: the bytes land in a temp file that is fsynced *before*
    an atomic rename, and the directory entry is fsynced after — a
    crash at any point leaves either the old snapshot set or the old
    set plus one complete new snapshot, never a half-written one under
    the real name.
    """
    lsn = payload["lsn"]
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    final = snapshot_path(directory, lsn)
    tmp = final + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(_SNAP_HEADER.pack(len(body), zlib.crc32(body)))
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    _fsync_directory(directory)
    return final


def prune_snapshots(directory: str, keep_lsn: int) -> None:
    """Delete snapshots older than the one at ``keep_lsn``."""
    for name, lsn in _snapshot_files(directory):
        if lsn < keep_lsn:
            try:
                os.remove(os.path.join(directory, name))
            except OSError:  # pragma: no cover - best effort
                pass


def _fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Snapshot loading
# ----------------------------------------------------------------------
def _snapshot_files(directory: str) -> list[tuple[str, int]]:
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return found
    for name in names:
        if not (name.startswith(_SNAPSHOT_PREFIX)
                and name.endswith(_SNAPSHOT_SUFFIX)):
            continue
        digits = name[len(_SNAPSHOT_PREFIX):-len(_SNAPSHOT_SUFFIX)]
        try:
            found.append((name, int(digits)))
        except ValueError:
            continue
    return found


def read_snapshot(path: str) -> Optional[dict]:
    """Decode one snapshot file; None when invalid/torn."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    header_end = len(SNAPSHOT_MAGIC) + _SNAP_HEADER.size
    if not data.startswith(SNAPSHOT_MAGIC) or len(data) < header_end:
        return None
    length, crc = _SNAP_HEADER.unpack_from(data, len(SNAPSHOT_MAGIC))
    body = data[header_end:header_end + length]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        payload = pickle.loads(body)
    except Exception:
        return None
    if not isinstance(payload, dict) \
            or payload.get("format") != SNAPSHOT_FORMAT:
        return None
    return payload


def load_newest_snapshot(directory: str) -> Optional[dict]:
    """The newest snapshot that validates, skipping corrupt ones."""
    for name, _lsn in sorted(_snapshot_files(directory),
                             key=lambda item: item[1], reverse=True):
        payload = read_snapshot(os.path.join(directory, name))
        if payload is not None:
            return payload
    return None


# ----------------------------------------------------------------------
# Restart recovery
# ----------------------------------------------------------------------
def recover(directory: str, catalog: Catalog) -> RecoveryReport:
    """Rebuild ``catalog`` from the durable state under ``directory``.

    The catalog must be fresh (no tables, no listeners) — the engine
    calls this first thing, before statistics, transactions or
    materialized views are wired up, so replay does not trigger delta
    or DDL logging.
    """
    os.makedirs(directory, exist_ok=True)
    report = RecoveryReport()
    snapshot = load_newest_snapshot(directory)
    if snapshot is not None:
        _apply_snapshot(snapshot, catalog, report)
    records, valid_end = scan_log(wal_path(directory))
    report.wal_truncate_at = valid_end
    try:
        size = os.path.getsize(wal_path(directory))
    except OSError:
        size = valid_end
    report.torn_bytes = max(0, size - valid_end)
    report.last_lsn = report.snapshot_lsn
    for record in records:
        if record.lsn > report.last_lsn:
            _apply_record(record, catalog, report)
            report.last_lsn = record.lsn
    return report


def _apply_snapshot(snapshot: dict, catalog: Catalog,
                    report: RecoveryReport) -> None:
    report.snapshot_lsn = snapshot["lsn"]
    for spec in snapshot["tables"]:
        table = catalog.create_table(spec["name"], spec["columns"],
                                     partitioning=spec.get("partitioning"))
        table.restore_slots(spec["slots"])
    for spec in snapshot["indexes"]:
        catalog.create_index(spec["name"], spec["table"],
                             list(spec["columns"]), unique=spec["unique"],
                             ordered=spec["ordered"])
    for fk in snapshot["foreign_keys"]:
        catalog.add_foreign_key(fk.name, fk.child_table,
                                list(fk.child_columns), fk.parent_table,
                                list(fk.parent_columns))
    for view in snapshot["views"]:
        catalog.create_view(view)
    report.matview_policies.update(snapshot.get("matviews", {}))
    report.stats_table_epochs = dict(
        snapshot.get("stats_table_epochs", {}))
    report.stats_global_epoch = snapshot.get("stats_global_epoch", 0)


def _apply_record(record: WalRecord, catalog: Catalog,
                  report: RecoveryReport) -> None:
    payload = record.payload
    kind = payload.get("t")
    if kind == "txn":
        for delta in payload["deltas"]:
            _apply_delta(delta, catalog)
        report.replayed_transactions += 1
    elif kind == "ddl":
        _apply_ddl(payload, catalog)
        report.replayed_ddl += 1
    elif kind == "matview":
        if payload["op"] == "create":
            report.matview_policies[payload["name"].upper()] = \
                payload["policy"]
        else:
            report.matview_policies.pop(payload["name"].upper(), None)
    else:
        raise StorageError(
            f"unknown WAL record kind {kind!r} at LSN {record.lsn}")


def _apply_delta(delta: TableDelta, catalog: Catalog) -> None:
    """Physical redo of one statement's net delta, by RID.

    Deletions first, then insertions: an UPDATE travels as a delete
    plus an insert of the *same* RID, so ordering within the delta
    matters while ordering across RIDs does not (net deltas touch each
    RID at most once per side).
    """
    table = catalog.table(delta.table)
    for rid, _row in delta.deleted:
        table.delete(rid)
    for rid, row in delta.inserted:
        table.insert_at(rid, tuple(row))


def _apply_ddl(payload: dict, catalog: Catalog) -> None:
    op = payload["op"]
    if op == "create_table":
        catalog.create_table(payload["name"], payload["columns"],
                             partitioning=payload.get("partitioning"))
    elif op == "repartition":
        catalog.repartition_table(payload["name"], payload["partitioning"])
    elif op == "drop_table":
        catalog.drop_table(payload["name"])
    elif op == "create_index":
        catalog.create_index(payload["name"], payload["table"],
                             list(payload["columns"]),
                             unique=payload["unique"],
                             ordered=payload["ordered"])
    elif op == "drop_index":
        catalog.drop_index(payload["name"])
    elif op == "add_foreign_key":
        catalog.add_foreign_key(payload["name"], payload["child_table"],
                                list(payload["child_columns"]),
                                payload["parent_table"],
                                list(payload["parent_columns"]))
    elif op == "create_view":
        catalog.create_view(payload["view"])
    elif op == "drop_view":
        catalog.drop_view(payload["name"])
    else:
        raise StorageError(f"unknown DDL record op {op!r}")
