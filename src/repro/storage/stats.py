"""Table and column statistics for the cost-based optimizer.

Starburst's plan optimization chooses strategies "based on estimated
execution costs" (Sect. 3.1).  We keep the classic System R statistics:
table cardinality, per-column distinct-value counts, and min/max for
numeric columns.  Statistics are computed on demand (or eagerly via the
``ANALYZE`` statement) and cached until invalidated.

Invalidation has two triggers:

* the row-count staleness heuristic (``_is_stale``), which catches
  direct ``Table.insert`` traffic that bypasses the DML layer when a
  snapshot is next read, and
* the catalog's delta protocol: a subscribed manager drops a table's
  snapshot the moment DML (or cache write-back) publishes a delta for
  it, so stats never lag a statement.

The manager also maintains **per-table statistics epochs** for the
plan cache.  A table's epoch only advances when its distribution has
*materially* changed — an explicit ``ANALYZE``/``invalidate``, or
accumulated DML drift past the staleness threshold — so cached plans
survive ordinary write traffic, and drift on one table never
invalidates plans over others.  (Direct-storage drift that no delta
ever reports is caught by the plan cache itself, which also snapshots
each table's cardinality per entry and revalidates at lookup.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.catalog import Catalog, TableDelta
from repro.storage.table import Table

#: Material-drift thresholds shared by the staleness heuristic and the
#: epoch logic: at least this many changed rows *and* this fraction of
#: the previous cardinality.
DRIFT_MIN_ROWS = 16
DRIFT_FRACTION = 0.2


def material_drift(drift: int, baseline: int) -> bool:
    """The one definition of "materially changed" — shared by the
    staleness heuristic, the epoch logic, and the plan cache's
    per-entry cardinality validation."""
    return drift >= DRIFT_MIN_ROWS \
        and drift > DRIFT_FRACTION * max(baseline, 1)


@dataclass
class ColumnStats:
    """Distribution summary of one column."""

    distinct: int = 1
    null_fraction: float = 0.0
    minimum: object = None
    maximum: object = None

    def selectivity_equals(self, cardinality: int) -> float:
        """Estimated selectivity of ``col = constant`` (uniformity assumption)."""
        if cardinality == 0 or self.distinct == 0:
            return 0.0
        return (1.0 - self.null_fraction) / self.distinct


@dataclass
class TableStats:
    """Statistics snapshot for one table."""

    cardinality: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name.upper(), ColumnStats())


def analyze_table(table: Table) -> TableStats:
    """Compute fresh statistics by a full scan of the table."""
    cardinality = len(table)
    stats = TableStats(cardinality=cardinality)
    if cardinality == 0:
        for column in table.columns:
            stats.columns[column.name.upper()] = ColumnStats(distinct=0)
        return stats
    for position, column in enumerate(table.columns):
        seen: set = set()
        nulls = 0
        minimum = maximum = None
        for row in table.rows():
            value = row[position]
            if value is None:
                nulls += 1
                continue
            seen.add(value)
            try:
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
            except TypeError:
                minimum = maximum = None
        stats.columns[column.name.upper()] = ColumnStats(
            distinct=max(len(seen), 1),
            null_fraction=nulls / cardinality,
            minimum=minimum,
            maximum=maximum,
        )
    return stats


class StatisticsManager:
    """Caches per-table statistics and tracks a material-change epoch.

    A snapshot is considered stale when the live row count differs from
    the snapshot's by more than 20% (and at least 16 rows), mimicking how
    real systems tolerate moderate drift between ANALYZE runs.

    With ``subscribe=True`` the manager registers itself on the
    catalog's ``delta_listeners`` so every DML statement invalidates the
    touched table's snapshot automatically (instead of waiting for the
    drift heuristic).  The plan-cache epoch still only advances on
    *material* drift, explicit :meth:`invalidate`, or :meth:`analyze`.
    """

    def __init__(self, catalog: Catalog, subscribe: bool = False):
        self._catalog = catalog
        self._snapshots: dict[str, TableStats] = {}
        #: Rows changed by DML per table since the last epoch-relevant
        #: refresh, and the cardinality that drift is measured against.
        self._pending_changes: dict[str, int] = {}
        self._baseline_cardinality: dict[str, int] = {}
        #: Material-change counters for the plan cache, tracked **per
        #: table** so drift on one table only invalidates plans that
        #: read it.  ``_global_epoch`` covers whole-manager events
        #: (``invalidate()`` with no table).
        self._table_epochs: dict[str, int] = {}
        self._global_epoch: int = 0
        if subscribe:
            self.subscribe()

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Total material-change counter (sum over all tables plus the
        global component) — monotonic, any material change bumps it."""
        return self._global_epoch + sum(self._table_epochs.values())

    def table_epoch(self, table_name: str) -> int:
        """The material-change counter one table's cached plans key on."""
        return self._global_epoch \
            + self._table_epochs.get(table_name.upper(), 0)

    def _bump_table_epoch(self, key: str) -> None:
        self._table_epochs[key] = self._table_epochs.get(key, 0) + 1

    def table_epochs(self) -> dict[str, int]:
        """Snapshot of the per-table epochs (checkpointing)."""
        return dict(self._table_epochs)

    @property
    def global_epoch(self) -> int:
        return self._global_epoch

    def restore_epochs(self, table_epochs: dict[str, int],
                       global_epoch: int) -> None:
        """Adopt epochs recovered from a snapshot, then advance.

        The recovered counters keep epoch history monotonic across a
        restart; the extra global bump guarantees that *nothing* keyed
        on pre-crash epochs (a plan cached before the crash, statistics
        drift baselines) can ever validate against post-recovery state.
        """
        self._table_epochs = {k.upper(): v
                              for k, v in table_epochs.items()}
        self._global_epoch = global_epoch + 1
        self._snapshots.clear()
        self._pending_changes.clear()
        self._baseline_cardinality.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def stats_for(self, table_name: str) -> TableStats:
        table = self._catalog.table(table_name)
        key = table.name
        snapshot = self._snapshots.get(key)
        if snapshot is None or self._is_stale(snapshot, table):
            snapshot = analyze_table(table)
            self._snapshots[key] = snapshot
            self._note_refresh(key, snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Invalidation and refresh
    # ------------------------------------------------------------------
    def invalidate(self, table_name: str | None = None) -> None:
        """Drop cached snapshot(s) and advance the statistics epoch.

        Explicit invalidation (DDL, ANALYZE-adjacent maintenance) is
        always material: callers use it when the old distributions must
        not be trusted, so dependent plan caches go stale too.
        """
        if table_name is None:
            self._snapshots.clear()
            self._pending_changes.clear()
            self._baseline_cardinality.clear()
            self._global_epoch += 1
        else:
            key = table_name.upper()
            self._snapshots.pop(key, None)
            self._pending_changes.pop(key, None)
            self._baseline_cardinality.pop(key, None)
            self._bump_table_epoch(key)

    def analyze(self, table_name: str | None = None) -> int:
        """Recompute statistics eagerly (the ``ANALYZE`` statement).

        Returns the number of tables analyzed.  Always advances the
        epoch: an explicit ANALYZE is a declaration that plans should
        see fresh distributions.
        """
        if table_name is None:
            tables = self._catalog.tables()
        else:
            tables = [self._catalog.table(table_name)]
        for table in tables:
            snapshot = analyze_table(table)
            self._snapshots[table.name] = snapshot
            self._pending_changes.pop(table.name, None)
            self._baseline_cardinality[table.name] = snapshot.cardinality
            self._bump_table_epoch(table.name)
        return len(tables)

    # ------------------------------------------------------------------
    # Delta protocol wiring
    # ------------------------------------------------------------------
    def subscribe(self) -> None:
        """Register on the catalog's delta listeners (idempotent)."""
        if self._on_table_delta not in self._catalog.delta_listeners:
            self._catalog.delta_listeners.append(self._on_table_delta)

    def _on_table_delta(self, delta: TableDelta) -> None:
        key = delta.table.upper()
        changed = len(delta.inserted) + len(delta.deleted)
        if not changed:
            return
        # The snapshot is stale the moment DML lands; drop it so the
        # next compile re-analyzes.  (Cheap: stats are computed lazily.)
        self._snapshots.pop(key, None)
        pending = self._pending_changes.get(key, 0) + changed
        baseline = self._baseline_cardinality.get(key)
        if baseline is None:
            baseline = self._live_cardinality(key, default=changed)
            self._baseline_cardinality[key] = baseline
        if material_drift(pending, baseline):
            # Material drift: advance this table's epoch (invalidates
            # plans reading it) and restart drift accounting from the
            # new size.
            self._bump_table_epoch(key)
            self._pending_changes.pop(key, None)
            self._baseline_cardinality[key] = self._live_cardinality(
                key, default=baseline)
        else:
            self._pending_changes[key] = pending

    def _live_cardinality(self, key: str, default: int) -> int:
        if self._catalog.has_table(key):
            return len(self._catalog.table(key))
        return default

    def _note_refresh(self, key: str, snapshot: TableStats) -> None:
        """A lazy re-analysis ran; reset drift accounting for the table.

        If the refresh was triggered by the drift heuristic (direct
        storage writes bypassing DML), the distributions changed
        materially, so the epoch advances too.
        """
        baseline = self._baseline_cardinality.get(key)
        if baseline is not None and material_drift(
                abs(snapshot.cardinality - baseline), baseline):
            self._bump_table_epoch(key)
        self._pending_changes.pop(key, None)
        self._baseline_cardinality[key] = snapshot.cardinality

    @staticmethod
    def _is_stale(snapshot: TableStats, table: Table) -> bool:
        return material_drift(abs(len(table) - snapshot.cardinality),
                              snapshot.cardinality)
